"""The ``repro`` command: simulate/analyze/convert/report/evaluate/watch/serve.

One CLI over the :mod:`repro.api` facade.

- ``repro simulate ARCHIVE``: generate a synthetic Route Views archive
  (``--workers`` parallelizes the optional MRT day dumps;
  ``--archive-format v2`` writes the indexed binary day store;
  ``--rpki`` issues a ROA database beside it);
- ``repro analyze ARCHIVE OUT``: run the study and write every
  figure/table, with optional ``--checkpoint`` / ``--resume``,
  parallel ``--workers`` / ``--shards``, and ``--rpki roas.json``
  RFC 6811 origin validation;
- ``repro convert SRC DST``: re-encode an archive between day-store
  formats (v1 <-> v2), atomically;
- ``repro report OUT``: print a previously generated report;
- ``repro query ARCHIVE PREFIX``: answer one prefix's episode history
  (optionally against a ``--day``/``--range`` window) from the O(log n)
  episode index written by ``repro analyze --index`` — typed errors
  (bad CIDR, missing/empty index, unindexed prefix) exit 2;
- ``repro evaluate ARCHIVE``: run the verdict engine over an archive
  and score its cause attribution against the archive's injected
  incident labels (see ``repro simulate --incidents``);
- ``repro watch UPDATES.mrt``: stream BGP4MP updates through the
  real-time alerter;
- ``repro serve ARCHIVE``: run the concurrent query + live-alert HTTP
  daemon over a long-lived study session (REST figures, SSE alerts,
  drop-directory ingestion, crash-safe checkpoints);
- ``repro check [PATHS]``: statically check the source tree against
  the project invariants (determinism, lock discipline, merge
  algebra, hot-path hygiene, wire/checkpoint symmetry).

``--workers`` accepts a worker count, ``auto``/``0`` for CPU
auto-detection, or ``1`` (the default) for the serial path that never
spawns a process.  Results are identical for every ``--workers`` /
``--shards`` combination.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.compare import compare_to_paper, comparison_table
from repro.analysis.pipeline import StudyResults
from repro.api.renderers import render
from repro.api.service import MoasService
from repro.scenario.world import ScenarioConfig, simulate_study
from repro.util.dates import parse_date


def _workers_arg(text: str) -> int:
    """Parse a ``--workers`` value: an integer or ``auto`` (= 0)."""
    if text.strip().lower() == "auto":
        return 0
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be an integer or 'auto', got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 0, got {value}"
        )
    return value


def _add_workers_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=_workers_arg,
        default=1,
        metavar="N",
        help="process-pool size; 'auto' or 0 detects the CPU count, "
        "1 (default) runs serially without spawning processes",
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point of the unified ``repro`` command."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the IMC 2001 MOAS conflict study.",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"repro {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_simulate(sub)
    _add_analyze(sub)
    _add_convert(sub)
    _add_report(sub)
    _add_query(sub)
    _add_evaluate(sub)
    _add_watch(sub)
    _add_serve(sub)
    _add_check(sub)
    args = parser.parse_args(argv)
    return args.func(args)


# -- simulate -----------------------------------------------------------------


def _add_simulate(sub) -> None:
    parser = sub.add_parser(
        "simulate",
        help="generate a synthetic 1997-2001 Route Views archive",
        description="Generate a synthetic 1997-2001 Route Views archive.",
    )
    parser.add_argument("archive_dir", type=Path)
    parser.add_argument(
        "--scale",
        type=float,
        default=0.125,
        help="fraction of real-Internet size (default 0.125)",
    )
    parser.add_argument("--seed", type=int, default=20011108)
    parser.add_argument(
        "--peers", type=int, default=12, help="collector peer count"
    )
    parser.add_argument(
        "--mrt-export",
        metavar="YYYY-MM-DD",
        action="append",
        default=[],
        help="additionally dump this day as a binary MRT file "
        "(repeatable)",
    )
    parser.add_argument(
        "--incidents",
        metavar="SCRIPT",
        help="inject labeled incidents: 'canned' (the standard "
        "evaluation suite) or a JSON incident-script file; ground "
        "truth lands in <archive>/incidents.json",
    )
    parser.add_argument(
        "--rpki",
        action="store_true",
        help="issue an RPKI shadow over the generated world: a ROA "
        "database (coverage, max-length slack, stale and misissued "
        "authorizations, incident shadows) written beside the archive "
        "as roas.json",
    )
    parser.add_argument(
        "--rpki-coverage",
        type=float,
        default=None,
        metavar="FRACTION",
        help="fraction of registered prefixes holding a ROA "
        "(implies --rpki; default 0.9)",
    )
    parser.add_argument(
        "--archive-format",
        choices=("v1", "v2"),
        default="v1",
        help="day-store encoding: v1 (default, the original stream) "
        "or v2 (indexed binary frames; faster to read, same study "
        "results)",
    )
    _add_workers_option(parser)
    parser.set_defaults(func=_run_simulate)


def _run_simulate(args: argparse.Namespace) -> int:
    incidents = None
    if args.incidents is not None:
        from repro.scenario.incidents import IncidentScript
        from repro.util.dates import PAPER_CALENDAR

        try:
            incidents = IncidentScript.from_spec(
                args.incidents, num_days=PAPER_CALENDAR.num_days
            )
        except (FileNotFoundError, ValueError, KeyError) as error:
            print(f"repro simulate: {error}", file=sys.stderr)
            return 1
    rpki = None
    if args.rpki or args.rpki_coverage is not None:
        from repro.scenario.rpki import RpkiConfig

        try:
            rpki = (
                RpkiConfig()
                if args.rpki_coverage is None
                else RpkiConfig(coverage=args.rpki_coverage)
            )
        except ValueError as error:
            print(f"repro simulate: {error}", file=sys.stderr)
            return 1
    config = ScenarioConfig(
        scale=args.scale,
        seed=args.seed,
        num_peers=args.peers,
        incidents=incidents,
        rpki=rpki,
        archive_format=args.archive_format,
    )
    export_days = {parse_date(text) for text in args.mrt_export}
    summary = simulate_study(
        args.archive_dir,
        config,
        mrt_export_days=export_days,
        workers=args.workers,
    )
    print(f"archive written to {args.archive_dir}")
    for key in (
        "observed_days",
        "num_ases_final",
        "num_prefixes_final",
        "events_total",
    ):
        print(f"  {key}: {summary[key]}")
    if "incidents_injected" in summary:
        print(f"  incidents_injected: {summary['incidents_injected']}")
    if "roas_issued" in summary:
        print(f"  roas_issued: {summary['roas_issued']}")
    return 0


# -- analyze ------------------------------------------------------------------


def _add_analyze(sub) -> None:
    parser = sub.add_parser(
        "analyze",
        help="run the MOAS study pipeline over an archive",
        description="Run the MOAS study pipeline over an archive.",
    )
    parser.add_argument("archive_dir", type=Path)
    parser.add_argument("output_dir", type=Path)
    parser.add_argument(
        "--resume",
        type=Path,
        metavar="CKPT",
        help="resume the session from this checkpoint file; archive "
        "days the checkpoint already covers are skipped",
    )
    parser.add_argument(
        "--checkpoint",
        type=Path,
        metavar="CKPT",
        help="write the final session state to this checkpoint file "
        "(a directory of per-shard states when --shards > 1)",
    )
    _add_workers_option(parser)
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="M",
        help="fold the study state into M prefix-space shards "
        "(checkpoints become per-shard files; results are identical; "
        "default 1, or the checkpoint's own layout with --resume)",
    )
    parser.add_argument(
        "--rpki",
        type=Path,
        metavar="ROAS",
        help="validate every conflict origin against this ROA "
        "database (a roas.json file, or an archive directory holding "
        "one); adds the rpki.csv / longevity.csv figures and report "
        "sections",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="append a per-stage wall-clock and cProfile summary of "
        "the feed (decode vs detect vs fold); forces the serial "
        "in-process path, results are unchanged",
    )
    parser.add_argument(
        "--index",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help="additionally write the episode query index (default "
        "<archive>/episodes.idx): the O(log n) prefix->history store "
        "'repro query' and the serve daemon answer from without "
        "re-folding the study; CDS archives enrich each record with "
        "the verdict engine's tag/suspicion view",
    )
    parser.set_defaults(func=_run_analyze)


def _run_analyze(args: argparse.Namespace) -> int:
    from repro.mrt.errors import MrtError

    profile = None
    try:
        if args.shards is not None and args.shards < 1:
            raise ValueError(f"--shards must be >= 1, got {args.shards}")
        if args.resume is not None:
            service = MoasService.load_checkpoint(
                args.resume, workers=args.workers
            )
            if args.shards is not None and args.shards != service.shards:
                raise ValueError(
                    f"checkpoint has {service.shards} shard(s); "
                    f"cannot resume it with --shards {args.shards}"
                )
            if args.rpki is not None:
                if service.roa_table is None:
                    raise ValueError(
                        "checkpoint was not validating against a ROA "
                        "table; --rpki cannot be turned on mid-study"
                    )
                from repro.netbase.rpki import RoaTable

                if RoaTable.load(args.rpki) != service.roa_table:
                    raise ValueError(
                        f"--rpki {args.rpki} differs from the ROA "
                        f"table the checkpoint was validating "
                        f"against; a study cannot switch databases "
                        f"mid-stream"
                    )
            if args.profile:
                from repro.analysis.profiling import profile_feed

                profile = profile_feed(
                    service, args.archive_dir, skip_seen=True
                )
            else:
                service.feed(args.archive_dir, skip_seen=True)
        else:
            service = MoasService(
                workers=args.workers,
                shards=args.shards or 1,
                roa_table=args.rpki,
            )
            if args.profile:
                from repro.analysis.profiling import profile_feed

                profile = profile_feed(service, args.archive_dir)
            else:
                service.feed(args.archive_dir)
    except (
        FileNotFoundError,
        ValueError,
        MrtError,
        json.JSONDecodeError,
    ) as error:
        print(f"repro analyze: {error}", file=sys.stderr)
        return 1
    results = service.results()
    if args.checkpoint is not None:
        try:
            service.save_checkpoint(args.checkpoint)
        except (ValueError, OSError) as error:
            print(f"repro analyze: {error}", file=sys.stderr)
            return 1

    # The paper-vs-measured table needs the generation scale, which
    # only CDS archives record; MRT inputs analyze without it.
    scale = None
    if (args.archive_dir / "manifest.json").is_file():
        from repro.api.sources import ArchiveSource

        recorded = ArchiveSource(args.archive_dir).manifest.get("scale")
        scale = float(recorded) if recorded else None
    report = write_analysis(results, args.output_dir, scale=scale)
    print(report)
    if args.index is not None:
        from repro.analysis.index import INDEX_FILENAME

        index_path = (
            Path(args.index)
            if args.index
            else args.archive_dir / INDEX_FILENAME
        )
        try:
            # Verdict enrichment re-streams the source through the
            # verdict engine (exactly `repro evaluate`); a source
            # without a CDS manifest indexes episodes and RPKI only.
            verdicts = None
            if (args.archive_dir / "manifest.json").is_file():
                verdicts = service.evaluate(args.archive_dir).verdicts
            service.build_index(index_path, verdicts=verdicts)
        except (
            FileNotFoundError,
            ValueError,
            MrtError,
            OSError,
            json.JSONDecodeError,
        ) as error:
            print(f"repro analyze: {error}", file=sys.stderr)
            return 1
        print(
            f"episode index written to {index_path} "
            f"({len(results.episodes)} episodes)"
        )
    if profile is not None:
        print()
        print(profile.report())
    return 0


def write_analysis(
    results: StudyResults,
    output_dir: Path | str,
    *,
    scale: float | None = None,
) -> str:
    """Write the full analysis output tree; returns the text report.

    Emits every figure CSV, the episode table, the JSON summary and the
    combined ``report.txt`` (with the paper-vs-measured table when the
    archive's generation ``scale`` is known) — the layout both the new
    and the legacy analyze commands produce.  Results produced with a
    ROA table (``--rpki``) additionally emit ``rpki.csv`` /
    ``longevity.csv`` and their report sections; without one the
    output tree is byte-identical to earlier releases.
    """
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    (out / "figure1.csv").write_text(render(results, "figure1", "csv"))
    (out / "figure3.csv").write_text(render(results, "figure3", "csv"))
    (out / "figure5.csv").write_text(render(results, "figure5", "csv"))
    (out / "figure6.csv").write_text(render(results, "figure6", "csv"))
    (out / "episodes.csv").write_text(render(results, "episodes", "csv"))
    (out / "summary.json").write_text(render(results, "summary", "json"))
    sections = [
        render(results, "summary", "ascii"),
        render(results, "figure2", "ascii"),
        render(results, "figure4", "ascii"),
        render(results, "figure1", "ascii"),
        render(results, "figure3", "ascii"),
        render(results, "figure5", "ascii"),
        render(results, "figure6", "ascii"),
    ]
    if results.rpki_episode_states:
        (out / "rpki.csv").write_text(render(results, "rpki", "csv"))
        (out / "longevity.csv").write_text(
            render(results, "longevity", "csv")
        )
        sections.append(render(results, "rpki", "ascii"))
        sections.append(render(results, "longevity", "ascii"))
    if scale:
        sections.append(
            comparison_table(compare_to_paper(results, scale=scale))
        )
    report = "\n\n".join(sections)
    (out / "report.txt").write_text(report + "\n")
    return report


# -- convert ------------------------------------------------------------------


def _add_convert(sub) -> None:
    parser = sub.add_parser(
        "convert",
        help="re-encode a CDS archive between day-store formats",
        description="Re-encode a CDS archive's day store (v1 <-> v2). "
        "The conversion is atomic: the destination appears only once "
        "it is complete, so a corrupt source never leaves a "
        "half-written archive behind.  Study results over the "
        "converted archive are identical to the original.",
    )
    parser.add_argument("source", type=Path, help="existing archive")
    parser.add_argument(
        "destination", type=Path, help="output archive (must not exist)"
    )
    parser.add_argument(
        "--to",
        choices=("v1", "v2"),
        default="v2",
        dest="target_format",
        help="target day-store format (default v2)",
    )
    parser.set_defaults(func=_run_convert)


def _run_convert(args: argparse.Namespace) -> int:
    from repro.scenario.archive import convert_archive

    try:
        summary = convert_archive(
            args.source, args.destination, format=args.target_format
        )
    except (
        FileNotFoundError,
        FileExistsError,
        ValueError,  # includes ArchiveError
        OSError,
        json.JSONDecodeError,
    ) as error:
        print(f"repro convert: {error}", file=sys.stderr)
        return 1
    print(
        f"converted {summary['source']} ({summary['source_format']}, "
        f"{summary['num_days']} days, {summary['num_prefixes']} "
        f"prefixes) -> {summary['destination']} "
        f"({summary['target_format']})"
    )
    return 0


# -- report -------------------------------------------------------------------


def _add_report(sub) -> None:
    parser = sub.add_parser(
        "report",
        help="print a previously generated analysis report",
        description="Print a previously generated analysis report.",
    )
    parser.add_argument("output_dir", type=Path)
    parser.set_defaults(func=_run_report)


def _run_report(args: argparse.Namespace) -> int:
    report_path = args.output_dir / "report.txt"
    if not report_path.exists():
        print(
            f"no report at {report_path}; run repro analyze first",
            file=sys.stderr,
        )
        return 1
    print(report_path.read_text(), end="")
    return 0


# -- query --------------------------------------------------------------------


def _add_query(sub) -> None:
    parser = sub.add_parser(
        "query",
        help="answer a prefix's episode history from the index",
        description="Answer one prefix's MOAS episode history — origin "
        "sets, start/end days, verdict tag + suspicion, RPKI state — "
        "from the episode index (episodes.idx) in O(log n), without "
        "re-folding the study.  Build the index with 'repro analyze "
        "--index'.  Typed errors (malformed CIDR, missing or empty "
        "index, prefix absent from the index) exit with status 2.",
    )
    parser.add_argument(
        "archive_dir",
        type=Path,
        metavar="ARCHIVE",
        help="archive directory holding episodes.idx, or a direct "
        "path to an index file",
    )
    parser.add_argument(
        "prefix", metavar="PREFIX", help="the CIDR prefix to look up"
    )
    window = parser.add_mutually_exclusive_group()
    window.add_argument(
        "--day",
        metavar="YYYY-MM-DD",
        help="point query: resolve the history against this one day",
    )
    window.add_argument(
        "--range",
        dest="day_range",
        metavar="A:B",
        help="range query: resolve against the inclusive day window "
        "A:B (two ISO dates)",
    )
    parser.add_argument(
        "--format",
        choices=("csv", "ascii", "json"),
        default="ascii",
        help="answer format (default ascii)",
    )
    parser.set_defaults(func=_run_query)


def _run_query(args: argparse.Namespace) -> int:
    from repro.analysis.index import INDEX_FILENAME, EpisodeIndex
    from repro.api.renderers import render_query
    from repro.netbase.prefix import Prefix
    from repro.scenario.archive import ArchiveError

    def fail(error) -> int:
        # Typed query errors exit 2 (argparse's own convention), so
        # scripts can tell "no such episode" from a crashed run.
        print(f"repro query: {error}", file=sys.stderr)
        return 2

    try:
        prefix = Prefix.parse(args.prefix)
    except ValueError as error:
        return fail(error)
    day = window = None
    try:
        if args.day is not None:
            day = parse_date(args.day)
        if args.day_range is not None:
            start_text, sep, end_text = args.day_range.partition(":")
            if not sep:
                raise ValueError(
                    f"--range wants A:B (two ISO dates), got "
                    f"{args.day_range!r}"
                )
            window = (parse_date(start_text), parse_date(end_text))
    except ValueError as error:
        return fail(error)
    path = args.archive_dir
    if path.is_dir():
        path = path / INDEX_FILENAME
    if not path.is_file():
        return fail(
            f"no episode index at {path}; build one with "
            f"'repro analyze --index'"
        )
    try:
        index = EpisodeIndex.load(path)
    except ArchiveError as error:
        return fail(error)
    if len(index) == 0:
        return fail(
            f"episode index {path} is empty: the indexed study "
            f"recorded no MOAS episodes"
        )
    answer = index.query(prefix, day=day, window=window)
    if answer is None:
        return fail(
            f"no MOAS episode recorded for {prefix} in {path}"
        )
    print(render_query(answer, args.format), end="")
    return 0


# -- evaluate -----------------------------------------------------------------


def _add_evaluate(sub) -> None:
    parser = sub.add_parser(
        "evaluate",
        help="score the verdict engine against injected ground truth",
        description="Run the verdict engine over an archive and score "
        "its cause attribution (per-kind precision/recall, confusion "
        "matrix) against the archive's incident labels.",
    )
    parser.add_argument("archive_dir", type=Path)
    parser.add_argument(
        "--format",
        choices=("ascii", "csv", "json"),
        default="ascii",
        help="report format printed to stdout (default ascii)",
    )
    parser.add_argument(
        "--json-out",
        type=Path,
        metavar="FILE",
        help="additionally write the full JSON scoring payload here "
        "(the CI artifact format)",
    )
    _add_workers_option(parser)
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="M",
        help="fold verdict evidence into M prefix-space shards "
        "(results are identical; default 1)",
    )
    parser.set_defaults(func=_run_evaluate)


def _run_evaluate(args: argparse.Namespace) -> int:
    from repro.mrt.errors import MrtError

    try:
        if args.shards < 1:
            raise ValueError(f"--shards must be >= 1, got {args.shards}")
        service = MoasService(workers=args.workers, shards=args.shards)
        report = service.evaluate(args.archive_dir)
    except (
        FileNotFoundError,
        ValueError,
        MrtError,
        json.JSONDecodeError,
    ) as error:
        print(f"repro evaluate: {error}", file=sys.stderr)
        return 1
    print(render(report.result, "evaluation", args.format), end="")
    if args.json_out is not None:
        from repro.util.io import atomic_write_text

        args.json_out.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            args.json_out, render(report.result, "evaluation", "json")
        )
    return 0


# -- watch --------------------------------------------------------------------


def _add_watch(sub) -> None:
    parser = sub.add_parser(
        "watch",
        help="stream BGP4MP updates through the real-time MOAS alerter",
        description="Stream a BGP4MP update file through the real-time "
        "MOAS alerter and print every origin-set transition.",
    )
    parser.add_argument("updates_file", type=Path)
    parser.add_argument(
        "--expected-origins",
        type=Path,
        metavar="JSON",
        help="JSON file mapping prefix -> legitimate origin ASN "
        "(a registry; unexpected origins are flagged)",
    )
    parser.set_defaults(func=_run_watch)


def _run_watch(args: argparse.Namespace) -> int:
    from repro.core.realtime import StreamingMoasDetector
    from repro.mrt.reader import MrtReader, decode_record
    from repro.mrt.records import Bgp4mpMessage, Bgp4mpStateChange
    from repro.netbase.prefix import Prefix

    if not args.updates_file.exists():
        print(
            f"repro watch: no update file at {args.updates_file}",
            file=sys.stderr,
        )
        return 1
    expected = None
    if args.expected_origins is not None:
        raw = json.loads(args.expected_origins.read_text())
        expected = {
            Prefix.parse(text): int(asn) for text, asn in raw.items()
        }
    detector = StreamingMoasDetector(expected_origins=expected)
    alerts = 0
    with MrtReader(args.updates_file) as reader:
        for record in reader.records():
            decoded = decode_record(record)
            if isinstance(decoded, Bgp4mpStateChange):
                triggered = detector.process_state_change(
                    decoded, record.timestamp
                )
            elif isinstance(decoded, Bgp4mpMessage):
                triggered = detector.process_update(decoded, record.timestamp)
            else:
                continue
            for alert in triggered:
                alerts += 1
                origins = ",".join(str(asn) for asn in sorted(alert.origins))
                line = (
                    f"{alert.timestamp} {alert.kind.value} {alert.prefix} "
                    f"origins=[{origins}] changed={alert.changed_origin}"
                )
                if not detector.is_expected_origin(
                    alert.prefix, alert.changed_origin
                ):
                    line += " UNEXPECTED-ORIGIN"
                print(line)
    ongoing = detector.current_conflicts()
    print(
        f"{alerts} alerts; {len(ongoing)} prefixes still in MOAS "
        f"at end of stream"
    )
    return 0


# -- serve --------------------------------------------------------------------


def _add_serve(sub) -> None:
    parser = sub.add_parser(
        "serve",
        help="run the concurrent query + live-alert HTTP daemon",
        description="Serve a long-lived MOAS study session over HTTP: "
        "REST figure/episode/verdict queries rendered from consistent "
        "day-boundary snapshots, a Server-Sent-Events alert stream, "
        "background ingestion of the archive (and, with --watch, of "
        "MRT day dumps dropped into a directory), and crash-safe "
        "periodic checkpoints.",
    )
    parser.add_argument(
        "archive_dir",
        type=Path,
        nargs="?",
        default=None,
        help="archive to feed at startup (optional with --watch)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=8731,
        help="listen port; 0 picks an ephemeral port (default 8731)",
    )
    parser.add_argument(
        "--watch",
        type=Path,
        metavar="DIR",
        help="poll this directory for new *.mrt day dumps and fold "
        "them into the live session as they appear",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="drop-directory poll interval (default 2.0)",
    )
    parser.add_argument(
        "--checkpoint",
        type=Path,
        metavar="CKPT",
        help="persist the session here (resumed at next boot; written "
        "after the initial feed, periodically during ingestion, and "
        "on shutdown)",
    )
    parser.add_argument(
        "--checkpoint-every-days",
        type=int,
        default=0,
        metavar="N",
        help="additionally checkpoint every N newly ingested days "
        "(default 0: only at feed boundaries and shutdown)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="M",
        help="fold the study state into M prefix-space shards "
        "(default 1)",
    )
    parser.add_argument(
        "--rpki",
        type=Path,
        metavar="ROAS",
        help="validate conflict origins against this ROA database "
        "(default: the archive's own roas.json when present)",
    )
    parser.set_defaults(func=_run_serve)


def _run_serve(args: argparse.Namespace) -> int:
    from repro.api.serve import ServeConfig, run_serve

    try:
        if args.shards < 1:
            raise ValueError(f"--shards must be >= 1, got {args.shards}")
        config = ServeConfig(
            archive=args.archive_dir,
            host=args.host,
            port=args.port,
            watch=args.watch,
            poll_interval=args.poll_interval,
            checkpoint=args.checkpoint,
            checkpoint_every_days=args.checkpoint_every_days,
            shards=args.shards,
            rpki=args.rpki,
        )
        return run_serve(config)
    except (FileNotFoundError, ValueError, json.JSONDecodeError) as error:
        print(f"repro serve: {error}", file=sys.stderr)
        return 1


# -- check --------------------------------------------------------------------


def _add_check(sub) -> None:
    parser = sub.add_parser(
        "check",
        help="statically check the source against project invariants",
        description="Static analysis of the source tree against the "
        "project invariants: determinism, lock discipline, merge "
        "algebra, hot-path hygiene, and wire/checkpoint schema "
        "symmetry.  Configured via [tool.repro-check] in "
        "pyproject.toml; findings suppress with "
        "'# repro: ignore[rule-id]' line comments.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: configured paths)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE_ID",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--format",
        choices=("ascii", "json"),
        default="ascii",
        dest="output_format",
        help="report format (default: ascii)",
    )
    parser.add_argument(
        "--write-schema",
        action="store_true",
        help="regenerate the checkpoint schema snapshot and exit",
    )
    parser.set_defaults(func=_run_check)


def _run_check(args: argparse.Namespace) -> int:
    from repro.tools import check as checker

    argv = list(args.paths)
    for rule in args.rules or ():
        argv += ["--rule", rule]
    argv += ["--format", args.output_format]
    if args.write_schema:
        argv.append("--write-schema")
    return checker.main(argv)


if __name__ == "__main__":
    sys.exit(main())
