"""The canonical service facade of the reproduction.

Three pluggable layers over the analysis core:

- :mod:`repro.api.sources` — the :class:`DetectionSource` protocol and
  registered adapters (CDS archives, MRT dumps, live BGP networks,
  in-memory feeds), unified behind :func:`open_source`;
- :mod:`repro.api.renderers` — the renderer registry: every
  figure/table behind one ``render(results, figure, format)`` call;
- :mod:`repro.api.service` — :class:`MoasService`, the
  incrementally-feedable, checkpointable study session;
- :mod:`repro.api.serve` — the concurrent query + live-alert HTTP
  daemon (:class:`ServeDaemon`) over a long-lived session;
- :mod:`repro.api.cli` — the single ``repro`` command
  (``simulate | analyze | convert | report | evaluate | watch |
  serve``) built on the facade.
"""

from repro.api.renderers import (
    Renderer,
    available_renderings,
    register_renderer,
    render,
)
from repro.api.serve import (
    BackgroundServer,
    ServeConfig,
    ServeDaemon,
)
from repro.api.service import CHECKPOINT_VERSION, MoasService
from repro.api.sources import (
    ArchiveSource,
    DetectionSource,
    MemorySource,
    MrtFilesSource,
    NetworkSource,
    open_source,
    register_source,
    source_kinds,
)

__all__ = [
    "ArchiveSource",
    "BackgroundServer",
    "CHECKPOINT_VERSION",
    "DetectionSource",
    "MemorySource",
    "MoasService",
    "MrtFilesSource",
    "NetworkSource",
    "Renderer",
    "ServeConfig",
    "ServeDaemon",
    "available_renderings",
    "open_source",
    "register_renderer",
    "register_source",
    "render",
    "source_kinds",
]
