"""The MoasService facade: one session object for the whole study.

Wraps detector -> classifier -> episode tracker -> statistics as an
incrementally-feedable session.  Feed any
:class:`~repro.api.sources.DetectionSource` (or anything
:func:`~repro.api.sources.open_source` can adapt), checkpoint the
streaming state to JSON at any point, resume later — possibly in a
different process, against a different shard of the archive — and the
final :class:`~repro.analysis.pipeline.StudyResults` are identical to
an uninterrupted run.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.pipeline import StudyPipeline, StudyResults, StudyState
from repro.api.renderers import render
from repro.api.sources import open_source
from repro.core.detector import DayDetection

#: Checkpoint payload version; bump on incompatible layout changes.
CHECKPOINT_VERSION = 1


class MoasService:
    """An incrementally-feedable, checkpointable MOAS study session.

    Usage::

        service = MoasService()
        service.feed("path/to/archive")        # any DetectionSource
        print(service.render("summary", "ascii"))
        service.save_checkpoint("study.ckpt")  # ... later ...
        service = MoasService.load_checkpoint("study.ckpt")
        service.feed(next_shard)               # continue where we left off
        results = service.results()
    """

    def __init__(self, pipeline: StudyPipeline | None = None) -> None:
        self.pipeline = pipeline or StudyPipeline()
        self._state = self.pipeline.start()

    # -- feeding -----------------------------------------------------------

    @property
    def days_fed(self) -> int:
        """Observed days folded into the session so far."""
        return self._state.total_days

    @property
    def last_day(self):
        """The most recent day fed, or None for a fresh session."""
        return self._state.last_day

    def feed_day(self, detection: DayDetection) -> None:
        """Fold one day's detection into the session.

        Days must arrive in strictly increasing date order (ValueError
        otherwise) — use ``feed(..., skip_seen=True)`` when re-streaming
        a source that overlaps what this session already saw.
        """
        self._state.feed_day(detection)

    def feed(self, source, *, skip_seen: bool = False, **options) -> int:
        """Stream a whole source into the session; returns days fed.

        ``source`` is anything :func:`~repro.api.sources.open_source`
        accepts: a DetectionSource, an archive directory, MRT files, a
        live Network (with ``days``/``peer_asns`` options), or an
        in-memory iterable.  With ``skip_seen`` days not newer than
        :attr:`last_day` are silently skipped, making it safe to re-feed
        a source that overlaps an earlier feed or a resumed checkpoint.
        """
        fed = 0
        for detection in open_source(source, **options).detections():
            if (
                skip_seen
                and self.last_day is not None
                and detection.day <= self.last_day
            ):
                continue
            self.feed_day(detection)
            fed += 1
        return fed

    # -- results and rendering ---------------------------------------------

    def results(self) -> StudyResults:
        """The full study statistics for everything fed so far.

        Non-destructive: the session remains feedable, so interim
        results can be read mid-study.
        """
        return self._state.results()

    def render(self, figure: str, format: str = "csv") -> str:
        """Render one figure/table from the current session state."""
        return render(self.results(), figure, format)

    # -- checkpointing -----------------------------------------------------

    def snapshot_state(self) -> dict:
        """The session as a JSON-serializable checkpoint payload."""
        return {
            "version": CHECKPOINT_VERSION,
            "pipeline": self.pipeline.config_dict(),
            "state": self._state.state_dict(),
        }

    @classmethod
    def resume(cls, snapshot: dict) -> "MoasService":
        """Rebuild a session from a :meth:`snapshot_state` payload."""
        version = snapshot.get("version")
        if version != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {version!r}; "
                f"expected {CHECKPOINT_VERSION}"
            )
        pipeline = StudyPipeline.from_config_dict(snapshot["pipeline"])
        service = cls(pipeline)
        service._state = StudyState.from_state(
            snapshot["state"], pipeline=pipeline
        )
        return service

    def save_checkpoint(self, path: Path | str) -> Path:
        """Write the session checkpoint to ``path`` as JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.snapshot_state()))
        return path

    @classmethod
    def load_checkpoint(cls, path: Path | str) -> "MoasService":
        """Rebuild a session from a :meth:`save_checkpoint` file."""
        return cls.resume(json.loads(Path(path).read_text()))
