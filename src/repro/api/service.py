"""The MoasService facade: one session object for the whole study.

Wraps detector -> classifier -> episode tracker -> statistics as an
incrementally-feedable session.  Feed any
:class:`~repro.api.sources.DetectionSource` (or anything
:func:`~repro.api.sources.open_source` can adapt), checkpoint the
streaming state to JSON at any point, resume later — possibly in a
different process, against a different shard of the archive — and the
final :class:`~repro.analysis.pipeline.StudyResults` are identical to
an uninterrupted run.

The session scales out in two independent directions:

- ``workers=N`` fans per-day detection over a process pool when the
  source is partitionable (CDS archives, MRT file lists); ``N=1`` (the
  default) is the documented serial fallback that never spawns a
  process, and ``N=0`` auto-detects the CPU count.
- ``shards=M`` folds the streaming state into ``M`` prefix-space
  shards.  Checkpoints of a sharded session are directories (one
  ``state_dict`` file per shard plus a manifest) so each shard can be
  stored, shipped, or resumed independently.

Results are identical for every ``workers``/``shards`` combination —
the engine's core invariant — and for both CDS archive day-store
formats (v1 and v2; the reader auto-detects, see
:mod:`repro.scenario.archive`).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from repro.analysis.parallel import (
    ParallelExecutor,
    iter_detections,
    resolve_workers,
)
from repro.analysis.pipeline import StudyPipeline, StudyResults, StudyState
from repro.api.renderers import render
from repro.api.sources import open_source
from repro.core.detector import DayDetection
from repro.util.concurrency import guarded_by
from repro.util.io import atomic_write_text

#: Checkpoint payload version; bump on incompatible layout changes.
#: Version 1 (single ``state`` payload) is still readable.
CHECKPOINT_VERSION = 2

#: File name of the manifest inside a sharded checkpoint directory.
CHECKPOINT_MANIFEST = "manifest.json"


@guarded_by("_lock", "_states")
class MoasService:
    """An incrementally-feedable, checkpointable MOAS study session.

    Usage::

        service = MoasService(workers=4, shards=2)
        service.feed("path/to/archive")        # any DetectionSource
        print(service.render("summary", "ascii"))
        service.save_checkpoint("study.ckpt")  # ... later ...
        service = MoasService.load_checkpoint("study.ckpt")
        service.feed(next_shard)               # continue where we left off
        results = service.results()
    """

    def __init__(
        self,
        pipeline: StudyPipeline | None = None,
        *,
        workers: int = 1,
        shards: int = 1,
        shard_scheme: str = "hash",
        roa_table=None,
    ) -> None:
        self.pipeline = pipeline or StudyPipeline()
        # One source of truth for worker resolution and shard layout:
        # the same executor the pipeline path uses.
        executor = ParallelExecutor(
            workers=workers, shards=shards, scheme=shard_scheme
        )
        self.workers = executor.workers
        self.shards = executor.shards
        # Anything RoaTable.load accepts: a table, a roas.json path, or
        # an archive directory carrying one.  The table is immutable
        # and shared by every shard; fed conflicts are validated per
        # RFC 6811 and results gain the rpki/longevity breakdowns.
        if roa_table is not None:
            from repro.netbase.rpki import RoaTable

            roa_table = RoaTable.load(roa_table)
        self.roa_table = roa_table
        self._states = executor.make_states(
            self.pipeline, roa_table=roa_table
        )
        # Snapshot isolation for concurrent readers (the serve daemon
        # folds days on one thread while request handlers read).  Every
        # mutation and every multi-structure read holds this lock, so
        # readers always observe a day boundary — state as it stood
        # after some prefix of the fed day stream, never a torn
        # mid-fold mixture.  Single-threaded batch use pays one
        # uncontended RLock acquire per day, which is noise.
        self._lock = threading.RLock()

    # -- feeding -----------------------------------------------------------

    @property
    def days_fed(self) -> int:
        """Observed days folded into the session so far."""
        with self._lock:
            return self._states[0].total_days

    @property
    def last_day(self):
        """The most recent day fed, or None for a fresh session."""
        with self._lock:
            return self._states[0].last_day

    def feed_day(self, detection: DayDetection) -> None:
        """Fold one day's detection into the session.

        Days must arrive in strictly increasing date order (ValueError
        otherwise) — use ``feed(..., skip_seen=True)`` when re-streaming
        a source that overlaps what this session already saw.  Every
        shard folds the full detection (day-level aggregates are shared,
        per-prefix state is shard-filtered).

        The fold is atomic with respect to :meth:`results`,
        :meth:`snapshot_state` and :meth:`save_checkpoint` running on
        other threads: a concurrent reader sees the session either
        before or after the whole day, never mid-fold.
        """
        with self._lock:
            for state in self._states:
                state.feed_day(detection)

    def feed(
        self,
        source,
        *,
        skip_seen: bool = False,
        workers: int | None = None,
        **options,
    ) -> int:
        """Stream a whole source into the session; returns days fed.

        ``source`` is anything :func:`~repro.api.sources.open_source`
        accepts: a DetectionSource, an archive directory, MRT files, a
        live Network (with ``days``/``peer_asns`` options), or an
        in-memory iterable.  With ``skip_seen`` days not newer than
        :attr:`last_day` are silently skipped, making it safe to re-feed
        a source that overlaps an earlier feed or a resumed checkpoint.

        ``workers`` overrides the session's worker count for this feed;
        with more than one worker, partitionable sources are detected
        on a process pool (others fall back to the serial path — see
        :mod:`repro.analysis.parallel`).
        """
        adapted = open_source(source, **options)
        effective = resolve_workers(
            self.workers if workers is None else workers
        )
        fed = 0
        for detection in iter_detections(adapted, workers=effective):
            # Check against the *advancing* last_day so duplicate days
            # inside one stream are skipped too, not just overlap with
            # what an earlier feed or resumed checkpoint covered.
            if (
                skip_seen
                and self.last_day is not None
                and detection.day <= self.last_day
            ):
                continue
            self.feed_day(detection)
            fed += 1
        return fed

    # -- results and rendering ---------------------------------------------

    def results(self) -> StudyResults:
        """The full study statistics for everything fed so far.

        Non-destructive: the session remains feedable, so interim
        results can be read mid-study.  Sharded sessions merge their
        shard states on the fly (the states themselves are untouched).

        The returned :class:`StudyResults` is a detached copy-on-merge
        snapshot: it shares no mutable state with the live session (see
        :meth:`StudyState.results`), and assembly holds the session
        lock, so a service thread can keep rendering it while
        :meth:`feed_day` continues on another thread.
        """
        with self._lock:
            return StudyState.merged(self._states).results()

    def render(self, figure: str, format: str = "csv") -> str:
        """Render one figure/table from the current session state."""
        return render(self.results(), figure, format)

    # -- episode query index -------------------------------------------------

    def episode_index(self, *, verdicts: dict | None = None):
        """An :class:`~repro.analysis.index.EpisodeIndex` of the session.

        Built from a day-boundary snapshot (:meth:`results` holds the
        session lock), so an index taken while :meth:`feed_day` runs on
        another thread always equals the index of a batch analyze
        stopped at some fed-day prefix.  ``verdicts`` optionally
        enriches each record with the verdict engine's tag/suspicion
        view (e.g. ``service.evaluate(archive).verdicts``).
        """
        from repro.analysis.index import EpisodeIndex

        return EpisodeIndex.build(self.results(), verdicts=verdicts)

    def build_index(
        self, path: Path | str, *, verdicts: dict | None = None
    ) -> Path:
        """Write the session's episode query index to ``path``.

        The on-disk by-product of ``repro analyze --index``: a
        crash-safe (atomic-rename) binary side file that ``repro
        query`` and the serve daemon answer point/range lookups from
        without re-folding the study.  Because the index derives from
        the checkpointable session state, a resumed session
        (``--resume``) rebuilds it without re-folding already-seen
        days.
        """
        return self.episode_index(verdicts=verdicts).save(path)

    # -- verdicts and evaluation ---------------------------------------------

    def evaluate(
        self, source, *, config=None, workers=None, rpki=None, **options
    ):
        """Run the verdict engine over ``source`` and score it.

        Streams the source's daily detections (worker-parallel exactly
        like :meth:`feed`, sharded like the session) through a
        :class:`~repro.core.verdict.VerdictEngine`, finalizes one
        :class:`~repro.core.verdict.Verdict` per prefix, and — when the
        source is a CDS archive carrying answer keys — scores the
        predicted kinds against ``incidents.json`` (injected labels)
        and ``ground_truth.json`` (organic causes).  Returns an
        :class:`~repro.analysis.evaluation.EvaluationReport`; its
        ``result`` renders via ``render(result, "evaluation", fmt)``.

        ``rpki`` supplies a ROA database for RFC 6811 origin validation
        (anything :meth:`~repro.netbase.rpki.RoaTable.load` accepts);
        left unset, the session's own table is used, and failing that
        the archive's ``roas.json`` is picked up automatically — an
        archive generated with ``--rpki`` always evaluates with its
        RPKI shadow on.

        Evaluation is independent of the session's fed study state: it
        only borrows the session's worker/shard layout (and default
        ROA table).
        """
        from repro.analysis.evaluation import (
            EvaluationReport,
            evaluate_verdicts,
        )
        from repro.core.verdict import VerdictConfig, VerdictEngine
        from repro.netbase.rpki import RoaTable
        from repro.scenario.incidents import IncidentLabel

        config = config or VerdictConfig()
        adapted = open_source(source, **options)

        # Resolve the archive's answer keys (and its ROA database)
        # before streaming: the engines validate while they feed.
        registry = None
        injected: list[IncidentLabel] = []
        organic: list[dict] = []
        roa_table = self.roa_table if rpki is None else RoaTable.load(rpki)
        directory = getattr(adapted, "directory", None)
        if directory is not None and (
            Path(directory) / "manifest.json"
        ).is_file():
            from repro.scenario.archive import ArchiveReader

            reader = ArchiveReader(directory)
            registry = reader.registry
            if reader.has_incidents():
                injected = [
                    IncidentLabel.from_dict(row)
                    for row in reader.incident_labels()
                ]
            if (Path(directory) / "ground_truth.json").is_file():
                organic = reader.ground_truth()
            if roa_table is None and reader.has_roas():
                roa_table = RoaTable.from_rows(reader.roas())

        with self._lock:
            shard_specs = [state.shard for state in self._states]
        engines = [
            VerdictEngine(config, shard=shard, roa_table=roa_table)
            for shard in shard_specs
        ]
        effective = resolve_workers(
            self.workers if workers is None else workers
        )
        for detection in iter_detections(adapted, workers=effective):
            for engine in engines:
                engine.feed_day(detection)
        merged = VerdictEngine.merged(engines)

        verdicts = merged.finalize(registry=registry)
        result = evaluate_verdicts(
            verdicts, injected=injected, organic=organic
        )
        return EvaluationReport(
            verdicts=verdicts,
            result=result,
            labels=tuple(injected),
            config=config.to_dict(),
        )

    # -- checkpointing -----------------------------------------------------

    def snapshot_state(self) -> dict:
        """The session as a JSON-serializable checkpoint payload.

        Taken atomically at a day boundary even while :meth:`feed_day`
        runs on another thread: the payload always equals the state
        after some prefix of the fed day stream (and all shards agree
        on which prefix), never a torn mid-fold mixture.
        """
        with self._lock:
            return {
                "version": CHECKPOINT_VERSION,
                "pipeline": self.pipeline.config_dict(),
                "shards": [state.state_dict() for state in self._states],
            }

    @classmethod
    def resume(cls, snapshot: dict, *, workers: int = 1) -> "MoasService":
        """Rebuild a session from a :meth:`snapshot_state` payload.

        Accepts both the current sharded layout (version 2) and legacy
        single-state version-1 checkpoints.  The worker count is an
        execution-resource choice, not study state, so it is never part
        of the checkpoint — pass ``workers`` to continue in parallel.
        """
        version = snapshot.get("version")
        if version not in (1, CHECKPOINT_VERSION):
            raise ValueError(
                f"unsupported checkpoint version {version!r}; "
                f"expected {CHECKPOINT_VERSION}"
            )
        pipeline = StudyPipeline.from_config_dict(snapshot["pipeline"])
        if version == 1:
            shard_states = [snapshot["state"]]
        else:
            shard_states = snapshot["shards"]
        if not shard_states:
            raise ValueError("checkpoint contains no shard states")
        service = cls(pipeline, workers=workers)
        service._states = [
            StudyState.from_state(state, pipeline=pipeline)
            for state in shard_states
        ]
        service.shards = len(service._states)
        # RPKI-enabled checkpoints carry their table in every shard
        # state (each shard file is self-contained); normalize the
        # restored session to one shared instance so the validation
        # memos warm once, not per shard.
        table = service._states[0].roa_table
        for state in service._states[1:]:
            if state.roa_table != table:
                raise ValueError(
                    "checkpoint shards disagree on the ROA table"
                )
            state.roa_table = table
        service.roa_table = table
        return service

    def save_checkpoint(self, path: Path | str) -> Path:
        """Write the session checkpoint to ``path``.

        Single-shard sessions write one JSON file, exactly as before.
        Sharded sessions write a *directory*: a ``manifest.json``
        naming the layout plus one ``shard-NN.gG.json`` state file per
        shard, so shards can be inspected or shipped independently and
        :meth:`load_checkpoint` can reassemble them.

        Every write is crash-safe.  Files go down via temp-file +
        ``os.replace`` (a truncated file is never observable), and the
        directory layout commits through the manifest: shard files
        carry a fresh generation suffix, the manifest naming them is
        replaced *last*, and only then are the previous generation's
        files pruned — a crash at any point leaves the prior checkpoint
        fully loadable.
        """
        path = Path(path)
        with self._lock:
            num_shards = len(self._states)
        if num_shards == 1:
            if path.is_dir():
                raise ValueError(
                    f"checkpoint path {path} is an existing directory "
                    f"(a sharded checkpoint?); remove it or choose "
                    f"another path"
                )
            path.parent.mkdir(parents=True, exist_ok=True)
            # Atomic replace: a crash mid-write must leave the previous
            # checkpoint intact, never a truncated JSON file.
            atomic_write_text(path, json.dumps(self.snapshot_state()))
            return path
        if path.is_file():
            raise ValueError(
                f"checkpoint path {path} is an existing file (an "
                f"unsharded checkpoint?); remove it or choose another "
                f"path"
            )
        path.mkdir(parents=True, exist_ok=True)
        generation = 0
        manifest_path = path / CHECKPOINT_MANIFEST
        if manifest_path.is_file():
            try:
                previous = json.loads(manifest_path.read_text())
                generation = int(previous.get("generation", 0)) + 1
            except (json.JSONDecodeError, TypeError, ValueError):
                generation = 1
        shard_files = []
        # One lock hold across every shard: all files must describe
        # the same day boundary even while another thread keeps feeding.
        with self._lock:
            shard_dicts = [state.state_dict() for state in self._states]
        for index, payload in enumerate(shard_dicts):
            name = f"shard-{index:02d}.g{generation}.json"
            atomic_write_text(path / name, json.dumps(payload))
            shard_files.append(name)
        manifest = {
            "version": CHECKPOINT_VERSION,
            "pipeline": self.pipeline.config_dict(),
            "shard_count": len(shard_files),
            "shard_files": shard_files,
            "generation": generation,
        }
        # The manifest is the commit point: it lands last, atomically,
        # and names only complete files.  A crash before this line
        # leaves the previous manifest pointing at the previous
        # generation's files, all still present and consistent.
        atomic_write_text(manifest_path, json.dumps(manifest))
        # Only after the commit: prune superseded generations (and any
        # extra shards a wider previous layout left behind).
        for stale in path.glob("shard-*.json"):
            if stale.name not in shard_files:
                stale.unlink()
        return path

    @classmethod
    def load_checkpoint(
        cls, path: Path | str, *, workers: int = 1
    ) -> "MoasService":
        """Rebuild a session from a :meth:`save_checkpoint` file or dir.

        ``workers`` sets the resumed session's pool size (checkpoints
        never record one; see :meth:`resume`).
        """
        path = Path(path)
        if path.is_dir():
            manifest = json.loads(
                (path / CHECKPOINT_MANIFEST).read_text()
            )
            version = manifest.get("version")
            if version != CHECKPOINT_VERSION:
                raise ValueError(
                    f"unsupported checkpoint version {version!r}; "
                    f"expected {CHECKPOINT_VERSION}"
                )
            snapshot = {
                "version": version,
                "pipeline": manifest["pipeline"],
                "shards": [
                    json.loads((path / name).read_text())
                    for name in manifest["shard_files"]
                ],
            }
            return cls.resume(snapshot, workers=workers)
        return cls.resume(json.loads(path.read_text()), workers=workers)
