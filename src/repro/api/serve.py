"""``repro serve`` — a concurrent query + live-alert daemon over
:class:`~repro.api.service.MoasService`.

Production BGP monitors are long-running services: they answer point
queries ("what happened to 10.2.3.0/24?") and push anomaly alerts the
moment they fire, instead of making every consumer pay a full batch
``analyze`` run.  This module is that architecture in miniature — the
announce/subscribe shape of systems like GRIP, without the kafka —
built entirely on the standard library: a hand-rolled asyncio
HTTP/1.1 server (no ``http.server``), the renderer registry as the
response layer, and an SSE event stream for live alerts.

Layout:

- :class:`ServeApp` — the synchronous request core: routes ``GET``
  targets to JSON/CSV/ASCII responses rendered from consistent
  copy-on-merge snapshots of the shared session (the snapshot
  isolation contract of :meth:`~repro.api.service.MoasService.results`).
- :class:`ServeDaemon` — the asyncio shell: accepts connections,
  streams ``/v1/alerts`` over SSE, runs the ingestion loop (initial
  archive feed, then an MRT drop-directory tail) on a worker thread so
  the event loop never blocks on a day fold, and checkpoints
  crash-safely through the existing atomic checkpoint writer.
- :class:`BackgroundServer` — a thread harness for tests, benchmarks
  and notebooks: boot a daemon, get its URL, stop it.

Endpoints (all ``GET``):

========================================  =====================================
``/healthz``                              liveness probe (``ok``)
``/v1/status``                            daemon + session state, version
``/v1/figures``                           registered figure/format matrix
``/v1/figure/{name}?format=csv|ascii|json``  any registry rendering
``/v1/episodes/{prefix}``                 one prefix's episode record
``/v1/history/{prefix}?day=D|range=A:B``  indexed episode history answer
``/v1/verdicts``                          verdict engine assessments
``/v1/evaluation?format=...``             verdicts scored vs ground truth
``/v1/alerts?replay=N``                   SSE stream of live MOAS alerts
========================================  =====================================

Responses carry ``X-Repro-Days`` (days folded into the snapshot that
produced the body) so clients — and the acceptance tests — can pin any
response to one exact day boundary: every body is byte-identical to a
fresh ``render()`` over a batch ``analyze`` stopped at that day.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from urllib.parse import parse_qs, unquote

from repro import __version__
from repro.api.renderers import available_renderings, render
from repro.api.service import MoasService
from repro.api.sources import open_source
from repro.core.detector import DayDetection
from repro.core.realtime import DaySnapshotAlerter, MoasAlert
from repro.core.verdict import VerdictEngine
from repro.util.concurrency import guarded_by

#: Content types per renderer format.
_CONTENT_TYPES = {
    "csv": "text/csv; charset=utf-8",
    "ascii": "text/plain; charset=utf-8",
    "json": "application/json",
}

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class Response:
    """One finished HTTP response: status, content type, body, headers."""

    status: int
    content_type: str
    body: bytes
    headers: dict = field(default_factory=dict)

    @classmethod
    def json(
        cls, payload, status: int = 200, headers: dict | None = None
    ) -> "Response":
        """A JSON response from any ``json.dumps``-able payload."""
        return cls(
            status=status,
            content_type="application/json",
            body=(json.dumps(payload, indent=2) + "\n").encode(),
            headers=headers or {},
        )

    @classmethod
    def text(
        cls,
        body: str,
        status: int = 200,
        content_type: str = "text/plain; charset=utf-8",
        headers: dict | None = None,
    ) -> "Response":
        """A plain-text (or registry-rendered) response."""
        return cls(
            status=status,
            content_type=content_type,
            body=body.encode(),
            headers=headers or {},
        )

    @classmethod
    def error(cls, status: int, message: str) -> "Response":
        """A JSON error document (``{"error": ...}``)."""
        return cls.json({"error": message}, status=status)

    def encode(self, *, close: bool = False) -> bytes:
        """The full HTTP/1.1 wire form of this response."""
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        if close:
            lines.append("Connection: close")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


class AlertHub:
    """Fan-out of alert events to SSE subscribers, with replay.

    Lives entirely on the event loop thread: :meth:`publish` is called
    by the daemon after each day folds, subscribers are per-connection
    ``asyncio.Queue`` objects, and a bounded ring buffer keeps the most
    recent events so late subscribers can ``?replay=N`` what they
    missed.
    """

    def __init__(self, history: int = 512) -> None:
        self._subscribers: set[asyncio.Queue] = set()
        self._history: deque[tuple[int, dict]] = deque(maxlen=history)
        self._next_id = 1
        self.published = 0

    @property
    def subscriber_count(self) -> int:
        """Currently connected SSE subscribers."""
        return len(self._subscribers)

    def publish(self, payload: dict) -> int:
        """Assign the next event id, buffer, and enqueue to everyone."""
        event_id = self._next_id
        self._next_id += 1
        self.published += 1
        self._history.append((event_id, payload))
        for queue in self._subscribers:
            queue.put_nowait((event_id, payload))
        return event_id

    def subscribe(self) -> asyncio.Queue:
        """Register a new subscriber queue (unsubscribe when done)."""
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.add(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        """Drop a subscriber registered with :meth:`subscribe`."""
        self._subscribers.discard(queue)

    def replay(self, count: int) -> list[tuple[int, dict]]:
        """The last ``count`` buffered ``(event id, payload)`` events."""
        if count <= 0:
            return []
        return list(self._history)[-count:]


@dataclass
class IngestState:
    """Mutable ingestion-progress record surfaced by ``/v1/status``."""

    active: bool = False
    #: True once the initial archive feed has fully folded.
    initial_complete: bool = False
    days_ingested: int = 0
    checkpoints_written: int = 0
    #: Last ingestion problem (bad drop file, ...), or None.
    last_error: str | None = None


@dataclass
class ServeConfig:
    """Everything a serve daemon needs to boot.

    ``archive`` is the initial day source (a CDS archive directory, or
    anything :func:`~repro.api.sources.open_source` accepts as a path);
    ``watch`` optionally names an MRT drop directory whose new
    ``*.mrt`` day dumps are folded as they appear.  At least one of the
    two must be set.

    ``checkpoint`` enables crash-safe persistence: the session state is
    written there after the initial feed, every
    ``checkpoint_every_days`` newly folded days (0 = only at feed
    boundaries and shutdown), and on clean shutdown — and an existing
    checkpoint at boot resumes the session, skipping archive days it
    already covers.  Verdict/alert state is rebuilt from days folded
    after the resume; figures and episodes restore exactly.

    ``ingest_delay`` throttles the fold loop (seconds between days) so
    tests and benchmarks can hold the daemon in its "ingesting" phase;
    ``sse_keepalive`` is the idle-comment interval of the alert stream.
    """

    archive: Path | None = None
    host: str = "127.0.0.1"
    port: int = 8731
    watch: Path | None = None
    poll_interval: float = 2.0
    checkpoint: Path | None = None
    checkpoint_every_days: int = 0
    shards: int = 1
    rpki: Path | None = None
    ingest_delay: float = 0.0
    sse_keepalive: float = 15.0

    def __post_init__(self) -> None:
        """Normalize paths and validate the source configuration."""
        if self.archive is not None:
            self.archive = Path(self.archive)
        if self.watch is not None:
            self.watch = Path(self.watch)
        if self.checkpoint is not None:
            self.checkpoint = Path(self.checkpoint)
        if self.rpki is not None:
            self.rpki = Path(self.rpki)
        if self.archive is None and self.watch is None:
            raise ValueError(
                "serve needs a day source: an archive, a --watch "
                "drop directory, or both"
            )


@dataclass(frozen=True)
class _Snapshot:
    """One published read snapshot: results pinned to a day boundary."""

    days: int
    last_day_iso: str | None
    results: object


@guarded_by("_lock", "_snapshot_cache", "_verdict_cache", "_index_cache")
class ServeApp:
    """The daemon's synchronous core: shared state + request routing.

    One instance wraps one :class:`MoasService` plus the serving
    extras — a :class:`~repro.core.verdict.VerdictEngine` fed the same
    day stream, the :class:`~repro.core.realtime.DaySnapshotAlerter`
    that derives live alerts, and the archive's answer keys (incident
    labels, ground truth, registry) for ``/v1/evaluation``.

    Thread model: the ingestion loop calls :meth:`fold_detection` from
    a worker thread; request handlers call :meth:`handle` from others.
    Both sides take the app lock, and read snapshots are cached per day
    boundary, so readers always see results equal to a batch analyze
    stopped at some fed-day prefix — never a torn mid-fold state.
    """

    def __init__(
        self, service: MoasService, *, archive: Path | None = None
    ) -> None:
        self.service = service
        self.archive = Path(archive) if archive is not None else None
        self.alerter = DaySnapshotAlerter()
        #: Set by the daemon so ``/v1/status`` can report SSE fan-out.
        self.hub: AlertHub | None = None
        self.ingest = IngestState()
        self.started_monotonic = time.monotonic()
        self._lock = threading.RLock()
        self._snapshot_cache: _Snapshot | None = None
        self._verdict_cache: tuple[int, dict] | None = None
        self._index_cache: tuple[int, object] | None = None
        self._registry = None
        self._injected: list = []
        self._organic: list = []
        if self.archive is not None and (
            self.archive / "manifest.json"
        ).is_file():
            self._load_answer_keys()
        self.engine = VerdictEngine(roa_table=service.roa_table)

    def _load_answer_keys(self) -> None:
        from repro.scenario.archive import ArchiveReader
        from repro.scenario.incidents import IncidentLabel

        reader = ArchiveReader(self.archive)
        try:
            self._registry = reader.registry
            if reader.has_incidents():
                self._injected = [
                    IncidentLabel.from_dict(row)
                    for row in reader.incident_labels()
                ]
            if (self.archive / "ground_truth.json").is_file():
                self._organic = reader.ground_truth()
        finally:
            reader.close()

    # -- ingestion side ------------------------------------------------------

    @property
    def sse_subscribers(self) -> int:
        """Connected SSE subscribers (0 when no hub is attached)."""
        return self.hub.subscriber_count if self.hub is not None else 0

    @property
    def last_day(self):
        """The most recent day folded, or None for a fresh session."""
        return self.service.last_day

    @property
    def days_fed(self) -> int:
        """Days folded into the session so far."""
        return self.service.days_fed

    def fold_detection(self, detection: DayDetection) -> list[MoasAlert]:
        """Fold one day into session + verdict engine + alerter.

        Called from the ingestion worker thread; atomic with respect to
        every reader, and returns the alerts the day triggered so the
        daemon can publish them to SSE subscribers.
        """
        with self._lock:
            self.service.feed_day(detection)
            self.engine.feed_day(detection)
            return self.alerter.feed_day(detection)

    # -- consistent read snapshots -------------------------------------------

    def current(self) -> _Snapshot:
        """The session's results pinned to the latest day boundary.

        Cached per day count: between folds every request renders from
        the same detached :class:`~repro.analysis.pipeline.StudyResults`
        object, so concurrent readers are both consistent and cheap.
        """
        with self._lock:
            days = self.service.days_fed
            cache = self._snapshot_cache
            if cache is None or cache.days != days:
                last_day = self.service.last_day
                cache = _Snapshot(
                    days=days,
                    last_day_iso=(
                        last_day.isoformat() if last_day else None
                    ),
                    results=self.service.results(),
                )
                self._snapshot_cache = cache
            return cache

    def current_verdicts(self) -> tuple[int, dict]:
        """``(days fed, prefix -> Verdict)`` at the latest day boundary."""
        with self._lock:
            days = self.service.days_fed
            cache = self._verdict_cache
            if cache is None or cache[0] != days:
                cache = (
                    days,
                    self.engine.finalize(registry=self._registry),
                )
                self._verdict_cache = cache
            return cache

    def current_index(self):
        """``(snapshot, EpisodeIndex)`` pinned to one day boundary.

        The index is rebuilt (and cached) per day count under the app
        lock, from the same snapshot/verdict view every other reader
        sees — so ``/v1/episodes`` and ``/v1/history`` answers are
        byte-identical to a batch ``analyze --index`` + ``repro
        query`` run stopped at that day.
        """
        from repro.analysis.index import EpisodeIndex

        with self._lock:
            snapshot = self.current()
            cache = self._index_cache
            if cache is None or cache[0] != snapshot.days:
                _days, verdicts = self.current_verdicts()
                cache = (
                    snapshot.days,
                    EpisodeIndex.build(
                        snapshot.results, verdicts=verdicts
                    ),
                )
                self._index_cache = cache
            return snapshot, cache[1]

    def _meta_headers(self, snapshot: _Snapshot) -> dict:
        headers = {"X-Repro-Days": str(snapshot.days)}
        if snapshot.last_day_iso:
            headers["X-Repro-Last-Day"] = snapshot.last_day_iso
        return headers

    # -- request routing -----------------------------------------------------

    def handle(self, method: str, target: str) -> Response:
        """Route one request target to a finished :class:`Response`.

        Synchronous and side-effect-free, so it is directly unit
        testable and safe to run on any thread.  The SSE endpoint is
        the one route *not* answered here (it must stream); the daemon
        intercepts ``/v1/alerts`` before calling this.
        """
        path, _, query_string = target.partition("?")
        path = unquote(path)
        query = {
            key: values[-1]
            for key, values in parse_qs(query_string).items()
        }
        if method != "GET":
            return Response.error(405, f"method {method} not allowed")
        try:
            if path in ("/healthz", "/healthz/"):
                return Response.text("ok\n")
            if path == "/v1/status":
                return self._handle_status()
            if path == "/v1/figures":
                return Response.json(self._figure_matrix())
            if path.startswith("/v1/figure/"):
                return self._handle_figure(
                    path[len("/v1/figure/"):], query
                )
            if path.startswith("/v1/episodes/"):
                return self._handle_episode(path[len("/v1/episodes/"):])
            if path.startswith("/v1/history/"):
                return self._handle_history(
                    path[len("/v1/history/"):], query
                )
            if path == "/v1/verdicts":
                return self._handle_verdicts(query)
            if path == "/v1/evaluation":
                return self._handle_evaluation(query)
            return Response.error(404, f"no route for {path}")
        except Exception as error:  # noqa: BLE001 — last-resort guard
            # A handler bug must not tear down the connection loop;
            # surface it as a clean 500 instead.
            return Response.error(
                500, f"{type(error).__name__}: {error}"
            )

    def _figure_matrix(self) -> dict:
        """figure -> formats servable by ``/v1/figure/...`` right now."""
        return {
            figure: list(formats)
            for figure, formats in available_renderings().items()
            if figure != "evaluation"  # scored route: /v1/evaluation
        }

    def _handle_status(self) -> Response:
        service = self.service
        last_day = service.last_day
        payload = {
            "service": "repro-moas",
            "version": __version__,
            "days_fed": service.days_fed,
            "last_day": last_day.isoformat() if last_day else None,
            "uptime_seconds": round(
                time.monotonic() - self.started_monotonic, 3
            ),
            "shards": service.shards,
            "rpki": service.roa_table is not None,
            "ingest": {
                "active": self.ingest.active,
                "initial_complete": self.ingest.initial_complete,
                "days_ingested": self.ingest.days_ingested,
                "checkpoints_written": self.ingest.checkpoints_written,
                "last_error": self.ingest.last_error,
            },
            "alerts": {
                "emitted": self.alerter.alerts_emitted,
                "current_conflicts": len(
                    self.alerter.current_conflicts()
                ),
            },
            "evaluation": {
                "incident_labels": len(self._injected),
                "organic_events": len(self._organic),
            },
            "figures": sorted(self._figure_matrix()),
            "sse_subscribers": self.sse_subscribers,
        }
        return Response.json(payload)

    def _handle_figure(self, name: str, query: dict) -> Response:
        format = query.get("format", "csv")
        available = available_renderings()
        if name == "evaluation":
            # The evaluation renderers take an EvaluationResult, not
            # StudyResults; the scored document lives on its own route.
            return Response.error(
                400, "evaluation is served at /v1/evaluation"
            )
        if name not in available:
            return Response.error(
                404,
                f"unknown figure {name!r}; available: "
                f"{', '.join(sorted(available))}",
            )
        if format not in available[name]:
            return Response.error(
                400,
                f"figure {name!r} has no {format!r} renderer; "
                f"available formats: {', '.join(available[name])}",
            )
        snapshot = self.current()
        if snapshot.days == 0:
            return Response.error(503, "no days ingested yet")
        try:
            body = render(snapshot.results, name, format)
        except ValueError as error:
            return Response.error(400, str(error))
        return Response.text(
            body,
            content_type=_CONTENT_TYPES[format],
            headers=self._meta_headers(snapshot),
        )

    def _handle_episode(self, prefix_text: str) -> Response:
        from repro.netbase.prefix import Prefix

        try:
            prefix = Prefix.parse(prefix_text)
        except ValueError as error:
            return Response.error(400, f"bad prefix: {error}")
        snapshot, index = self.current_index()
        record = index.lookup(prefix)
        if record is None:
            return Response.error(
                404, f"no MOAS episode recorded for {prefix}"
            )
        # IndexRecord.episode_dict() is byte-identical to
        # episode_record(results, prefix) — the equivalence the
        # property suite pins — so answering from the O(log n) index
        # preserves this route's wire contract.
        return Response.json(
            record.episode_dict(),
            headers=self._meta_headers(snapshot),
        )

    def _handle_history(self, prefix_text: str, query: dict) -> Response:
        from repro.netbase.prefix import Prefix
        from repro.util.dates import parse_date

        try:
            prefix = Prefix.parse(prefix_text)
        except ValueError as error:
            return Response.error(400, f"bad prefix: {error}")
        if "day" in query and "range" in query:
            return Response.error(
                400, "pass day or range, not both"
            )
        day = window = None
        try:
            if "day" in query:
                day = parse_date(query["day"])
            elif "range" in query:
                start_text, sep, end_text = query["range"].partition(
                    ":"
                )
                if not sep:
                    return Response.error(
                        400,
                        f"range wants A:B (two ISO dates), got "
                        f"{query['range']!r}",
                    )
                window = (parse_date(start_text), parse_date(end_text))
        except ValueError as error:
            return Response.error(400, str(error))
        snapshot, index = self.current_index()
        answer = index.query(prefix, day=day, window=window)
        if answer is None:
            return Response.error(
                404, f"no MOAS episode recorded for {prefix}"
            )
        return Response.json(
            answer.to_dict(), headers=self._meta_headers(snapshot)
        )

    def _handle_verdicts(self, query: dict) -> Response:
        days, verdicts = self.current_verdicts()
        min_suspicion = 0.0
        if "min_suspicion" in query:
            try:
                min_suspicion = float(query["min_suspicion"])
            except ValueError:
                return Response.error(
                    400,
                    f"min_suspicion must be a float, got "
                    f"{query['min_suspicion']!r}",
                )
        kind = query.get("kind")
        rows = [
            verdict.to_dict()
            for prefix, verdict in sorted(
                verdicts.items(), key=lambda item: item[0].sort_key()
            )
            if verdict.suspicion >= min_suspicion
            and (kind is None or verdict.kind == kind)
        ]
        return Response.json(
            {"days_fed": days, "count": len(rows), "verdicts": rows},
            headers={"X-Repro-Days": str(days)},
        )

    def _handle_evaluation(self, query: dict) -> Response:
        from repro.analysis.evaluation import evaluate_verdicts

        format = query.get("format", "json")
        if format not in ("ascii", "csv", "json"):
            return Response.error(
                400,
                f"evaluation has no {format!r} renderer; available "
                f"formats: ascii, csv, json",
            )
        days, verdicts = self.current_verdicts()
        result = evaluate_verdicts(
            verdicts, injected=self._injected, organic=self._organic
        )
        return Response.text(
            render(result, "evaluation", format),
            content_type=_CONTENT_TYPES[format],
            headers={"X-Repro-Days": str(days)},
        )


def _sse_event(event_id: int, payload: dict) -> bytes:
    """One alert in SSE wire form (``id`` + ``event`` + ``data``)."""
    data = json.dumps(payload, separators=(",", ":"))
    return f"id: {event_id}\nevent: alert\ndata: {data}\n\n".encode()


class ServeDaemon:
    """The asyncio shell: listener, SSE streaming, ingestion, checkpoints.

    Build one from a :class:`ServeConfig` and either ``await``
    :meth:`run` (the CLI path — serves until :meth:`request_stop` or
    cancellation) or drive :class:`BackgroundServer` from synchronous
    code.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        if (
            config.checkpoint is not None
            and config.checkpoint.exists()
        ):
            service = MoasService.load_checkpoint(config.checkpoint)
            self.resumed = True
        else:
            roa_source = config.rpki
            if (
                roa_source is None
                and config.archive is not None
                and (config.archive / "roas.json").is_file()
            ):
                roa_source = config.archive
            service = MoasService(
                shards=config.shards, roa_table=roa_source
            )
            self.resumed = False
        self.app = ServeApp(service, archive=config.archive)
        self.hub = AlertHub()
        self.app.hub = self.hub
        self.port: int | None = None
        self._stop_event: asyncio.Event | None = None
        self._server: asyncio.Server | None = None

    @property
    def url(self) -> str:
        """Base URL once the listener is bound."""
        return f"http://{self.config.host}:{self.port}"

    def request_stop(self) -> None:
        """Ask a running daemon to shut down cleanly (thread-unsafe:
        call on the loop thread, or via ``call_soon_threadsafe``)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def run(self, on_ready=None) -> None:
        """Serve until stopped: bind, ingest, stream, checkpoint.

        ``on_ready`` (optional) is called with the daemon once the
        listener is bound and the port is known — before the initial
        feed completes, because serving during ingestion is the point.
        A final checkpoint is written on the way out when configured.
        """
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        print(f"[serve] listening on {self.url}", flush=True)
        if self.resumed:
            print(
                f"[serve] resumed checkpoint "
                f"{self.config.checkpoint} at "
                f"{self.app.days_fed} days",
                flush=True,
            )
        if on_ready is not None:
            on_ready(self)
        ingest_task = asyncio.create_task(self._ingest())
        try:
            async with self._server:
                await self._stop_event.wait()
        finally:
            ingest_task.cancel()
            try:
                await ingest_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            if self.config.checkpoint is not None:
                await asyncio.get_running_loop().run_in_executor(
                    None, self._write_checkpoint
                )
            print("[serve] stopped", flush=True)

    # -- ingestion -----------------------------------------------------------

    def _write_checkpoint(self) -> None:
        self.app.service.save_checkpoint(self.config.checkpoint)
        self.app.ingest.checkpoints_written += 1

    async def _checkpoint(self) -> None:
        if self.config.checkpoint is None:
            return
        await asyncio.get_running_loop().run_in_executor(
            None, self._write_checkpoint
        )

    async def _feed_source(self, source) -> int:
        """Fold every not-yet-seen day of ``source``; returns days fed.

        Detection decoding and the fold itself run on the executor so
        the event loop keeps serving requests between days; alerts
        publish to the hub as each day lands.
        """
        loop = asyncio.get_running_loop()
        app = self.app
        adapted = open_source(source)
        iterator = iter(adapted.detections())
        fed = 0
        while True:
            detection = await loop.run_in_executor(
                None, next, iterator, None
            )
            if detection is None:
                break
            last = app.last_day
            if last is not None and detection.day <= last:
                continue
            alerts = await loop.run_in_executor(
                None, app.fold_detection, detection
            )
            for alert in alerts:
                self.hub.publish(alert.to_dict())
            fed += 1
            app.ingest.days_ingested += 1
            every = self.config.checkpoint_every_days
            if every > 0 and app.ingest.days_ingested % every == 0:
                await self._checkpoint()
            if self.config.ingest_delay > 0:
                await asyncio.sleep(self.config.ingest_delay)
        return fed

    async def _ingest(self) -> None:
        """Initial archive feed, then tail the MRT drop directory."""
        app = self.app
        config = self.config
        app.ingest.active = True
        try:
            if config.archive is not None:
                fed = await self._feed_source(config.archive)
                print(
                    f"[serve] initial feed complete: {fed} new days "
                    f"({app.days_fed} total)",
                    flush=True,
                )
                await self._checkpoint()
            app.ingest.initial_complete = True
            if config.watch is None:
                return
            seen: set[str] = set()
            while True:
                try:
                    dropped = sorted(
                        path
                        for path in config.watch.glob("*.mrt")
                        if path.name not in seen
                    )
                except OSError as error:
                    app.ingest.last_error = str(error)
                    dropped = []
                fed = 0
                for path in dropped:
                    seen.add(path.name)
                    try:
                        fed += await self._feed_source(path)
                    except asyncio.CancelledError:
                        raise
                    except Exception as error:  # noqa: BLE001
                        # One malformed drop file must not kill the
                        # tail; record it and keep watching.
                        app.ingest.last_error = (
                            f"{path.name}: {error}"
                        )
                        print(
                            f"[serve] skipping {path.name}: {error}",
                            flush=True,
                        )
                if fed:
                    print(
                        f"[serve] folded {fed} dropped day(s) "
                        f"({app.days_fed} total)",
                        flush=True,
                    )
                    await self._checkpoint()
                await asyncio.sleep(config.poll_interval)
        finally:
            app.ingest.active = False

    # -- connection handling -------------------------------------------------

    async def _read_request(self, reader):
        try:
            line = await asyncio.wait_for(reader.readline(), timeout=30)
        except (asyncio.TimeoutError, ValueError):
            return None
        if not line:
            return None
        parts = line.decode("latin-1", "replace").split()
        if len(parts) != 3:
            return ("", "", {})  # malformed -> 400 from the caller
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            try:
                raw = await asyncio.wait_for(
                    reader.readline(), timeout=30
                )
            except (asyncio.TimeoutError, ValueError):
                return None
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1", "replace").partition(
                ":"
            )
            headers[name.strip().lower()] = value.strip()
            if len(headers) > 128:
                return ("", "", {})
        return method, target, headers

    async def _handle_client(self, reader, writer) -> None:
        """One connection: serve requests until close (keep-alive)."""
        loop = asyncio.get_running_loop()
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers = request
                if not method:
                    writer.write(
                        Response.error(
                            400, "malformed request"
                        ).encode(close=True)
                    )
                    await writer.drain()
                    break
                path = unquote(target.partition("?")[0])
                if path == "/v1/alerts":
                    await self._serve_alerts(writer, target)
                    break
                response = await loop.run_in_executor(
                    None, self.app.handle, method, target
                )
                wants_close = (
                    headers.get("connection", "").lower() == "close"
                )
                writer.write(response.encode(close=wants_close))
                await writer.drain()
                if wants_close:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_alerts(self, writer, target: str) -> None:
        """Stream the SSE alert feed until the client disconnects."""
        query_string = target.partition("?")[2]
        query = {
            key: values[-1]
            for key, values in parse_qs(query_string).items()
        }
        try:
            replay = int(query.get("replay", "0"))
        except ValueError:
            writer.write(
                Response.error(
                    400, "replay must be an integer"
                ).encode(close=True)
            )
            await writer.drain()
            return
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + b": repro-moas alert stream\n\n")
        queue = self.hub.subscribe()
        try:
            for event_id, payload in self.hub.replay(replay):
                writer.write(_sse_event(event_id, payload))
            await writer.drain()
            while True:
                try:
                    event_id, payload = await asyncio.wait_for(
                        queue.get(), timeout=self.config.sse_keepalive
                    )
                except asyncio.TimeoutError:
                    writer.write(b": keepalive\n\n")
                    await writer.drain()
                    continue
                writer.write(_sse_event(event_id, payload))
                await writer.drain()
        finally:
            self.hub.unsubscribe(queue)


class BackgroundServer:
    """A serve daemon on a background thread, for synchronous callers.

    The test-suite and benchmark harness::

        with BackgroundServer(ServeConfig(archive=path)) as url:
            ...  # url like "http://127.0.0.1:43211"

    ``start()`` returns once the listener is bound (ingestion may still
    be running — that's the point); ``stop()`` shuts the daemon down
    cleanly, including its final checkpoint.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.daemon: ServeDaemon | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None

    def start(self) -> str:
        """Boot the daemon; returns its base URL once listening."""
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("serve daemon did not become ready")
        if self._error is not None:
            raise RuntimeError(
                f"serve daemon failed to start: {self._error}"
            )
        return self.url

    @property
    def url(self) -> str:
        """The running daemon's base URL."""
        if self.daemon is None or self.daemon.port is None:
            raise RuntimeError("serve daemon is not running")
        return self.daemon.url

    def stop(self) -> None:
        """Shut the daemon down and join its thread."""
        if self._loop is not None and self.daemon is not None:
            try:
                self._loop.call_soon_threadsafe(
                    self.daemon.request_stop
                )
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=60)

    def __enter__(self) -> str:
        """Context-manager entry: start and return the base URL."""
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: always stop the daemon."""
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as error:  # noqa: BLE001 — reported to starter
            self._error = error
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            self.daemon = ServeDaemon(self.config)
        except BaseException as error:
            self._error = error
            self._ready.set()
            raise
        await self.daemon.run(on_ready=lambda _d: self._ready.set())


def run_serve(config: ServeConfig) -> int:
    """Run a serve daemon in the foreground until interrupted.

    The ``repro serve`` CLI body: blocks the calling thread, handles
    Ctrl-C as a clean shutdown (final checkpoint included), and returns
    a process exit code.
    """
    daemon = ServeDaemon(config)

    async def _main() -> None:
        task = asyncio.ensure_future(daemon.run())
        try:
            await task
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        # asyncio.run cancels the task tree on KeyboardInterrupt; the
        # daemon's finally-block checkpoint has already run by now.
        print("[serve] interrupted", flush=True)
    return 0
