"""Pluggable detection sources behind one protocol.

Every input the study can consume — CDS archives, binary MRT table
dumps, live :class:`~repro.bgp.network.Network` simulations, in-memory
feeds — reduces to the same contract: an object whose ``detections()``
method yields chronological :class:`~repro.core.detector.DayDetection`
records.  New inputs plug in by registering an adapter class with
:func:`register_source`; callers go through :func:`open_source`, which
auto-detects what it was handed.
"""

from __future__ import annotations

import datetime
import itertools
from collections.abc import Callable, Iterable, Iterator
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.core.detector import DayDetection, detect_snapshot
from repro.netbase.rib import RibSnapshot


@runtime_checkable
class DetectionSource(Protocol):
    """The contract every study input adapter satisfies.

    ``detections()`` yields one :class:`DayDetection` per observed day,
    in strictly increasing date order — exactly what
    :meth:`repro.api.MoasService.feed` and
    :meth:`repro.analysis.pipeline.StudyPipeline.run` consume.
    """

    def detections(self) -> Iterator[DayDetection]:
        """Stream the source's daily detections in date order."""
        ...


#: Registered adapter kinds, for ``open_source("kind:...")`` specs and
#: introspection.
_SOURCE_KINDS: dict[str, type] = {}


def register_source(kind: str) -> Callable[[type], type]:
    """Class decorator registering a :class:`DetectionSource` adapter.

    ``kind`` becomes the scheme accepted by :func:`open_source` string
    specs (``"archive:/data/run1"``).  The class must implement
    ``detections()`` and a ``from_spec(rest)`` classmethod for spec
    strings.
    """

    def decorate(cls: type) -> type:
        if kind in _SOURCE_KINDS:
            raise ValueError(f"source kind {kind!r} already registered")
        _SOURCE_KINDS[kind] = cls
        cls.kind = kind
        return cls

    return decorate


def source_kinds() -> tuple[str, ...]:
    """The registered source kinds, sorted."""
    return tuple(sorted(_SOURCE_KINDS))


@register_source("archive")
class ArchiveSource:
    """Daily detections from a CDS archive directory."""

    def __init__(self, directory: Path | str) -> None:
        self.directory = Path(directory)

    @classmethod
    def from_spec(cls, rest: str, **options) -> "ArchiveSource":
        """Build from the path part of an ``archive:`` spec."""
        return cls(rest, **options)

    @property
    def manifest(self) -> dict:
        """The archive's manifest (scale, seed, day count, ...).

        Read straight from ``manifest.json`` — constructing a reader
        here would load the registry, path table, and (for v2 stores)
        the whole footer just to answer a metadata question.
        """
        import json

        with open(Path(self.directory) / "manifest.json") as handle:
            return json.load(handle)

    @property
    def format(self) -> str:
        """The archive's day-store format, ``"v1"`` or ``"v2"``.

        Purely informational: detections, parallel partitioning, and
        checkpoints behave identically on both (v2 just reads faster).
        """
        return "v2" if self.manifest.get("format") == "cds-2" else "v1"

    def detections(self) -> Iterator[DayDetection]:
        """Stream detections straight off the archive's day chunks."""
        from repro.analysis.sources import detections_from_archive

        return detections_from_archive(self.directory)


@register_source("mrt")
class MrtFilesSource:
    """Daily detections from binary MRT table-dump files.

    ``paths`` are scanned in the given order; ``days`` optionally
    overrides the snapshot dates positionally (otherwise dates come
    from MRT record timestamps, like the paper's date-named archives).
    """

    def __init__(
        self,
        paths: Iterable[Path | str],
        *,
        days: Iterable[datetime.date] | None = None,
    ) -> None:
        self.paths = [Path(path) for path in paths]
        self.days = list(days) if days is not None else None

    @classmethod
    def from_spec(cls, rest: str, **options) -> "MrtFilesSource":
        """Build from an ``mrt:`` spec: a file, glob, or directory.

        Keyword options (e.g. ``days``) pass through to the
        constructor.  A spec matching no files is an error — a silent
        empty source would mask a typo'd path as a zero-day study.
        """
        import glob as globmodule

        path = Path(rest)
        if path.is_dir():
            matched = sorted(path.glob("*.mrt"))
        elif any(char in rest for char in "*?["):
            matched = sorted(Path(hit) for hit in globmodule.glob(rest))
        else:
            matched = [path]
        if not matched:
            raise FileNotFoundError(f"no MRT files match {rest!r}")
        return cls(matched, **options)

    def detections(self) -> Iterator[DayDetection]:
        """Parse each table dump and scan it for conflicts."""
        from repro.analysis.sources import detections_from_mrt_files

        return detections_from_mrt_files(self.paths, days=self.days)


@register_source("network")
class NetworkSource:
    """Daily detections from a live BGP :class:`Network` simulation.

    Each day the optional ``mutate(network, day)`` hook applies that
    day's events (originations, withdrawals, policy changes), the
    network is run to convergence, a Route Views style snapshot is taken
    from ``peer_asns``, and the paper's detector scans it.
    """

    def __init__(
        self,
        network,
        days: Iterable[datetime.date],
        peer_asns: list[int],
        *,
        mutate: Callable[[object, datetime.date], None] | None = None,
    ) -> None:
        self.network = network
        self.days = list(days)
        self.peer_asns = list(peer_asns)
        self.mutate = mutate

    @classmethod
    def from_spec(cls, rest: str, **options) -> "NetworkSource":
        """Network sources hold live objects; specs cannot name them."""
        raise ValueError(
            "network sources cannot be opened from a string spec; "
            "construct NetworkSource(network, days, peer_asns) directly"
        )

    def detections(self) -> Iterator[DayDetection]:
        """Mutate, converge, snapshot and detect, one day at a time."""
        for day in self.days:
            if self.mutate is not None:
                self.mutate(self.network, day)
            self.network.run_to_convergence()
            snapshot = self.network.collector_snapshot(day, self.peer_asns)
            yield detect_snapshot(snapshot)


@register_source("memory")
class MemorySource:
    """Daily detections from an in-memory feed.

    Items may be ready-made :class:`DayDetection` records or raw
    :class:`RibSnapshot` tables (scanned on the fly) — the bridge for
    tests, notebooks, and services that assemble updates themselves.
    """

    def __init__(
        self, items: Iterable[DayDetection | RibSnapshot]
    ) -> None:
        self.items = items

    @classmethod
    def from_spec(cls, rest: str, **options) -> "MemorySource":
        """Memory sources hold live objects; specs cannot name them."""
        raise ValueError(
            "memory sources cannot be opened from a string spec; "
            "construct MemorySource(items) directly"
        )

    def detections(self) -> Iterator[DayDetection]:
        """Yield items as-is, detecting over raw snapshots."""
        for item in self.items:
            if isinstance(item, RibSnapshot):
                yield detect_snapshot(item)
            else:
                yield item


def open_source(obj, **options) -> DetectionSource:
    """Adapt ``obj`` into a :class:`DetectionSource`.

    Accepted forms:

    - an existing :class:`DetectionSource` (returned unchanged);
    - a ``"kind:rest"`` spec string for any registered kind;
    - a path: a CDS archive directory (``manifest.json`` present), a
      directory of ``*.mrt`` dumps, or a single MRT file;
    - a BGP :class:`~repro.bgp.network.Network` (requires ``days`` and
      ``peer_asns`` keyword options);
    - any iterable of :class:`DayDetection` / :class:`RibSnapshot`
      items or MRT file paths.
    """
    from repro.bgp.network import Network

    if isinstance(obj, DetectionSource) and not isinstance(
        obj, (str, Path, Network)
    ):
        return obj
    if isinstance(obj, Network):
        return NetworkSource(obj, **options)
    if isinstance(obj, str) and ":" in obj and not Path(obj).exists():
        kind, _, rest = obj.partition(":")
        if kind not in _SOURCE_KINDS:
            raise ValueError(
                f"unknown source kind {kind!r}; "
                f"registered: {', '.join(source_kinds())}"
            )
        return _SOURCE_KINDS[kind].from_spec(rest, **options)
    if isinstance(obj, (str, Path)):
        path = Path(obj)
        if (path / "manifest.json").exists():
            return ArchiveSource(path, **options)
        if path.is_dir():
            dumps = sorted(path.glob("*.mrt"))
            if not dumps:
                raise FileNotFoundError(
                    f"{path} is neither a CDS archive (no manifest.json) "
                    f"nor an MRT directory (no *.mrt files)"
                )
            return MrtFilesSource(dumps, **options)
        if not path.exists():
            raise FileNotFoundError(
                f"no CDS archive or MRT file at {path}"
            )
        return MrtFilesSource([path], **options)
    if isinstance(obj, Iterable):
        # Peek one element to type-sniff without materializing the
        # whole feed — streaming sources stay streaming.
        iterator = iter(obj)
        try:
            first = next(iterator)
        except StopIteration:
            return MemorySource([], **options)
        rest = itertools.chain([first], iterator)
        if isinstance(first, (str, Path)):
            return MrtFilesSource(rest, **options)
        return MemorySource(rest, **options)
    raise TypeError(f"cannot adapt {type(obj).__name__} into a DetectionSource")
