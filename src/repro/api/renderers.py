"""The renderer registry: every figure/table behind one ``render()``.

The legacy surface was a pair of free functions per figure
(``figure1_csv`` / ``figure1_ascii``, ...).  This module unifies them:
each output is a ``(figure, format)`` registration, and
:func:`render` dispatches.  New figures or formats are one
:func:`register_renderer` call away; the legacy functions stay the
implementations, so registry output is byte-identical to them.
"""

from __future__ import annotations

import json
from collections.abc import Callable

from repro.analysis.evaluation import (
    evaluation_ascii,
    evaluation_csv,
    evaluation_json,
)
from repro.analysis.export import episodes_csv, episodes_json, summary_json
from repro.analysis.figures import (
    figure1_ascii,
    figure1_csv,
    figure3_ascii,
    figure3_csv,
    figure5_ascii,
    figure5_csv,
    figure6_ascii,
    figure6_csv,
)
from repro.analysis.pipeline import StudyResults
from repro.analysis.report import figure2_table, figure4_table, summary_report
from repro.netbase.rpki import STATE_NOT_EVALUATED, ValidationState

#: A renderer turns :class:`StudyResults` into one output document.
Renderer = Callable[[StudyResults], str]

_RENDERERS: dict[tuple[str, str], Renderer] = {}


def register_renderer(
    figure: str, format: str
) -> Callable[[Renderer], Renderer]:
    """Decorator registering a renderer for ``(figure, format)``."""

    def decorate(renderer: Renderer) -> Renderer:
        key = (figure, format)
        if key in _RENDERERS:
            raise ValueError(f"renderer for {figure}/{format} already exists")
        _RENDERERS[key] = renderer
        return renderer

    return decorate


def available_renderings() -> dict[str, tuple[str, ...]]:
    """Registered figures mapped to their available formats."""
    figures: dict[str, list[str]] = {}
    for figure, format in sorted(_RENDERERS):
        figures.setdefault(figure, []).append(format)
    return {figure: tuple(formats) for figure, formats in figures.items()}


def render(results: StudyResults, figure: str, format: str = "csv") -> str:
    """Render ``figure`` from ``results`` in ``format``.

    ``figure`` is one of :func:`available_renderings`'s keys
    (``figure1`` ... ``figure6``, ``episodes``, ``summary``, ``rpki``,
    ``longevity``, ``evaluation``); ``format`` is ``csv``, ``ascii``,
    or ``json`` where registered.  Dispatch is purely by name: most
    renderers consume :class:`StudyResults`, while ``evaluation``
    renders an :class:`~repro.analysis.evaluation.EvaluationResult`.

    Every failure mode is a :class:`ValueError` with a usable message —
    an unknown figure, an unknown format for a known figure, or a
    ``results`` object that does not carry what the renderer needs
    (e.g. a plain dict, or an ``EvaluationResult`` handed to a
    ``StudyResults`` figure) — never a bare ``KeyError`` or
    ``AttributeError`` from inside a renderer.
    """
    renderer = _RENDERERS.get((figure, format))
    if renderer is None:
        available = available_renderings()
        if figure not in available:
            raise ValueError(
                f"unknown figure {figure!r}; "
                f"available: {', '.join(sorted(available))}"
            )
        raise ValueError(
            f"figure {figure!r} has no {format!r} renderer; "
            f"available formats: {', '.join(available[figure])}"
        )
    try:
        return renderer(results)
    except (AttributeError, KeyError, TypeError) as error:
        raise ValueError(
            f"cannot render {figure!r} from a "
            f"{type(results).__name__}: the renderer needs a different "
            f"results object ({error})"
        ) from error


# -- figure 1: daily conflict counts -----------------------------------------

register_renderer("figure1", "csv")(figure1_csv)
register_renderer("figure1", "ascii")(figure1_ascii)


@register_renderer("figure1", "json")
def _figure1_json(results: StudyResults) -> str:
    """Figure 1 series as JSON records."""
    return json.dumps(
        [
            {"date": day.isoformat(), "conflicts": count}
            for day, count in results.daily_series
        ],
        indent=2,
    )


# -- figure 2: yearly medians -------------------------------------------------


register_renderer("figure2", "ascii")(figure2_table)


@register_renderer("figure2", "csv")
def _figure2_csv(results: StudyResults) -> str:
    """Figure 2 series: year, median, increase rate."""
    lines = ["year,median_conflicts,increase_rate"]
    for year, median in sorted(results.yearly_medians.items()):
        rate = results.yearly_increase_rates.get(year)
        lines.append(
            f"{year},{median},{'' if rate is None else f'{rate:.4f}'}"
        )
    return "\n".join(lines) + "\n"


@register_renderer("figure2", "json")
def _figure2_json(results: StudyResults) -> str:
    """Figure 2 series as JSON records."""
    return json.dumps(
        [
            {
                "year": year,
                "median_conflicts": median,
                "increase_rate": results.yearly_increase_rates.get(year),
            }
            for year, median in sorted(results.yearly_medians.items())
        ],
        indent=2,
    )


# -- figure 3: duration histogram ---------------------------------------------

register_renderer("figure3", "csv")(figure3_csv)
register_renderer("figure3", "ascii")(figure3_ascii)


@register_renderer("figure3", "json")
def _figure3_json(results: StudyResults) -> str:
    """Figure 3 histogram as JSON records."""
    return json.dumps(
        [
            {
                "duration_days": duration,
                "conflicts": results.duration_histogram[duration],
            }
            for duration in sorted(results.duration_histogram)
        ],
        indent=2,
    )


# -- figure 4: duration expectations ------------------------------------------


register_renderer("figure4", "ascii")(figure4_table)


@register_renderer("figure4", "csv")
def _figure4_csv(results: StudyResults) -> str:
    """Figure 4 series: minimum duration filter, expectation."""
    lines = ["min_duration_days,expectation_days"]
    for threshold, expectation in sorted(
        results.duration_expectations.items()
    ):
        lines.append(f"{threshold},{expectation}")
    return "\n".join(lines) + "\n"


@register_renderer("figure4", "json")
def _figure4_json(results: StudyResults) -> str:
    """Figure 4 expectations as JSON records."""
    return json.dumps(
        [
            {"min_duration_days": threshold, "expectation_days": expectation}
            for threshold, expectation in sorted(
                results.duration_expectations.items()
            )
        ],
        indent=2,
    )


# -- figure 5: prefix-length distribution -------------------------------------

register_renderer("figure5", "csv")(figure5_csv)
register_renderer("figure5", "ascii")(figure5_ascii)


@register_renderer("figure5", "json")
def _figure5_json(results: StudyResults) -> str:
    """Figure 5 distribution as JSON records."""
    return json.dumps(
        [
            {
                "year": year,
                "prefix_length": length,
                "mean_daily_conflicts": value,
            }
            for year, by_length in sorted(
                results.length_distribution.items()
            )
            for length, value in sorted(by_length.items())
        ],
        indent=2,
    )


# -- figure 6: classification series ------------------------------------------

register_renderer("figure6", "csv")(figure6_csv)
register_renderer("figure6", "ascii")(figure6_ascii)


@register_renderer("figure6", "json")
def _figure6_json(results: StudyResults) -> str:
    """Figure 6 per-class series as JSON records."""
    return json.dumps(
        [
            {
                "date": day.isoformat(),
                **{
                    conflict_class.value: count
                    for conflict_class, count in counts.items()
                },
            }
            for day, counts in results.classification_series
        ],
        indent=2,
    )


# -- episode table and study summary ------------------------------------------

register_renderer("episodes", "csv")(episodes_csv)
register_renderer("episodes", "json")(episodes_json)
register_renderer("summary", "json")(summary_json)
register_renderer("summary", "ascii")(summary_report)


# -- RPKI validation-state breakdown and long-lived-MOAS longevity ------------
#
# Both render :class:`StudyResults` produced with a ROA table (``repro
# analyze --rpki``); without one every episode lands in the single
# ``not_evaluated`` column, so the figures stay renderable either way.

#: Column order for validation states, worst first.
_RPKI_STATE_ORDER = (
    ValidationState.INVALID.value,
    ValidationState.VALID.value,
    ValidationState.NOT_FOUND.value,
    STATE_NOT_EVALUATED,
)

#: Longevity buckets: (label, min_days, max_days-inclusive).  Aligned
#: with the paper's duration thresholds (Figure 4) so the long-lived
#: tail ("Live Long and Prosper") is its own rows.
_LONGEVITY_BUCKETS = (
    ("1", 1, 1),
    ("2-9", 2, 9),
    ("10-29", 10, 29),
    ("30-89", 30, 89),
    ("90-299", 90, 299),
    ("300+", 300, None),
)


def _episode_state(results: StudyResults, prefix) -> str:
    state = results.rpki_episode_states.get(prefix)
    return STATE_NOT_EVALUATED if state is None else state


def _rpki_rows(results: StudyResults) -> list[dict]:
    """Per-validation-state episode aggregates, worst state first."""
    by_state: dict[str, list[int]] = {}
    for prefix, episode in results.episodes.items():
        by_state.setdefault(
            _episode_state(results, prefix), []
        ).append(episode.days_observed)
    total = len(results.episodes)
    rows = []
    for state in _RPKI_STATE_ORDER:
        durations = by_state.get(state)
        if durations is None:
            continue
        rows.append(
            {
                "state": state,
                "episodes": len(durations),
                "share": len(durations) / total if total else 0.0,
                "mean_duration_days": sum(durations) / len(durations),
                "max_duration_days": max(durations),
                "long_lived": sum(1 for days in durations if days >= 30),
            }
        )
    return rows


def _longevity_grid(
    results: StudyResults,
) -> tuple[tuple[str, ...], list[tuple[str, dict[str, int]]]]:
    """(state columns, [(bucket label, state -> episodes)]) rows."""
    present = {
        _episode_state(results, prefix) for prefix in results.episodes
    }
    states = tuple(
        state for state in _RPKI_STATE_ORDER if state in present
    ) or (STATE_NOT_EVALUATED,)
    rows = []
    for label, low, high in _LONGEVITY_BUCKETS:
        counts = dict.fromkeys(states, 0)
        for prefix, episode in results.episodes.items():
            days = episode.days_observed
            if days < low or (high is not None and days > high):
                continue
            counts[_episode_state(results, prefix)] += 1
        rows.append((label, counts))
    return states, rows


@register_renderer("rpki", "csv")
def _rpki_csv(results: StudyResults) -> str:
    """Validation-state breakdown as CSV."""
    lines = [
        "state,episodes,share,mean_duration_days,"
        "max_duration_days,long_lived"
    ]
    for row in _rpki_rows(results):
        lines.append(
            f"{row['state']},{row['episodes']},{row['share']:.4f},"
            f"{row['mean_duration_days']:.2f},"
            f"{row['max_duration_days']},{row['long_lived']}"
        )
    return "\n".join(lines) + "\n"


@register_renderer("rpki", "ascii")
def _rpki_ascii(results: StudyResults) -> str:
    """The human-readable validation-state breakdown."""
    lines = [
        "RPKI origin validation of MOAS episodes",
        "=======================================",
        "",
        f"{'state':<15} {'episodes':>9} {'share':>7} {'mean d':>8} "
        f"{'max d':>6} {'>=30d':>6}",
    ]
    for row in _rpki_rows(results):
        lines.append(
            f"{row['state']:<15} {row['episodes']:>9} "
            f"{row['share']:>7.1%} {row['mean_duration_days']:>8.1f} "
            f"{row['max_duration_days']:>6} {row['long_lived']:>6}"
        )
    lines.append("")
    lines.append(f"{len(results.episodes)} episodes total")
    return "\n".join(lines) + "\n"


@register_renderer("rpki", "json")
def _rpki_json(results: StudyResults) -> str:
    """Validation-state breakdown as JSON records."""
    return json.dumps(
        [
            {**row, "share": round(row["share"], 4),
             "mean_duration_days": round(row["mean_duration_days"], 2)}
            for row in _rpki_rows(results)
        ],
        indent=2,
    )


@register_renderer("longevity", "csv")
def _longevity_csv(results: StudyResults) -> str:
    """Duration-bucket x validation-state episode counts as CSV."""
    states, rows = _longevity_grid(results)
    lines = ["duration_days," + ",".join(states) + ",total"]
    for label, counts in rows:
        values = [counts[state] for state in states]
        lines.append(
            f"{label}," + ",".join(str(v) for v in values)
            + f",{sum(values)}"
        )
    return "\n".join(lines) + "\n"


@register_renderer("longevity", "ascii")
def _longevity_ascii(results: StudyResults) -> str:
    """The long-lived-MOAS duration x RPKI-state table."""
    states, rows = _longevity_grid(results)
    width = max(13, *(len(state) + 2 for state in states))
    lines = [
        "MOAS episode longevity by RPKI validation state",
        "===============================================",
        "",
        f"{'duration':<10}"
        + "".join(f"{state:>{width}}" for state in states)
        + f"{'total':>8}",
    ]
    for label, counts in rows:
        values = [counts[state] for state in states]
        lines.append(
            f"{label:<10}"
            + "".join(f"{value:>{width}}" for value in values)
            + f"{sum(values):>8}"
        )
    return "\n".join(lines) + "\n"


@register_renderer("longevity", "json")
def _longevity_json(results: StudyResults) -> str:
    """Longevity grid as JSON records."""
    _states, rows = _longevity_grid(results)
    return json.dumps(
        [
            {"duration_days": label, **counts, "total": sum(counts.values())}
            for label, counts in rows
        ],
        indent=2,
    )


# -- episode-index query answers ----------------------------------------------
#
# ``repro query`` and ``/v1/history/{prefix}`` render a
# :class:`~repro.analysis.index.QueryAnswer` — one prefix's indexed
# history resolved against a day window — not a :class:`StudyResults`,
# so these are plain functions behind :func:`render_query` rather than
# registry entries (the registry's contract is whole-study figures).

#: Column order of the ``repro query`` CSV document.
_QUERY_CSV_COLUMNS = (
    "prefix,prefix_length,first_day,last_day,days_observed,origins,"
    "max_origins_single_day,ongoing,one_time,rpki_state,verdict_kind,"
    "verdict_tags,suspicion,perpetrators,window_start,window_end,"
    "active,overlap_days,concurrent_episodes,total_episodes,"
    "days_indexed"
)


def query_csv(answer) -> str:
    """One query answer as a single-row CSV document."""
    record = answer.record
    row = [
        str(record.prefix),
        str(record.prefix.length),
        record.first_day.isoformat(),
        record.last_day.isoformat(),
        str(record.days_observed),
        " ".join(str(asn) for asn in record.origins),
        str(record.max_origins_single_day),
        str(int(record.ongoing)),
        str(int(record.one_time)),
        record.rpki_state or "",
        record.verdict_kind or "",
        " ".join(record.verdict_tags),
        "" if record.suspicion is None else f"{record.suspicion:.4f}",
        " ".join(str(asn) for asn in record.perpetrators),
        answer.window_start.isoformat(),
        answer.window_end.isoformat(),
        str(int(answer.active)),
        str(answer.overlap_days),
        str(answer.concurrent_episodes),
        str(answer.total_episodes),
        str(answer.days_indexed),
    ]
    return _QUERY_CSV_COLUMNS + "\n" + ",".join(row) + "\n"


def query_ascii(answer) -> str:
    """The human-readable query answer."""
    record = answer.record
    title = f"MOAS episode history: {record.prefix}"
    window = (
        f"{answer.window_start.isoformat()} .. "
        f"{answer.window_end.isoformat()}"
        + (" (queried)" if answer.explicit_window else " (episode span)")
    )
    active = (
        f"yes ({answer.overlap_days} overlapping day(s))"
        if answer.active
        else "no"
    )
    lines = [
        title,
        "=" * len(title),
        "",
        f"{'window':<15} {window}",
        f"{'active':<15} {active}",
        f"{'first seen':<15} {record.first_day.isoformat()}",
        f"{'last seen':<15} {record.last_day.isoformat()}",
        f"{'days observed':<15} {record.days_observed}",
        f"{'origins':<15} "
        + " ".join(str(asn) for asn in record.origins),
        f"{'peak width':<15} {record.max_origins_single_day}",
        f"{'ongoing':<15} {'yes' if record.ongoing else 'no'}",
        f"{'one-time':<15} {'yes' if record.one_time else 'no'}",
    ]
    if record.rpki_state is not None:
        lines.append(f"{'rpki':<15} {record.rpki_state}")
    if record.verdict_kind is not None:
        tags = (
            ", ".join(record.verdict_tags)
            if record.verdict_tags
            else "-"
        )
        lines.append(
            f"{'verdict':<15} {record.verdict_kind} "
            f"(suspicion {record.suspicion:.2f}; tags: {tags})"
        )
        if record.perpetrators:
            lines.append(
                f"{'perpetrators':<15} "
                + " ".join(str(asn) for asn in record.perpetrators)
            )
    lines.append("")
    lines.append(
        f"{answer.concurrent_episodes} of {answer.total_episodes} "
        f"indexed episode(s) overlap the window "
        f"({answer.days_indexed} days indexed)"
    )
    return "\n".join(lines) + "\n"


def query_json(answer) -> str:
    """The query answer as its canonical JSON document."""
    return json.dumps(answer.to_dict(), indent=2)


_QUERY_RENDERERS = {
    "csv": query_csv,
    "ascii": query_ascii,
    "json": query_json,
}


def render_query(answer, format: str = "ascii") -> str:
    """Render a query answer in ``format`` (csv, ascii, or json)."""
    renderer = _QUERY_RENDERERS.get(format)
    if renderer is None:
        raise ValueError(
            f"query answers have no {format!r} renderer; available "
            f"formats: {', '.join(sorted(_QUERY_RENDERERS))}"
        )
    return renderer(answer)


# -- incident-attribution evaluation ------------------------------------------
#
# These render an
# :class:`~repro.analysis.evaluation.EvaluationResult` (the output of
# ``MoasService.evaluate()``), not a :class:`StudyResults` — the
# registry dispatches purely on the figure name, which is what lets the
# evaluation layer plug in without a parallel rendering surface.

register_renderer("evaluation", "csv")(evaluation_csv)
register_renderer("evaluation", "ascii")(evaluation_ascii)
register_renderer("evaluation", "json")(evaluation_json)
