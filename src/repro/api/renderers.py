"""The renderer registry: every figure/table behind one ``render()``.

The legacy surface was a pair of free functions per figure
(``figure1_csv`` / ``figure1_ascii``, ...).  This module unifies them:
each output is a ``(figure, format)`` registration, and
:func:`render` dispatches.  New figures or formats are one
:func:`register_renderer` call away; the legacy functions stay the
implementations, so registry output is byte-identical to them.
"""

from __future__ import annotations

import json
from collections.abc import Callable

from repro.analysis.evaluation import (
    evaluation_ascii,
    evaluation_csv,
    evaluation_json,
)
from repro.analysis.export import episodes_csv, summary_json
from repro.analysis.figures import (
    figure1_ascii,
    figure1_csv,
    figure3_ascii,
    figure3_csv,
    figure5_ascii,
    figure5_csv,
    figure6_ascii,
    figure6_csv,
)
from repro.analysis.pipeline import StudyResults
from repro.analysis.report import figure2_table, figure4_table, summary_report

#: A renderer turns :class:`StudyResults` into one output document.
Renderer = Callable[[StudyResults], str]

_RENDERERS: dict[tuple[str, str], Renderer] = {}


def register_renderer(
    figure: str, format: str
) -> Callable[[Renderer], Renderer]:
    """Decorator registering a renderer for ``(figure, format)``."""

    def decorate(renderer: Renderer) -> Renderer:
        key = (figure, format)
        if key in _RENDERERS:
            raise ValueError(f"renderer for {figure}/{format} already exists")
        _RENDERERS[key] = renderer
        return renderer

    return decorate


def available_renderings() -> dict[str, tuple[str, ...]]:
    """Registered figures mapped to their available formats."""
    figures: dict[str, list[str]] = {}
    for figure, format in sorted(_RENDERERS):
        figures.setdefault(figure, []).append(format)
    return {figure: tuple(formats) for figure, formats in figures.items()}


def render(results: StudyResults, figure: str, format: str = "csv") -> str:
    """Render ``figure`` from ``results`` in ``format``.

    ``figure`` is one of :func:`available_renderings`'s keys
    (``figure1`` ... ``figure6``, ``episodes``, ``summary``,
    ``evaluation``); ``format`` is ``csv``, ``ascii``, or ``json``
    where registered.  Dispatch is purely by name: most renderers
    consume :class:`StudyResults`, while ``evaluation`` renders an
    :class:`~repro.analysis.evaluation.EvaluationResult`.
    """
    renderer = _RENDERERS.get((figure, format))
    if renderer is None:
        available = available_renderings()
        if figure not in available:
            raise ValueError(
                f"unknown figure {figure!r}; "
                f"available: {', '.join(sorted(available))}"
            )
        raise ValueError(
            f"figure {figure!r} has no {format!r} renderer; "
            f"available formats: {', '.join(available[figure])}"
        )
    return renderer(results)


# -- figure 1: daily conflict counts -----------------------------------------

register_renderer("figure1", "csv")(figure1_csv)
register_renderer("figure1", "ascii")(figure1_ascii)


@register_renderer("figure1", "json")
def _figure1_json(results: StudyResults) -> str:
    """Figure 1 series as JSON records."""
    return json.dumps(
        [
            {"date": day.isoformat(), "conflicts": count}
            for day, count in results.daily_series
        ],
        indent=2,
    )


# -- figure 2: yearly medians -------------------------------------------------


register_renderer("figure2", "ascii")(figure2_table)


@register_renderer("figure2", "csv")
def _figure2_csv(results: StudyResults) -> str:
    """Figure 2 series: year, median, increase rate."""
    lines = ["year,median_conflicts,increase_rate"]
    for year, median in sorted(results.yearly_medians.items()):
        rate = results.yearly_increase_rates.get(year)
        lines.append(
            f"{year},{median},{'' if rate is None else f'{rate:.4f}'}"
        )
    return "\n".join(lines) + "\n"


@register_renderer("figure2", "json")
def _figure2_json(results: StudyResults) -> str:
    """Figure 2 series as JSON records."""
    return json.dumps(
        [
            {
                "year": year,
                "median_conflicts": median,
                "increase_rate": results.yearly_increase_rates.get(year),
            }
            for year, median in sorted(results.yearly_medians.items())
        ],
        indent=2,
    )


# -- figure 3: duration histogram ---------------------------------------------

register_renderer("figure3", "csv")(figure3_csv)
register_renderer("figure3", "ascii")(figure3_ascii)


@register_renderer("figure3", "json")
def _figure3_json(results: StudyResults) -> str:
    """Figure 3 histogram as JSON records."""
    return json.dumps(
        [
            {
                "duration_days": duration,
                "conflicts": results.duration_histogram[duration],
            }
            for duration in sorted(results.duration_histogram)
        ],
        indent=2,
    )


# -- figure 4: duration expectations ------------------------------------------


register_renderer("figure4", "ascii")(figure4_table)


@register_renderer("figure4", "csv")
def _figure4_csv(results: StudyResults) -> str:
    """Figure 4 series: minimum duration filter, expectation."""
    lines = ["min_duration_days,expectation_days"]
    for threshold, expectation in sorted(
        results.duration_expectations.items()
    ):
        lines.append(f"{threshold},{expectation}")
    return "\n".join(lines) + "\n"


@register_renderer("figure4", "json")
def _figure4_json(results: StudyResults) -> str:
    """Figure 4 expectations as JSON records."""
    return json.dumps(
        [
            {"min_duration_days": threshold, "expectation_days": expectation}
            for threshold, expectation in sorted(
                results.duration_expectations.items()
            )
        ],
        indent=2,
    )


# -- figure 5: prefix-length distribution -------------------------------------

register_renderer("figure5", "csv")(figure5_csv)
register_renderer("figure5", "ascii")(figure5_ascii)


@register_renderer("figure5", "json")
def _figure5_json(results: StudyResults) -> str:
    """Figure 5 distribution as JSON records."""
    return json.dumps(
        [
            {
                "year": year,
                "prefix_length": length,
                "mean_daily_conflicts": value,
            }
            for year, by_length in sorted(
                results.length_distribution.items()
            )
            for length, value in sorted(by_length.items())
        ],
        indent=2,
    )


# -- figure 6: classification series ------------------------------------------

register_renderer("figure6", "csv")(figure6_csv)
register_renderer("figure6", "ascii")(figure6_ascii)


@register_renderer("figure6", "json")
def _figure6_json(results: StudyResults) -> str:
    """Figure 6 per-class series as JSON records."""
    return json.dumps(
        [
            {
                "date": day.isoformat(),
                **{
                    conflict_class.value: count
                    for conflict_class, count in counts.items()
                },
            }
            for day, counts in results.classification_series
        ],
        indent=2,
    )


# -- episode table and study summary ------------------------------------------

register_renderer("episodes", "csv")(episodes_csv)
register_renderer("summary", "json")(summary_json)
register_renderer("summary", "ascii")(summary_report)


# -- incident-attribution evaluation ------------------------------------------
#
# These render an
# :class:`~repro.analysis.evaluation.EvaluationResult` (the output of
# ``MoasService.evaluate()``), not a :class:`StudyResults` — the
# registry dispatches purely on the figure name, which is what lets the
# evaluation layer plug in without a parallel rendering surface.

register_renderer("evaluation", "csv")(evaluation_csv)
register_renderer("evaluation", "ascii")(evaluation_ascii)
register_renderer("evaluation", "json")(evaluation_json)
