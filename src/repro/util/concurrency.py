"""Concurrency annotations the static checker can enforce.

:func:`guarded_by` declares, on the class, which instance attributes a
lock protects.  The declaration is enforced two ways:

- statically by ``repro check``'s ``lock-discipline`` rule, which
  requires every ``self.<attr>`` access to a guarded attribute to sit
  lexically inside ``with self.<lock>:`` (``__init__`` excepted, since
  it runs before the instance is shared);
- at runtime only as metadata: the decorator records the mapping in
  ``__guarded_attrs__`` and changes no behavior, so annotating a class
  costs nothing on any hot path.
"""

from __future__ import annotations

from typing import TypeVar

_ClassT = TypeVar("_ClassT", bound=type)


def guarded_by(lock: str, *attributes: str):
    """Class decorator: ``attributes`` may only be touched under ``lock``.

    ``lock`` names the instance attribute holding the lock (e.g.
    ``"_lock"``).  Stacked or repeated decorations merge; later
    declarations win for an attribute named twice.

    Usage::

        @guarded_by("_lock", "_states", "_cache")
        class Service:
            ...
    """
    if not attributes:
        raise ValueError("guarded_by needs at least one attribute name")

    def decorate(cls: _ClassT) -> _ClassT:
        # Copy so subclasses never mutate a parent's declaration.
        guarded = dict(getattr(cls, "__guarded_attrs__", {}))
        for name in attributes:
            guarded[name] = lock
        cls.__guarded_attrs__ = guarded
        return cls

    return decorate
