"""Plain-text table rendering for reports and benchmark output."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned fixed-width table.

    Numeric cells are right-aligned, text cells left-aligned; column
    widths adapt to content.  Returns the table as a single string
    (no trailing newline) suitable for ``print``.
    """
    cells = [[_render(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [len(header) for header in headers]
    for row in cells:
        for col, text in enumerate(row):
            widths[col] = max(widths[col], len(text))

    numeric = [
        all(_is_numeric(row[col]) for row in rows) if rows else False
        for col in range(len(headers))
    ]

    def fmt_row(texts: Sequence[str]) -> str:
        parts = []
        for col, text in enumerate(texts):
            if numeric[col]:
                parts.append(text.rjust(widths[col]))
            else:
                parts.append(text.ljust(widths[col]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(fmt_row(row) for row in cells)
    return "\n".join(lines)


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def _is_numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
