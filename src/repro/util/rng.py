"""Deterministic, named random-number streams.

Every stochastic component of the simulation draws from its own named
stream derived from a single root seed.  This keeps runs reproducible and
— more importantly — makes components *independent*: adding draws to the
topology generator does not perturb the fault-event schedule.
"""

from __future__ import annotations

import hashlib
import random

import numpy as np


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a child seed from ``root_seed`` and a path of stream names.

    Uses SHA-256 so the mapping is stable across Python versions and
    machines (unlike ``hash()``).
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode("ascii"))
    for name in names:
        digest.update(b"/")
        digest.update(name.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class RngStreams:
    """A factory of independent named RNG streams under one root seed.

    >>> streams = RngStreams(42)
    >>> streams.python("events").random() == RngStreams(42).python("events").random()
    True
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)
        self._python_cache: dict[tuple[str, ...], random.Random] = {}
        self._numpy_cache: dict[tuple[str, ...], np.random.Generator] = {}

    def python(self, *names: str) -> random.Random:
        """A cached :class:`random.Random` for the named stream."""
        key = tuple(names)
        if key not in self._python_cache:
            self._python_cache[key] = random.Random(
                derive_seed(self.root_seed, *names)
            )
        return self._python_cache[key]

    def numpy(self, *names: str) -> np.random.Generator:
        """A cached :class:`numpy.random.Generator` for the named stream."""
        key = tuple(names)
        if key not in self._numpy_cache:
            self._numpy_cache[key] = np.random.default_rng(
                derive_seed(self.root_seed, *names)
            )
        return self._numpy_cache[key]

    def child(self, *names: str) -> "RngStreams":
        """A new stream factory rooted under a namespaced child seed."""
        return RngStreams(derive_seed(self.root_seed, *names))
