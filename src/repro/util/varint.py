"""Unsigned LEB128 varints, the wire primitive of the v2 day store.

Small non-negative integers dominate archive frames (dense prefix ids,
table indexes, day ordinals), so the v2 CDS format stores them as
unsigned LEB128: seven value bits per byte, high bit set on every byte
except the last.  Values below 128 cost one byte; the format caps at
ten bytes (the 64-bit ceiling) so a corrupted continuation bit can
never send the decoder into an unbounded scan.
"""

from __future__ import annotations

#: Longest legal encoding: ceil(64 / 7) bytes covers the full u64 range.
MAX_VARINT_BYTES = 10

#: Largest encodable value (unsigned 64-bit).
MAX_VARINT_VALUE = (1 << 64) - 1


def append_uvarint(out: bytearray, value: int) -> None:
    """Append the LEB128 encoding of ``value`` to ``out``."""
    if value < 0:
        raise ValueError(f"varints are unsigned, got {value}")
    if value > MAX_VARINT_VALUE:
        raise ValueError(f"varint value {value} exceeds 64 bits")
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def encode_uvarint(value: int) -> bytes:
    """The LEB128 encoding of ``value`` as a fresh bytes object."""
    out = bytearray()
    append_uvarint(out, value)
    return bytes(out)


def decode_uvarint(buffer, pos: int = 0) -> tuple[int, int]:
    """Decode one LEB128 value from ``buffer`` starting at ``pos``.

    Returns ``(value, next_pos)``.  Raises :class:`ValueError` on a
    truncated encoding (buffer ends mid-varint) or an over-long one
    (more than :data:`MAX_VARINT_BYTES` bytes — only possible for
    corrupt input, since the encoder never emits it).
    """
    result = 0
    shift = 0
    length = len(buffer)
    for count in range(MAX_VARINT_BYTES):
        if pos >= length:
            raise ValueError(f"truncated varint at byte {pos}")
        byte = buffer[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
    raise ValueError(
        f"varint longer than {MAX_VARINT_BYTES} bytes (corrupt input)"
    )
