"""Crash-safe file writing.

Checkpoints and manifests must never be observable half-written: a
process dying mid-``write_text`` leaves a truncated JSON file that a
later resume reads as corruption.  :func:`atomic_write_text` gives the
standard fix — write a temporary file in the *same directory* (same
filesystem, so the final rename cannot degrade to a copy) and
``os.replace`` it over the destination, which POSIX guarantees is
atomic: readers see either the old complete file or the new one.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_text(path: Path | str, text: str) -> Path:
    """Write ``text`` to ``path`` so no reader ever sees a torn file."""
    return _atomic_write(Path(path), text, mode="w")


def atomic_write_bytes(path: Path | str, data: bytes) -> Path:
    """Binary twin of :func:`atomic_write_text` (same guarantees).

    Used by binary side files such as the episode query index, whose
    readers treat a torn file as corruption — the rename makes a
    half-written index unobservable.
    """
    return _atomic_write(Path(path), data, mode="wb")


def _atomic_write(path: Path, payload, *, mode: str) -> Path:
    handle = tempfile.NamedTemporaryFile(
        mode=mode,
        dir=path.parent,
        prefix=f".{path.name}.",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except FileNotFoundError:
            pass
        raise
    return path
