"""Shared utilities: dates, deterministic RNG streams, ASCII plotting,
tables, worker-count resolution."""

from repro.util.dates import (
    DAY,
    StudyCalendar,
    date_range,
    parse_date,
)
from repro.util.rng import RngStreams
from repro.util.tables import format_table
from repro.util.workers import resolve_workers

__all__ = [
    "DAY",
    "StudyCalendar",
    "date_range",
    "parse_date",
    "RngStreams",
    "format_table",
    "resolve_workers",
]
