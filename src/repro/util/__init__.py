"""Shared utilities: dates, deterministic RNG streams, ASCII plotting, tables."""

from repro.util.dates import (
    DAY,
    StudyCalendar,
    date_range,
    parse_date,
)
from repro.util.rng import RngStreams
from repro.util.tables import format_table

__all__ = [
    "DAY",
    "StudyCalendar",
    "date_range",
    "parse_date",
    "RngStreams",
    "format_table",
]
