"""Worker-count resolution shared by every parallel entry point.

One rule everywhere (CLI flags, :class:`~repro.api.service.MoasService`,
:class:`~repro.analysis.parallel.ParallelExecutor`, the simulator's MRT
export pool): ``0``/``None`` auto-detects the CPUs available to this
process, ``1`` means the serial fallback, anything higher is taken
literally.
"""

from __future__ import annotations

import os


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count request.

    ``None`` or ``0`` auto-detects the CPUs available to this process
    (``os.process_cpu_count`` where available, honoring affinity
    masks); any positive integer passes through; negatives are an
    error.
    """
    if workers is None or workers == 0:
        counter = getattr(os, "process_cpu_count", None)
        detected = counter() if counter is not None else os.cpu_count()
        return max(1, detected or 1)
    workers = int(workers)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers
