"""Calendar helpers for the measurement study.

The paper's archive is a sequence of *daily* routing-table snapshots, so
all analysis code indexes time by whole days.  :class:`StudyCalendar` maps
between :class:`datetime.date` objects and dense day indices so that the
rest of the library can store per-day data in flat arrays.
"""

from __future__ import annotations

import datetime
from collections.abc import Iterator
from dataclasses import dataclass

DAY = datetime.timedelta(days=1)

_DATE_FORMATS = ("%Y-%m-%d", "%Y%m%d", "%m/%d/%Y")


def parse_date(text: str) -> datetime.date:
    """Parse a date in ``YYYY-MM-DD``, ``YYYYMMDD`` or ``MM/DD/YYYY`` form.

    Raises :class:`ValueError` if no supported format matches.
    """
    for fmt in _DATE_FORMATS:
        try:
            return datetime.datetime.strptime(text, fmt).date()
        except ValueError:
            continue
    raise ValueError(f"unrecognized date: {text!r}")


def date_range(
    start: datetime.date, end: datetime.date
) -> Iterator[datetime.date]:
    """Yield every date from ``start`` to ``end`` inclusive."""
    if end < start:
        raise ValueError(f"end {end} precedes start {start}")
    current = start
    while current <= end:
        yield current
        current += DAY


@dataclass(frozen=True)
class StudyCalendar:
    """A contiguous range of observation days with dense indexing.

    The paper analyzes 1279 daily snapshots from 1997-11-08 to 2001-07-18
    (the figure-1 x-axis window).  ``StudyCalendar`` provides O(1)
    conversion between dates and day indices and convenience slicing by
    calendar year, both of which the statistics code relies on.
    """

    start: datetime.date
    end: datetime.date

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"end {self.end} precedes start {self.start}")

    @property
    def num_days(self) -> int:
        """Number of daily snapshots in the study window."""
        return (self.end - self.start).days + 1

    def index_of(self, day: datetime.date) -> int:
        """Dense index of ``day`` within the window (0-based).

        Raises :class:`KeyError` for days outside the window so callers
        cannot silently index out of range.
        """
        offset = (day - self.start).days
        if offset < 0 or offset >= self.num_days:
            raise KeyError(f"{day} outside study window {self.start}..{self.end}")
        return offset

    def date_of(self, index: int) -> datetime.date:
        """Date of the snapshot at dense ``index``."""
        if index < 0 or index >= self.num_days:
            raise IndexError(f"day index {index} outside 0..{self.num_days - 1}")
        return self.start + datetime.timedelta(days=index)

    def __contains__(self, day: datetime.date) -> bool:
        return self.start <= day <= self.end

    def __iter__(self) -> Iterator[datetime.date]:
        return date_range(self.start, self.end)

    def days(self) -> Iterator[datetime.date]:
        """Alias of iteration, for readability at call sites."""
        return iter(self)

    def years(self) -> list[int]:
        """Calendar years intersecting the window, in order."""
        return list(range(self.start.year, self.end.year + 1))

    def year_slice(self, year: int) -> tuple[int, int]:
        """Dense index range ``[lo, hi)`` of days falling in ``year``.

        Returns an empty range when the year does not intersect the
        window.
        """
        year_start = datetime.date(year, 1, 1)
        year_end = datetime.date(year, 12, 31)
        lo = max(year_start, self.start)
        hi = min(year_end, self.end)
        if hi < lo:
            return (0, 0)
        return (self.index_of(lo), self.index_of(hi) + 1)


#: The paper's figure-1 window, 1997-11-08 to 2001-07-18.  This spans
#: 1349 calendar days, while the paper reports "1279 days" of archived
#: tables: the real NLANR/PCH archive had ~70 days without a usable
#: snapshot.  The scenario layer reproduces this by selecting 1279
#: observation days inside this window (see
#: ``repro.scenario.timeline``).
PAPER_CALENDAR = StudyCalendar(
    start=datetime.date(1997, 11, 8),
    end=datetime.date(2001, 7, 18),
)

#: Number of days with usable snapshots in the paper's archive.
PAPER_SNAPSHOT_DAYS = 1279
