"""ASCII rendering of the paper's figures.

matplotlib is not available in the reproduction environment, so figure
benchmarks emit (a) CSV series for external plotting and (b) the ASCII
charts produced here for immediate visual inspection.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

_BAR = "#"


def line_plot(
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 78,
    height: int = 16,
    title: str = "",
    y_log: bool = False,
    x_labels: tuple[str, str] | None = None,
) -> str:
    """Render one or more equally-long series as an ASCII line chart.

    Each series is drawn with its own marker character; a legend maps
    markers back to series names.  ``y_log`` plots log10 of the values
    (zeros are clamped to the smallest positive value).
    """
    if not series:
        raise ValueError("no series to plot")
    lengths = {len(values) for values in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    (length,) = lengths
    if length == 0:
        raise ValueError("series are empty")

    markers = "*+o.x@%&"
    transformed: dict[str, list[float]] = {}
    for name, values in series.items():
        if y_log:
            positive = [value for value in values if value > 0]
            floor = min(positive) if positive else 1.0
            transformed[name] = [
                math.log10(max(value, floor)) for value in values
            ]
        else:
            transformed[name] = [float(value) for value in values]

    lo = min(min(values) for values in transformed.values())
    hi = max(max(values) for values in transformed.values())
    if hi == lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(transformed.items()):
        marker = markers[index % len(markers)]
        for x_cell in range(width):
            src = x_cell * (length - 1) / max(width - 1, 1) if length > 1 else 0
            value = values[round(src)]
            y_cell = int((value - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - y_cell][x_cell] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{10 ** hi:.0f}" if y_log else f"{hi:.0f}"
    bottom_label = f"{10 ** lo:.0f}" if y_log else f"{lo:.0f}"
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(label_width)
        elif row_index == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    if x_labels:
        left, right = x_labels
        gap = max(width - len(left) - len(right), 1)
        lines.append(" " * (label_width + 2) + left + " " * gap + right)
    legend = "  ".join(
        f"{markers[index % len(markers)]}={name}"
        for index, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[object],
    values: Sequence[float],
    *,
    width: int = 60,
    title: str = "",
    y_log: bool = False,
) -> str:
    """Render labelled values as a horizontal ASCII bar chart."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        raise ValueError("nothing to plot")

    def transform(value: float) -> float:
        if not y_log:
            return float(value)
        return math.log10(value) if value > 0 else 0.0

    scaled = [transform(value) for value in values]
    peak = max(scaled) or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value, mag in zip(labels, values, scaled):
        bar = _BAR * max(int(mag / peak * width), 1 if value > 0 else 0)
        lines.append(f"{str(label).rjust(label_width)} |{bar} {value:g}")
    return "\n".join(lines)
