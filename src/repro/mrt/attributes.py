"""BGP path-attribute encoding and decoding.

A TABLE_DUMP entry carries the full attribute set of the best route a
peer exported.  The MOAS analysis only needs AS_PATH, but a credible
codec must round-trip the attributes real dumps contain, so ORIGIN,
NEXT_HOP, MED, LOCAL_PREF, ATOMIC_AGGREGATE, AGGREGATOR and COMMUNITIES
are all implemented; unknown optional attributes are preserved opaquely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mrt.buffer import Builder, Cursor
from repro.mrt.constants import (
    ATTR_FLAG_EXTENDED_LENGTH,
    ATTR_FLAG_OPTIONAL,
    BgpAttrType,
    BgpOrigin,
    WELL_KNOWN_FLAGS,
)
from repro.mrt.errors import MrtDecodeError
from repro.netbase.aspath import ASPath, Segment, SegmentType


@dataclass(frozen=True)
class UnknownAttribute:
    """An attribute type we do not interpret, kept byte-exact."""

    flags: int
    type_code: int
    payload: bytes


@dataclass
class PathAttributes:
    """Decoded BGP path attributes of one route."""

    origin: BgpOrigin = BgpOrigin.IGP
    as_path: ASPath = field(default_factory=ASPath)
    next_hop: int | None = None
    med: int | None = None
    local_pref: int | None = None
    atomic_aggregate: bool = False
    aggregator: tuple[int, int] | None = None  # (ASN, router-id)
    communities: tuple[int, ...] = ()
    unknown: tuple[UnknownAttribute, ...] = ()

    # -- encoding -----------------------------------------------------

    def encode(self, *, asn_size: int = 2) -> bytes:
        """Serialize to the wire attribute list (without a length prefix).

        ``asn_size`` is 2 for the classic encoding of the study era and
        4 for AS4-capable dumps.
        """
        builder = Builder()
        _emit(builder, BgpAttrType.ORIGIN, bytes([self.origin]))
        _emit(
            builder,
            BgpAttrType.AS_PATH,
            _encode_as_path(self.as_path, asn_size),
        )
        if self.next_hop is not None:
            _emit(
                builder,
                BgpAttrType.NEXT_HOP,
                self.next_hop.to_bytes(4, "big"),
            )
        if self.med is not None:
            _emit(
                builder,
                BgpAttrType.MULTI_EXIT_DISC,
                self.med.to_bytes(4, "big"),
            )
        if self.local_pref is not None:
            _emit(
                builder,
                BgpAttrType.LOCAL_PREF,
                self.local_pref.to_bytes(4, "big"),
            )
        if self.atomic_aggregate:
            _emit(builder, BgpAttrType.ATOMIC_AGGREGATE, b"")
        if self.aggregator is not None:
            asn, router_id = self.aggregator
            _emit(
                builder,
                BgpAttrType.AGGREGATOR,
                asn.to_bytes(asn_size, "big") + router_id.to_bytes(4, "big"),
            )
        if self.communities:
            payload = b"".join(
                community.to_bytes(4, "big") for community in self.communities
            )
            _emit(builder, BgpAttrType.COMMUNITIES, payload)
        for attribute in self.unknown:
            _emit_raw(
                builder, attribute.flags, attribute.type_code, attribute.payload
            )
        return builder.getvalue()

    # -- decoding -----------------------------------------------------

    @classmethod
    def decode(cls, data: bytes, *, asn_size: int = 2) -> "PathAttributes":
        """Parse a wire attribute list (without a length prefix)."""
        cursor = Cursor(data)
        attrs = cls()
        unknown: list[UnknownAttribute] = []
        seen: set[int] = set()
        while not cursor.at_end():
            flags = cursor.u8("attr flags")
            type_code = cursor.u8("attr type")
            if flags & ATTR_FLAG_EXTENDED_LENGTH:
                length = cursor.u16("attr length")
            else:
                length = cursor.u8("attr length")
            payload = cursor.take(length, f"attr {type_code} payload")
            if type_code in seen:
                raise MrtDecodeError(f"duplicate attribute type {type_code}")
            seen.add(type_code)
            cls._apply(attrs, unknown, flags, type_code, payload, asn_size)
        attrs.unknown = tuple(unknown)
        return attrs

    @staticmethod
    def _apply(
        attrs: "PathAttributes",
        unknown: list[UnknownAttribute],
        flags: int,
        type_code: int,
        payload: bytes,
        asn_size: int,
    ) -> None:
        if type_code == BgpAttrType.ORIGIN:
            if len(payload) != 1:
                raise MrtDecodeError(f"ORIGIN length {len(payload)} != 1")
            try:
                attrs.origin = BgpOrigin(payload[0])
            except ValueError as error:
                raise MrtDecodeError(f"bad ORIGIN value {payload[0]}") from error
        elif type_code == BgpAttrType.AS_PATH:
            attrs.as_path = _decode_as_path(payload, asn_size)
        elif type_code == BgpAttrType.NEXT_HOP:
            if len(payload) != 4:
                raise MrtDecodeError(f"NEXT_HOP length {len(payload)} != 4")
            attrs.next_hop = int.from_bytes(payload, "big")
        elif type_code == BgpAttrType.MULTI_EXIT_DISC:
            if len(payload) != 4:
                raise MrtDecodeError(f"MED length {len(payload)} != 4")
            attrs.med = int.from_bytes(payload, "big")
        elif type_code == BgpAttrType.LOCAL_PREF:
            if len(payload) != 4:
                raise MrtDecodeError(f"LOCAL_PREF length {len(payload)} != 4")
            attrs.local_pref = int.from_bytes(payload, "big")
        elif type_code == BgpAttrType.ATOMIC_AGGREGATE:
            if payload:
                raise MrtDecodeError("ATOMIC_AGGREGATE must be empty")
            attrs.atomic_aggregate = True
        elif type_code == BgpAttrType.AGGREGATOR:
            expected = asn_size + 4
            if len(payload) != expected:
                raise MrtDecodeError(
                    f"AGGREGATOR length {len(payload)} != {expected}"
                )
            attrs.aggregator = (
                int.from_bytes(payload[:asn_size], "big"),
                int.from_bytes(payload[asn_size:], "big"),
            )
        elif type_code == BgpAttrType.COMMUNITIES:
            if len(payload) % 4:
                raise MrtDecodeError(
                    f"COMMUNITIES length {len(payload)} not a multiple of 4"
                )
            attrs.communities = tuple(
                int.from_bytes(payload[offset : offset + 4], "big")
                for offset in range(0, len(payload), 4)
            )
        else:
            if not flags & ATTR_FLAG_OPTIONAL:
                raise MrtDecodeError(
                    f"unrecognized well-known attribute {type_code}"
                )
            unknown.append(UnknownAttribute(flags, type_code, payload))


def _emit(builder: Builder, attr_type: BgpAttrType, payload: bytes) -> None:
    _emit_raw(builder, WELL_KNOWN_FLAGS[attr_type], attr_type, payload)


def _emit_raw(
    builder: Builder, flags: int, type_code: int, payload: bytes
) -> None:
    if len(payload) > 255:
        builder.u8(flags | ATTR_FLAG_EXTENDED_LENGTH)
        builder.u8(type_code)
        builder.u16(len(payload))
    else:
        builder.u8(flags & ~ATTR_FLAG_EXTENDED_LENGTH)
        builder.u8(type_code)
        builder.u8(len(payload))
    builder.raw(payload)


def _encode_as_path(path: ASPath, asn_size: int) -> bytes:
    builder = Builder()
    for segment in path.segments:
        if len(segment.ases) > 255:
            raise MrtDecodeError(
                f"segment of {len(segment.ases)} ASes exceeds wire limit"
            )
        builder.u8(segment.kind)
        builder.u8(len(segment.ases))
        for asn in segment.ases:
            if asn >= 1 << (8 * asn_size):
                raise MrtDecodeError(
                    f"ASN {asn} does not fit in {asn_size} bytes"
                )
            builder.raw(asn.to_bytes(asn_size, "big"))
    return builder.getvalue()


def _decode_as_path(payload: bytes, asn_size: int) -> ASPath:
    cursor = Cursor(payload)
    segments: list[Segment] = []
    while not cursor.at_end():
        kind_value = cursor.u8("segment type")
        try:
            kind = SegmentType(kind_value)
        except ValueError as error:
            raise MrtDecodeError(
                f"bad AS_PATH segment type {kind_value}"
            ) from error
        count = cursor.u8("segment count")
        if count == 0:
            raise MrtDecodeError("empty AS_PATH segment")
        ases = tuple(
            int.from_bytes(cursor.take(asn_size, "segment ASN"), "big")
            for _ in range(count)
        )
        segments.append(Segment(kind, ases))
    return ASPath(segments)
