"""Exception hierarchy for the MRT codec."""

from __future__ import annotations


class MrtError(Exception):
    """Base class for all MRT codec errors."""


class MrtDecodeError(MrtError):
    """A record or attribute failed structural validation."""


class MrtTruncatedError(MrtDecodeError):
    """Input ended before a declared length was satisfied.

    Distinguished from :class:`MrtDecodeError` because real archives do
    get truncated by interrupted transfers; readers may choose to treat
    a trailing truncated record as end-of-file.
    """
