"""Reading MRT archives into RIB snapshots.

:class:`MrtReader` streams records from a file (gzip is detected by
magic bytes, matching how Route Views archives are stored);
:func:`read_rib_snapshot` assembles a full
:class:`~repro.netbase.rib.RibSnapshot` from either TABLE_DUMP or
TABLE_DUMP_V2 archives.
"""

from __future__ import annotations

import datetime
import gzip
from collections.abc import Iterator
from pathlib import Path
from typing import BinaryIO

from repro.mrt.constants import MrtType, TableDumpV2Subtype
from repro.mrt.errors import MrtDecodeError, MrtTruncatedError
from repro.mrt.records import (
    Bgp4mpMessage,
    Bgp4mpStateChange,
    MrtRecord,
    PeerIndexTable,
    RibIpv4Unicast,
    TableDumpRecord,
)
from repro.netbase.rib import PeerId, RibSnapshot, Route

_GZIP_MAGIC = b"\x1f\x8b"


def _open_maybe_gzip(path: Path) -> BinaryIO:
    raw = open(path, "rb")
    magic = raw.read(2)
    raw.seek(0)
    if magic == _GZIP_MAGIC:
        return gzip.open(raw, "rb")  # type: ignore[return-value]
    return raw


class MrtReader:
    """Iterate the records of one MRT file.

    Usage::

        with MrtReader(path) as reader:
            for record in reader:
                ...

    Unknown record types are yielded as raw :class:`MrtRecord` envelopes
    so callers can skip what they do not understand — important because
    real archives interleave record types.
    """

    def __init__(self, source: Path | str | BinaryIO) -> None:
        if isinstance(source, (str, Path)):
            self._stream: BinaryIO = _open_maybe_gzip(Path(source))
            self._owns_stream = True
        else:
            self._stream = source
            self._owns_stream = False

    def __enter__(self) -> "MrtReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Close the underlying stream if this reader opened it."""
        if self._owns_stream:
            self._stream.close()

    def __iter__(self) -> Iterator[MrtRecord]:
        return self.records()

    def records(self) -> Iterator[MrtRecord]:
        """Yield raw records until end of stream.

        A cleanly-ended stream stops iteration; a stream that ends in
        the middle of a record raises :class:`MrtTruncatedError`.
        """
        while True:
            header = self._stream.read(MrtRecord.HEADER_LEN)
            if not header:
                return
            if len(header) < MrtRecord.HEADER_LEN:
                raise MrtTruncatedError(
                    f"partial MRT header of {len(header)} bytes"
                )
            timestamp, mrt_type, subtype, length = MrtRecord.decode_header(
                header
            )
            body = self._stream.read(length)
            if len(body) < length:
                raise MrtTruncatedError(
                    f"record body truncated: need {length}, got {len(body)}"
                )
            yield MrtRecord(timestamp, mrt_type, subtype, body)

    def decoded(
        self,
    ) -> Iterator[
        TableDumpRecord
        | PeerIndexTable
        | RibIpv4Unicast
        | Bgp4mpMessage
        | Bgp4mpStateChange
    ]:
        """Yield decoded record bodies, skipping unknown record types."""
        for record in self.records():
            decoded = decode_record(record)
            if decoded is not None:
                yield decoded


def decode_record(
    record: MrtRecord,
) -> (
    TableDumpRecord
    | PeerIndexTable
    | RibIpv4Unicast
    | Bgp4mpMessage
    | Bgp4mpStateChange
    | None
):
    """Decode one raw record, returning None for unsupported types."""
    if record.mrt_type == MrtType.TABLE_DUMP:
        if record.subtype != TableDumpRecord.SUBTYPE:
            return None  # e.g. IPv6 table dumps
        return TableDumpRecord.decode_body(record.body)
    if record.mrt_type == MrtType.TABLE_DUMP_V2:
        if record.subtype == TableDumpV2Subtype.PEER_INDEX_TABLE:
            return PeerIndexTable.decode_body(record.body)
        if record.subtype == TableDumpV2Subtype.RIB_IPV4_UNICAST:
            return RibIpv4Unicast.decode_body(record.body)
        return None
    if record.mrt_type == MrtType.BGP4MP:
        if record.subtype == Bgp4mpMessage.SUBTYPE:
            return Bgp4mpMessage.decode_body(record.body)
        if record.subtype == Bgp4mpStateChange.SUBTYPE:
            return Bgp4mpStateChange.decode_body(record.body)
        return None
    return None


def read_rib_snapshot(
    path: Path | str, *, day: datetime.date | None = None
) -> RibSnapshot:
    """Load a whole table-dump file as a :class:`RibSnapshot`.

    Handles both archive generations transparently: v1 TABLE_DUMP rows
    carry peer identity inline; TABLE_DUMP_V2 files must begin with a
    PEER_INDEX_TABLE which subsequent RIB records reference.

    ``day`` overrides the snapshot date; by default it is derived from
    the first record's timestamp (UTC), which matches how the paper's
    daily archives are named.
    """
    snapshot_day = day
    routes: list[Route] = []
    peer_table: PeerIndexTable | None = None

    with MrtReader(path) as reader:
        for record in reader.records():
            if snapshot_day is None:
                snapshot_day = datetime.datetime.fromtimestamp(
                    record.timestamp, tz=datetime.timezone.utc
                ).date()
            decoded = decode_record(record)
            if decoded is None:
                continue
            if isinstance(decoded, PeerIndexTable):
                peer_table = decoded
            elif isinstance(decoded, TableDumpRecord):
                peer = PeerId(asn=decoded.peer_asn)
                routes.append(
                    Route(decoded.prefix, decoded.attributes.as_path, peer)
                )
            elif isinstance(decoded, RibIpv4Unicast):
                if peer_table is None:
                    raise MrtDecodeError(
                        "RIB_IPV4_UNICAST before PEER_INDEX_TABLE"
                    )
                for entry in decoded.entries:
                    if entry.peer_index >= len(peer_table.peers):
                        raise MrtDecodeError(
                            f"peer index {entry.peer_index} out of range"
                        )
                    peer_entry = peer_table.peers[entry.peer_index]
                    peer = PeerId(asn=peer_entry.asn)
                    routes.append(
                        Route(decoded.prefix, entry.attributes.as_path, peer)
                    )

    if snapshot_day is None:
        raise MrtDecodeError("file contains no MRT records")
    return RibSnapshot.from_routes(snapshot_day, routes)
