"""Wire constants for the MRT codec (RFC 6396, RFC 4271)."""

from __future__ import annotations

import enum


class MrtType(enum.IntEnum):
    """MRT record types we understand."""

    TABLE_DUMP = 12
    TABLE_DUMP_V2 = 13
    BGP4MP = 16


class TableDumpV2Subtype(enum.IntEnum):
    """TABLE_DUMP_V2 subtypes (RFC 6396 section 4.3)."""

    PEER_INDEX_TABLE = 1
    RIB_IPV4_UNICAST = 2


class Bgp4mpSubtype(enum.IntEnum):
    """BGP4MP subtypes (RFC 6396 section 4.4)."""

    STATE_CHANGE = 0
    MESSAGE = 1
    MESSAGE_AS4 = 4


#: AFI value for IPv4 — the only address family in the 2001 study.
AFI_IPV4 = 1


class BgpMessageType(enum.IntEnum):
    """BGP-4 message types (RFC 4271 section 4.1)."""

    OPEN = 1
    UPDATE = 2
    NOTIFICATION = 3
    KEEPALIVE = 4


class BgpAttrType(enum.IntEnum):
    """BGP path-attribute type codes (RFC 4271 section 5)."""

    ORIGIN = 1
    AS_PATH = 2
    NEXT_HOP = 3
    MULTI_EXIT_DISC = 4
    LOCAL_PREF = 5
    ATOMIC_AGGREGATE = 6
    AGGREGATOR = 7
    COMMUNITIES = 8


class BgpOrigin(enum.IntEnum):
    """ORIGIN attribute values."""

    IGP = 0
    EGP = 1
    INCOMPLETE = 2


#: Path-attribute flag bits.
ATTR_FLAG_OPTIONAL = 0x80
ATTR_FLAG_TRANSITIVE = 0x40
ATTR_FLAG_PARTIAL = 0x20
ATTR_FLAG_EXTENDED_LENGTH = 0x10

#: BGP message marker: 16 bytes of 0xFF (RFC 4271 section 4.1).
BGP_MARKER = b"\xff" * 16

#: Well-known flag combinations per attribute type.
WELL_KNOWN_FLAGS = {
    BgpAttrType.ORIGIN: ATTR_FLAG_TRANSITIVE,
    BgpAttrType.AS_PATH: ATTR_FLAG_TRANSITIVE,
    BgpAttrType.NEXT_HOP: ATTR_FLAG_TRANSITIVE,
    BgpAttrType.MULTI_EXIT_DISC: ATTR_FLAG_OPTIONAL,
    BgpAttrType.LOCAL_PREF: ATTR_FLAG_TRANSITIVE,
    BgpAttrType.ATOMIC_AGGREGATE: ATTR_FLAG_TRANSITIVE,
    BgpAttrType.AGGREGATOR: ATTR_FLAG_OPTIONAL | ATTR_FLAG_TRANSITIVE,
    BgpAttrType.COMMUNITIES: ATTR_FLAG_OPTIONAL | ATTR_FLAG_TRANSITIVE,
}
