"""Writing RIB snapshots as MRT archives.

This is how the simulated Route Views collector persists its daily
tables.  Both archive generations are supported because the paper's
sources span them: NLANR-era files are TABLE_DUMP (one record per
(peer, prefix) row), PCH-era files are TABLE_DUMP_V2 (a peer index plus
one record per prefix).
"""

from __future__ import annotations

import datetime
import gzip
from pathlib import Path
from typing import BinaryIO, Literal

from repro.mrt.attributes import PathAttributes
from repro.mrt.constants import BgpOrigin
from repro.mrt.records import (
    MrtRecord,
    PeerEntry,
    PeerIndexTable,
    RibEntry,
    RibIpv4Unicast,
    TableDumpRecord,
)
from repro.netbase.rib import PeerId, RibSnapshot

DumpFormat = Literal["table_dump", "table_dump_v2"]


class MrtWriter:
    """Append MRT records to a binary stream."""

    def __init__(self, stream: BinaryIO) -> None:
        self._stream = stream

    def write(self, record: MrtRecord) -> None:
        """Append one encoded MRT record to the stream."""
        self._stream.write(record.encode())


def _timestamp_for(day: datetime.date) -> int:
    """Midnight UTC of ``day`` — the nominal snapshot time."""
    midnight = datetime.datetime.combine(
        day, datetime.time(0, 0), tzinfo=datetime.timezone.utc
    )
    return int(midnight.timestamp())


def _synthetic_peer_address(peer: PeerId, index: int) -> int:
    """A stable, distinct IPv4 address for a simulated peer session.

    Real dumps record each peer's interface address at the exchange;
    the simulation assigns addresses from 198.32.0.0/16 (the historical
    exchange-point block) by peer order.
    """
    return (198 << 24) | (32 << 16) | (index + 1)


def write_rib_snapshot(
    path: Path | str,
    snapshot: RibSnapshot,
    *,
    dump_format: DumpFormat = "table_dump_v2",
    compress: bool = False,
    view_name: str = "route-views",
) -> Path:
    """Serialize ``snapshot`` to ``path`` in the requested MRT format.

    Returns the path written.  Attribute values beyond the AS path are
    synthesized deterministically (ORIGIN=IGP, NEXT_HOP=peer address),
    which is what matters for archive realism without inventing data
    the simulation does not model.
    """
    path = Path(path)
    timestamp = _timestamp_for(snapshot.day)
    peers = sorted(snapshot.peers)
    peer_index = {peer: position for position, peer in enumerate(peers)}

    opener = gzip.open if compress else open
    with opener(path, "wb") as stream:  # type: ignore[operator]
        writer = MrtWriter(stream)
        if dump_format == "table_dump_v2":
            _write_v2(writer, snapshot, peers, peer_index, timestamp, view_name)
        elif dump_format == "table_dump":
            _write_v1(writer, snapshot, peer_index, timestamp)
        else:
            raise ValueError(f"unknown dump format {dump_format!r}")
    return path


def _attributes_for(path_attrs_next_hop: int, as_path) -> PathAttributes:
    return PathAttributes(
        origin=BgpOrigin.IGP,
        as_path=as_path,
        next_hop=path_attrs_next_hop,
    )


def _write_v1(
    writer: MrtWriter,
    snapshot: RibSnapshot,
    peer_index: dict[PeerId, int],
    timestamp: int,
) -> None:
    sequence = 0
    for prefix, routes in sorted(
        snapshot.iter_prefix_routes(), key=lambda item: item[0].sort_key()
    ):
        for route in routes:
            address = _synthetic_peer_address(
                route.peer, peer_index[route.peer]
            )
            record = TableDumpRecord(
                view_number=0,
                sequence=sequence & 0xFFFF,
                prefix=prefix,
                status=1,
                originated_time=timestamp,
                peer_address=address,
                peer_asn=route.peer.asn,
                attributes=_attributes_for(address, route.path),
            )
            writer.write(record.to_record(timestamp))
            sequence += 1


def _write_v2(
    writer: MrtWriter,
    snapshot: RibSnapshot,
    peers: list[PeerId],
    peer_index: dict[PeerId, int],
    timestamp: int,
    view_name: str,
) -> None:
    table = PeerIndexTable(
        collector_bgp_id=0xC6336401,  # 198.51.100.1, documentation block
        view_name=view_name,
        peers=tuple(
            PeerEntry(
                bgp_id=_synthetic_peer_address(peer, position),
                address=_synthetic_peer_address(peer, position),
                asn=peer.asn,
            )
            for position, peer in enumerate(peers)
        ),
    )
    writer.write(table.to_record(timestamp))

    for sequence, (prefix, routes) in enumerate(
        sorted(
            snapshot.iter_prefix_routes(), key=lambda item: item[0].sort_key()
        )
    ):
        entries = tuple(
            RibEntry(
                peer_index=peer_index[route.peer],
                originated_time=timestamp,
                attributes=_attributes_for(
                    _synthetic_peer_address(
                        route.peer, peer_index[route.peer]
                    ),
                    route.path,
                ),
            )
            for route in routes
        )
        record = RibIpv4Unicast(
            sequence=sequence, prefix=prefix, entries=entries
        )
        writer.write(record.to_record(timestamp))
