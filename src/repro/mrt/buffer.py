"""Bounds-checked binary cursor used by all MRT decoders."""

from __future__ import annotations

from repro.mrt.errors import MrtTruncatedError


class Cursor:
    """A forward-only reader over a bytes buffer.

    Every read is bounds-checked and raises :class:`MrtTruncatedError`
    with the field name, which turns corrupt-archive debugging from
    struct offsets into readable messages.
    """

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    def remaining(self) -> int:
        """Bytes left to read."""
        return len(self._data) - self._pos

    def at_end(self) -> bool:
        """True when every byte has been consumed."""
        return self._pos >= len(self._data)

    def take(self, count: int, field: str = "bytes") -> bytes:
        """Read exactly ``count`` bytes."""
        if count < 0:
            raise MrtTruncatedError(f"negative length for {field}: {count}")
        end = self._pos + count
        if end > len(self._data):
            raise MrtTruncatedError(
                f"need {count} bytes for {field}, have {self.remaining()}"
            )
        chunk = self._data[self._pos : end]
        self._pos = end
        return chunk

    def u8(self, field: str = "u8") -> int:
        """Read one unsigned byte."""
        return self.take(1, field)[0]

    def u16(self, field: str = "u16") -> int:
        """Read a big-endian unsigned 16-bit integer."""
        return int.from_bytes(self.take(2, field), "big")

    def u32(self, field: str = "u32") -> int:
        """Read a big-endian unsigned 32-bit integer."""
        return int.from_bytes(self.take(4, field), "big")

    def sub_cursor(self, count: int, field: str = "sub") -> "Cursor":
        """A cursor limited to the next ``count`` bytes."""
        return Cursor(self.take(count, field))


class Builder:
    """Append-only byte builder mirroring :class:`Cursor`."""

    __slots__ = ("_parts",)

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def raw(self, data: bytes) -> "Builder":
        """Append raw bytes."""
        self._parts.append(data)
        return self

    def u8(self, value: int) -> "Builder":
        """Append one unsigned byte."""
        self._parts.append(value.to_bytes(1, "big"))
        return self

    def u16(self, value: int) -> "Builder":
        """Append a big-endian unsigned 16-bit integer."""
        self._parts.append(value.to_bytes(2, "big"))
        return self

    def u32(self, value: int) -> "Builder":
        """Append a big-endian unsigned 32-bit integer."""
        self._parts.append(value.to_bytes(4, "big"))
        return self

    def getvalue(self) -> bytes:
        """All appended bytes, concatenated."""
        return b"".join(self._parts)

    def __len__(self) -> int:
        return sum(len(part) for part in self._parts)
