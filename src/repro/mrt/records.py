"""MRT record structures and their wire codecs.

Each record class knows how to encode its body and decode itself from a
body buffer; the common 12-byte MRT header is handled by
:class:`MrtRecord`.  Only the record types present in Route Views table
archives (plus BGP4MP updates for the streaming extension) are modelled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.mrt.attributes import PathAttributes
from repro.mrt.buffer import Builder, Cursor
from repro.mrt.constants import (
    AFI_IPV4,
    BGP_MARKER,
    Bgp4mpSubtype,
    BgpMessageType,
    MrtType,
    TableDumpV2Subtype,
)
from repro.mrt.errors import MrtDecodeError
from repro.netbase.prefix import Prefix


@dataclass(frozen=True)
class MrtRecord:
    """One MRT record: common header plus an undecoded body."""

    timestamp: int
    mrt_type: int
    subtype: int
    body: bytes

    HEADER_LEN = 12

    def encode(self) -> bytes:
        """Serialize header + body."""
        builder = Builder()
        builder.u32(self.timestamp)
        builder.u16(self.mrt_type)
        builder.u16(self.subtype)
        builder.u32(len(self.body))
        builder.raw(self.body)
        return builder.getvalue()

    @classmethod
    def decode_header(cls, header: bytes) -> tuple[int, int, int, int]:
        """Parse the 12-byte header into (timestamp, type, subtype, length)."""
        cursor = Cursor(header)
        return (
            cursor.u32("timestamp"),
            cursor.u16("type"),
            cursor.u16("subtype"),
            cursor.u32("length"),
        )


# ---------------------------------------------------------------------------
# TABLE_DUMP (MRT type 12) — the format of the NLANR-era archives.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableDumpRecord:
    """One TABLE_DUMP entry: a single (peer, prefix, attributes) row."""

    view_number: int
    sequence: int
    prefix: Prefix
    status: int
    originated_time: int
    peer_address: int
    peer_asn: int
    attributes: PathAttributes

    SUBTYPE = AFI_IPV4

    def encode_body(self) -> bytes:
        """Serialize the record body to its wire form."""
        attr_bytes = self.attributes.encode(asn_size=2)
        builder = Builder()
        builder.u16(self.view_number)
        builder.u16(self.sequence)
        builder.u32(self.prefix.network)
        builder.u8(self.prefix.length)
        builder.u8(self.status)
        builder.u32(self.originated_time)
        builder.u32(self.peer_address)
        builder.u16(self.peer_asn)
        builder.u16(len(attr_bytes))
        builder.raw(attr_bytes)
        return builder.getvalue()

    @classmethod
    def decode_body(cls, body: bytes) -> "TableDumpRecord":
        cursor = Cursor(body)
        view_number = cursor.u16("view number")
        sequence = cursor.u16("sequence")
        network = cursor.u32("prefix")
        length = cursor.u8("prefix length")
        if length > 32:
            raise MrtDecodeError(f"IPv4 prefix length {length} > 32")
        status = cursor.u8("status")
        originated = cursor.u32("originated time")
        peer_address = cursor.u32("peer address")
        peer_asn = cursor.u16("peer AS")
        attr_len = cursor.u16("attribute length")
        attributes = PathAttributes.decode(
            cursor.take(attr_len, "attributes"), asn_size=2
        )
        if not cursor.at_end():
            raise MrtDecodeError(
                f"{cursor.remaining()} trailing bytes in TABLE_DUMP body"
            )
        return cls(
            view_number=view_number,
            sequence=sequence,
            prefix=Prefix(network, length, strict=False),
            status=status,
            originated_time=originated,
            peer_address=peer_address,
            peer_asn=peer_asn,
            attributes=attributes,
        )

    def to_record(self, timestamp: int) -> MrtRecord:
        """Wrap the encoded body in an MRT record envelope."""
        return MrtRecord(
            timestamp, MrtType.TABLE_DUMP, self.SUBTYPE, self.encode_body()
        )


# ---------------------------------------------------------------------------
# TABLE_DUMP_V2 (MRT type 13) — the format of the PCH-era archives.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PeerEntry:
    """One peer in a PEER_INDEX_TABLE."""

    bgp_id: int
    address: int
    asn: int

    #: Peer-type octet: bit 0 = IPv6 address, bit 1 = 4-byte ASN.  We
    #: emit IPv4 + 4-byte ASN, and accept 2-byte ASNs on decode.
    TYPE_AS4 = 0x02

    def encode(self) -> bytes:
        """Serialize this peer entry to its wire form."""
        builder = Builder()
        builder.u8(self.TYPE_AS4)
        builder.u32(self.bgp_id)
        builder.u32(self.address)
        builder.u32(self.asn)
        return builder.getvalue()

    @classmethod
    def decode(cls, cursor: Cursor) -> "PeerEntry":
        peer_type = cursor.u8("peer type")
        if peer_type & 0x01:
            raise MrtDecodeError("IPv6 peers unsupported (study is IPv4)")
        bgp_id = cursor.u32("peer BGP id")
        address = cursor.u32("peer address")
        if peer_type & 0x02:
            asn = cursor.u32("peer ASN")
        else:
            asn = cursor.u16("peer ASN")
        return cls(bgp_id=bgp_id, address=address, asn=asn)


@dataclass(frozen=True)
class PeerIndexTable:
    """The peer directory that precedes RIB entries in TABLE_DUMP_V2."""

    collector_bgp_id: int
    view_name: str
    peers: tuple[PeerEntry, ...]

    SUBTYPE = TableDumpV2Subtype.PEER_INDEX_TABLE

    def encode_body(self) -> bytes:
        """Serialize the record body to its wire form."""
        name_bytes = self.view_name.encode("utf-8")
        builder = Builder()
        builder.u32(self.collector_bgp_id)
        builder.u16(len(name_bytes))
        builder.raw(name_bytes)
        builder.u16(len(self.peers))
        for peer in self.peers:
            builder.raw(peer.encode())
        return builder.getvalue()

    @classmethod
    def decode_body(cls, body: bytes) -> "PeerIndexTable":
        cursor = Cursor(body)
        collector_id = cursor.u32("collector BGP id")
        name_len = cursor.u16("view name length")
        raw_name = cursor.take(name_len, "view name")
        try:
            view_name = raw_name.decode("utf-8")
        except UnicodeDecodeError as error:
            raise MrtDecodeError(f"view name is not UTF-8: {error}") from None
        peer_count = cursor.u16("peer count")
        peers = tuple(PeerEntry.decode(cursor) for _ in range(peer_count))
        if not cursor.at_end():
            raise MrtDecodeError(
                f"{cursor.remaining()} trailing bytes in PEER_INDEX_TABLE"
            )
        return cls(
            collector_bgp_id=collector_id, view_name=view_name, peers=peers
        )

    def to_record(self, timestamp: int) -> MrtRecord:
        """Wrap the encoded body in an MRT record envelope."""
        return MrtRecord(
            timestamp, MrtType.TABLE_DUMP_V2, self.SUBTYPE, self.encode_body()
        )


@dataclass(frozen=True)
class RibEntry:
    """One route in a RIB_IPV4_UNICAST record, referencing a peer index."""

    peer_index: int
    originated_time: int
    attributes: PathAttributes

    def encode(self) -> bytes:
        """Serialize this RIB entry to its wire form."""
        attr_bytes = self.attributes.encode(asn_size=4)
        builder = Builder()
        builder.u16(self.peer_index)
        builder.u32(self.originated_time)
        builder.u16(len(attr_bytes))
        builder.raw(attr_bytes)
        return builder.getvalue()

    @classmethod
    def decode(cls, cursor: Cursor) -> "RibEntry":
        peer_index = cursor.u16("peer index")
        originated = cursor.u32("originated time")
        attr_len = cursor.u16("attribute length")
        attributes = PathAttributes.decode(
            cursor.take(attr_len, "attributes"), asn_size=4
        )
        return cls(
            peer_index=peer_index,
            originated_time=originated,
            attributes=attributes,
        )


@dataclass(frozen=True)
class RibIpv4Unicast:
    """All peers' routes for one prefix (RFC 6396 section 4.3.2)."""

    sequence: int
    prefix: Prefix
    entries: tuple[RibEntry, ...]

    SUBTYPE = TableDumpV2Subtype.RIB_IPV4_UNICAST

    def encode_body(self) -> bytes:
        """Serialize the record body to its wire form."""
        builder = Builder()
        builder.u32(self.sequence)
        builder.u8(self.prefix.length)
        builder.raw(self.prefix.to_octets())
        builder.u16(len(self.entries))
        for entry in self.entries:
            builder.raw(entry.encode())
        return builder.getvalue()

    @classmethod
    def decode_body(cls, body: bytes) -> "RibIpv4Unicast":
        cursor = Cursor(body)
        sequence = cursor.u32("sequence")
        length = cursor.u8("prefix length")
        if length > 32:
            raise MrtDecodeError(f"IPv4 prefix length {length} > 32")
        octets = cursor.take((length + 7) // 8, "prefix octets")
        prefix = Prefix.from_octets(octets, length)
        entry_count = cursor.u16("entry count")
        entries = tuple(RibEntry.decode(cursor) for _ in range(entry_count))
        if not cursor.at_end():
            raise MrtDecodeError(
                f"{cursor.remaining()} trailing bytes in RIB_IPV4_UNICAST"
            )
        return cls(sequence=sequence, prefix=prefix, entries=entries)

    def to_record(self, timestamp: int) -> MrtRecord:
        """Wrap the encoded body in an MRT record envelope."""
        return MrtRecord(
            timestamp, MrtType.TABLE_DUMP_V2, self.SUBTYPE, self.encode_body()
        )


# ---------------------------------------------------------------------------
# BGP4MP (MRT type 16) — live UPDATE messages for the streaming alerter.
# ---------------------------------------------------------------------------


class BgpFsmState(enum.IntEnum):
    """BGP finite-state-machine states (RFC 4271 section 8.2.2)."""

    IDLE = 1
    CONNECT = 2
    ACTIVE = 3
    OPEN_SENT = 4
    OPEN_CONFIRM = 5
    ESTABLISHED = 6


@dataclass(frozen=True)
class Bgp4mpStateChange:
    """A peer session FSM transition (BGP4MP_STATE_CHANGE).

    Real Route Views update archives interleave these with UPDATE
    messages; a session falling out of ESTABLISHED invalidates every
    route previously learned from that peer, which stream consumers
    (like the realtime alerter) must treat as an implicit withdraw.
    """

    peer_asn: int
    local_asn: int
    interface_index: int
    peer_address: int
    local_address: int
    old_state: BgpFsmState
    new_state: BgpFsmState

    SUBTYPE = Bgp4mpSubtype.STATE_CHANGE

    def encode_body(self) -> bytes:
        """Serialize the record body to its wire form."""
        builder = Builder()
        builder.u16(self.peer_asn)
        builder.u16(self.local_asn)
        builder.u16(self.interface_index)
        builder.u16(AFI_IPV4)
        builder.u32(self.peer_address)
        builder.u32(self.local_address)
        builder.u16(self.old_state)
        builder.u16(self.new_state)
        return builder.getvalue()

    @classmethod
    def decode_body(cls, body: bytes) -> "Bgp4mpStateChange":
        """Parse a BGP4MP_STATE_CHANGE record body."""
        cursor = Cursor(body)
        peer_asn = cursor.u16("peer AS")
        local_asn = cursor.u16("local AS")
        interface = cursor.u16("interface index")
        afi = cursor.u16("AFI")
        if afi != AFI_IPV4:
            raise MrtDecodeError(f"unsupported AFI {afi}")
        peer_address = cursor.u32("peer address")
        local_address = cursor.u32("local address")
        try:
            old_state = BgpFsmState(cursor.u16("old state"))
            new_state = BgpFsmState(cursor.u16("new state"))
        except ValueError as error:
            raise MrtDecodeError(f"bad FSM state: {error}") from error
        if not cursor.at_end():
            raise MrtDecodeError(
                f"{cursor.remaining()} trailing bytes in STATE_CHANGE"
            )
        return cls(
            peer_asn=peer_asn,
            local_asn=local_asn,
            interface_index=interface,
            peer_address=peer_address,
            local_address=local_address,
            old_state=old_state,
            new_state=new_state,
        )

    def to_record(self, timestamp: int) -> MrtRecord:
        """Wrap the encoded body in an MRT record envelope."""
        return MrtRecord(
            timestamp, MrtType.BGP4MP, self.SUBTYPE, self.encode_body()
        )

    def session_lost(self) -> bool:
        """True when the session left ESTABLISHED (routes now invalid)."""
        return (
            self.old_state is BgpFsmState.ESTABLISHED
            and self.new_state is not BgpFsmState.ESTABLISHED
        )


@dataclass(frozen=True)
class Bgp4mpMessage:
    """A BGP UPDATE carried in a BGP4MP_MESSAGE record (IPv4, 2-byte AS)."""

    peer_asn: int
    local_asn: int
    interface_index: int
    peer_address: int
    local_address: int
    withdrawn: tuple[Prefix, ...] = ()
    attributes: PathAttributes | None = None
    announced: tuple[Prefix, ...] = ()

    SUBTYPE = Bgp4mpSubtype.MESSAGE

    def encode_body(self) -> bytes:
        """Serialize the record body to its wire form."""
        message = self._encode_bgp_update()
        builder = Builder()
        builder.u16(self.peer_asn)
        builder.u16(self.local_asn)
        builder.u16(self.interface_index)
        builder.u16(AFI_IPV4)
        builder.u32(self.peer_address)
        builder.u32(self.local_address)
        builder.raw(message)
        return builder.getvalue()

    def _encode_bgp_update(self) -> bytes:
        withdrawn_bytes = b"".join(
            bytes([prefix.length]) + prefix.to_octets()
            for prefix in self.withdrawn
        )
        attr_bytes = (
            self.attributes.encode(asn_size=2) if self.attributes else b""
        )
        nlri_bytes = b"".join(
            bytes([prefix.length]) + prefix.to_octets()
            for prefix in self.announced
        )
        body = Builder()
        body.u16(len(withdrawn_bytes))
        body.raw(withdrawn_bytes)
        body.u16(len(attr_bytes))
        body.raw(attr_bytes)
        body.raw(nlri_bytes)
        payload = body.getvalue()
        header = Builder()
        header.raw(BGP_MARKER)
        header.u16(19 + len(payload))
        header.u8(BgpMessageType.UPDATE)
        return header.getvalue() + payload

    @classmethod
    def decode_body(cls, body: bytes) -> "Bgp4mpMessage":
        cursor = Cursor(body)
        peer_asn = cursor.u16("peer AS")
        local_asn = cursor.u16("local AS")
        interface = cursor.u16("interface index")
        afi = cursor.u16("AFI")
        if afi != AFI_IPV4:
            raise MrtDecodeError(f"unsupported AFI {afi}")
        peer_address = cursor.u32("peer address")
        local_address = cursor.u32("local address")

        marker = cursor.take(16, "BGP marker")
        if marker != BGP_MARKER:
            raise MrtDecodeError("bad BGP message marker")
        msg_len = cursor.u16("BGP length")
        msg_type = cursor.u8("BGP type")
        if msg_type != BgpMessageType.UPDATE:
            raise MrtDecodeError(
                f"only UPDATE supported in BGP4MP, got type {msg_type}"
            )
        payload = cursor.sub_cursor(msg_len - 19, "BGP payload")

        withdrawn_len = payload.u16("withdrawn length")
        withdrawn = _decode_nlri(
            payload.sub_cursor(withdrawn_len, "withdrawn routes")
        )
        attr_len = payload.u16("attribute length")
        attr_bytes = payload.take(attr_len, "attributes")
        attributes = (
            PathAttributes.decode(attr_bytes, asn_size=2) if attr_bytes else None
        )
        announced = _decode_nlri(payload)
        return cls(
            peer_asn=peer_asn,
            local_asn=local_asn,
            interface_index=interface,
            peer_address=peer_address,
            local_address=local_address,
            withdrawn=withdrawn,
            attributes=attributes,
            announced=announced,
        )

    def to_record(self, timestamp: int) -> MrtRecord:
        """Wrap the encoded body in an MRT record envelope."""
        return MrtRecord(
            timestamp, MrtType.BGP4MP, self.SUBTYPE, self.encode_body()
        )


def _decode_nlri(cursor: Cursor) -> tuple[Prefix, ...]:
    prefixes: list[Prefix] = []
    while not cursor.at_end():
        length = cursor.u8("NLRI length")
        if length > 32:
            raise MrtDecodeError(f"NLRI prefix length {length} > 32")
        octets = cursor.take((length + 7) // 8, "NLRI octets")
        prefixes.append(Prefix.from_octets(octets, length))
    return tuple(prefixes)
