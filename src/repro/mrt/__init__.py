"""MRT routing-archive codec (RFC 6396 subset).

The paper's raw data is daily Route Views table dumps archived by NLANR
and PCH in MRT format.  The reproduction environment has neither network
access nor ``mrtparse``, so this subpackage implements the format from
scratch — both directions:

- :mod:`repro.mrt.reader` parses MRT files into
  :class:`repro.netbase.rib.RibSnapshot` objects,
- :mod:`repro.mrt.writer` serializes simulated collector state into
  valid MRT files, which is how the synthetic archive is produced.

Supported record types: TABLE_DUMP (IPv4), TABLE_DUMP_V2
(PEER_INDEX_TABLE / RIB_IPV4_UNICAST) and BGP4MP state/update messages
sufficient for the real-time alerter extension.
"""

from repro.mrt.attributes import PathAttributes
from repro.mrt.constants import (
    BgpAttrType,
    BgpOrigin,
    Bgp4mpSubtype,
    MrtType,
    TableDumpV2Subtype,
)
from repro.mrt.errors import MrtDecodeError, MrtError, MrtTruncatedError
from repro.mrt.reader import MrtReader, read_rib_snapshot
from repro.mrt.records import (
    Bgp4mpMessage,
    Bgp4mpStateChange,
    BgpFsmState,
    MrtRecord,
    PeerEntry,
    PeerIndexTable,
    RibEntry,
    RibIpv4Unicast,
    TableDumpRecord,
)
from repro.mrt.writer import MrtWriter, write_rib_snapshot

__all__ = [
    "PathAttributes",
    "BgpAttrType",
    "BgpOrigin",
    "Bgp4mpSubtype",
    "MrtType",
    "TableDumpV2Subtype",
    "MrtDecodeError",
    "MrtError",
    "MrtTruncatedError",
    "MrtReader",
    "read_rib_snapshot",
    "Bgp4mpMessage",
    "Bgp4mpStateChange",
    "BgpFsmState",
    "MrtRecord",
    "PeerEntry",
    "PeerIndexTable",
    "RibEntry",
    "RibIpv4Unicast",
    "TableDumpRecord",
    "MrtWriter",
    "write_rib_snapshot",
]
