"""IPv4 prefix value type.

A :class:`Prefix` is an immutable ``(network, length)`` pair stored as a
masked 32-bit integer plus a mask length.  The representation supports
the operations the MOAS analysis needs — parsing Route Views style
``a.b.c.d/len`` strings, containment tests, supernet/subnet navigation,
and total ordering for use as dictionary keys and in sorted reports.

The 2001 study is IPv4-only, so this type deliberately models only
IPv4.
"""

from __future__ import annotations

import re
from functools import total_ordering

_MAX_LENGTH = 32
_ADDRESS_MASK = 0xFFFFFFFF
_DOTTED_QUAD = re.compile(
    r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})(?:/(\d{1,2}))?$"
)


def _mask_for(length: int) -> int:
    """Netmask for a prefix length as a 32-bit integer."""
    if length == 0:
        return 0
    return (_ADDRESS_MASK << (_MAX_LENGTH - length)) & _ADDRESS_MASK


@total_ordering
class Prefix:
    """An immutable IPv4 prefix such as ``192.0.2.0/24``.

    Host bits must be zero; pass ``strict=False`` to silently mask them
    (useful when ingesting sloppy announcements, which do occur in real
    BGP data).
    """

    __slots__ = ("_network", "_length", "_hash")

    def __init__(self, network: int, length: int, *, strict: bool = True) -> None:
        if not 0 <= length <= _MAX_LENGTH:
            raise ValueError(f"prefix length {length} outside 0..32")
        if not 0 <= network <= _ADDRESS_MASK:
            raise ValueError(f"network {network:#x} outside 32-bit range")
        masked = network & _mask_for(length)
        if strict and masked != network:
            raise ValueError(
                f"host bits set in {_format_address(network)}/{length}"
            )
        self._network = masked
        self._length = length
        self._hash = None

    # -- constructors -------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len``; a bare address parses as a /32."""
        match = _DOTTED_QUAD.match(text.strip())
        if not match:
            raise ValueError(f"not an IPv4 prefix: {text!r}")
        octets = [int(match.group(index)) for index in range(1, 5)]
        if any(octet > 255 for octet in octets):
            raise ValueError(f"octet out of range in {text!r}")
        length = int(match.group(5)) if match.group(5) is not None else 32
        network = (
            (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]
        )
        return cls(network, length)

    @classmethod
    def from_octets(cls, octets: bytes, length: int) -> "Prefix":
        """Build a prefix from the truncated octet form used in MRT/BGP.

        BGP NLRI encodes only ``ceil(length / 8)`` octets; missing
        low-order octets are zero.
        """
        needed = (length + 7) // 8
        if len(octets) < needed:
            raise ValueError(
                f"need {needed} octets for /{length}, got {len(octets)}"
            )
        padded = bytes(octets[:needed]) + b"\x00" * (4 - needed)
        network = int.from_bytes(padded, "big")
        return cls(network, length, strict=False)

    # -- accessors ----------------------------------------------------

    @property
    def network(self) -> int:
        """Network address as a 32-bit integer (host bits zero)."""
        return self._network

    @property
    def length(self) -> int:
        """Mask length, 0..32."""
        return self._length

    @property
    def netmask(self) -> int:
        """Netmask as a 32-bit integer."""
        return _mask_for(self._length)

    @property
    def num_addresses(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (_MAX_LENGTH - self._length)

    def to_octets(self) -> bytes:
        """Truncated octet form (``ceil(length / 8)`` bytes) for NLRI."""
        needed = (self._length + 7) // 8
        return self._network.to_bytes(4, "big")[:needed]

    # -- relations ----------------------------------------------------

    def contains(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or more specific than ``self``."""
        if other._length < self._length:
            return False
        return (other._network & self.netmask) == self._network

    def contains_address(self, address: int) -> bool:
        """True if the 32-bit ``address`` falls inside the prefix."""
        return (address & self.netmask) == self._network

    def overlaps(self, other: "Prefix") -> bool:
        """True if the two prefixes share any address."""
        return self.contains(other) or other.contains(self)

    def supernet(self, *, new_length: int | None = None) -> "Prefix":
        """The covering prefix one bit (or ``new_length`` bits) shorter."""
        target = self._length - 1 if new_length is None else new_length
        if not 0 <= target <= self._length:
            raise ValueError(
                f"cannot widen /{self._length} to /{target}"
            )
        return Prefix(self._network & _mask_for(target), target, strict=False)

    def subnets(self) -> tuple["Prefix", "Prefix"]:
        """The two halves of this prefix, one bit longer."""
        if self._length >= _MAX_LENGTH:
            raise ValueError("cannot subnet a /32")
        child_length = self._length + 1
        low = Prefix(self._network, child_length, strict=False)
        high_bit = 1 << (_MAX_LENGTH - child_length)
        high = Prefix(self._network | high_bit, child_length, strict=False)
        return (low, high)

    def bit(self, position: int) -> int:
        """The ``position``-th most-significant network bit (0-based).

        Only bits inside the mask are meaningful; asking beyond
        ``length`` raises :class:`IndexError` to catch trie bugs early.
        """
        if not 0 <= position < self._length:
            raise IndexError(f"bit {position} outside /{self._length}")
        return (self._network >> (_MAX_LENGTH - 1 - position)) & 1

    @staticmethod
    def common_supernet(first: "Prefix", second: "Prefix") -> "Prefix":
        """The longest prefix containing both arguments."""
        max_length = min(first._length, second._length)
        diff = first._network ^ second._network
        length = 0
        while length < max_length:
            if diff >> (_MAX_LENGTH - 1 - length) & 1:
                break
            length += 1
        return Prefix(first._network & _mask_for(length), length, strict=False)

    # -- dunder -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return self._network == other._network and self._length == other._length

    def __lt__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self._network, self._length) < (other._network, other._length)

    def __hash__(self) -> int:
        # Prefixes spend their lives as dict keys in the study fold, so
        # the tuple hash is computed once and cached (hash() never
        # returns -1, leaving None as a safe sentinel).
        cached = self._hash
        if cached is None:
            cached = self._hash = hash((self._network, self._length))
        return cached

    def __str__(self) -> str:
        return f"{_format_address(self._network)}/{self._length}"

    def __repr__(self) -> str:
        return f"Prefix.parse({str(self)!r})"

    def sort_key(self) -> tuple[int, int]:
        """Stable ``(network, length)`` key for external sorting."""
        return (self._network, self._length)


def _format_address(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))
