"""Human-readable names for study-era AS numbers.

The paper's narrative names its actors (AS 8584, AS 7007, Sprint,
Cable & Wireless); reports read far better when the reproduction can do
the same.  The table covers the tier-1 backbone set the topology
generator wires in plus the incident ASNs; everything else renders as a
plain ``AS n``.
"""

from __future__ import annotations

from repro.netbase.asn import is_private_asn

#: Era (1997-2001) names for the ASNs the reproduction scripts use.
AS_NAMES: dict[int, str] = {
    209: "Qwest",
    701: "UUNET",
    1239: "Sprint",
    2914: "Verio",
    3356: "Level 3",
    3561: "Cable & Wireless",
    6453: "Teleglobe",
    7018: "AT&T",
    6447: "Oregon Route Views",
    7007: "MAI Network Services",
    8584: "AS 8584 (the 1998-04-07 incident)",
    15412: "FLAG Telecom",
}


def asn_name(asn: int) -> str:
    """A display string for ``asn``: name when known, ``AS n`` otherwise."""
    if asn in AS_NAMES:
        return f"AS {asn} ({AS_NAMES[asn]})"
    if is_private_asn(asn):
        return f"AS {asn} (private)"
    return f"AS {asn}"


def format_as_path(path: tuple[int, ...]) -> str:
    """A path rendered with names where known, e.g. for reports."""
    return " -> ".join(asn_name(asn) for asn in path)
