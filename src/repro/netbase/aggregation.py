"""Route aggregation — the paper's "theoretical causes" (Section VI-D).

RFC 1930 notes that aggregation can yield routes ending in AS sets; the
paper observed ~12 such prefixes and excluded them.  Faulty aggregation
(Section VI-E) — advertising an aggregate while unable to reach all its
more-specifics — is a real MOAS-producing fault.  This module provides
the mechanics both discussions rest on:

- :func:`aggregate` — combine adjacent routes into a supernet route,
  producing an AS_SET tail when origins differ (proxy aggregation);
- :func:`find_aggregable_pairs` — trie-driven discovery of sibling
  routes that could be aggregated;
- :func:`uncovered_specifics` — given an aggregate announcement and the
  routes an AS actually has, the more-specific space it *cannot* reach,
  i.e. the blackhole surface of a faulty aggregate.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.netbase.aspath import ASPath
from repro.netbase.prefix import Prefix
from repro.netbase.trie import PrefixTrie


@dataclass(frozen=True)
class AggregateRoute:
    """The outcome of aggregating a set of component routes."""

    prefix: Prefix
    path: ASPath
    atomic: bool  # True when component path information was dropped
    components: tuple[Prefix, ...]


def common_leading_sequence(paths: Sequence[ASPath]) -> tuple[int, ...]:
    """The longest common leading AS sequence of several paths.

    This is what an aggregating router keeps as the AS_SEQUENCE part;
    everything that differs gets squashed into a trailing AS_SET
    (RFC 4271 §9.2.2.2 semantics, simplified to flat sequences).
    """
    if not paths:
        return ()
    sequences = []
    for path in paths:
        try:
            sequences.append(path.sequence_tuple())
        except ValueError:
            sequences.append(tuple(path.as_list()))
    shortest = min(len(sequence) for sequence in sequences)
    common: list[int] = []
    for position in range(shortest):
        candidate = sequences[0][position]
        if all(sequence[position] == candidate for sequence in sequences):
            common.append(candidate)
        else:
            break
    return tuple(common)


def aggregate(
    aggregator_asn: int,
    routes: Sequence[tuple[Prefix, ASPath]],
) -> AggregateRoute:
    """Aggregate component routes into one supernet announcement.

    The aggregate prefix is the common supernet of all components.  If
    every component shares one origin the result is a plain sequence
    path; otherwise the differing tail ASes are collected into an
    AS_SET — the exact mechanism that produced the paper's ~12
    AS_SET-terminated prefixes.
    """
    if not routes:
        raise ValueError("nothing to aggregate")
    prefixes = [prefix for prefix, _path in routes]
    paths = [path for _prefix, path in routes]
    supernet = prefixes[0]
    for prefix in prefixes[1:]:
        supernet = Prefix.common_supernet(supernet, prefix)

    common = common_leading_sequence(paths)
    leftover: set[int] = set()
    for path in paths:
        for asn in path.as_list()[len(common):]:
            leftover.add(asn)

    base = ASPath.from_sequence((aggregator_asn,) + common)
    if leftover:
        path = base.with_set_tail(sorted(leftover))
        atomic = True
    else:
        path = base
        atomic = False
    return AggregateRoute(
        prefix=supernet,
        path=path,
        atomic=atomic,
        components=tuple(sorted(prefixes, key=lambda p: p.sort_key())),
    )


def find_aggregable_pairs(
    prefixes: Iterable[Prefix],
) -> list[tuple[Prefix, Prefix, Prefix]]:
    """Sibling prefixes that merge exactly into their parent.

    Returns ``(low, high, parent)`` triples where ``low`` and ``high``
    are the two halves of ``parent`` and both are present.  Uses the
    radix trie so discovery is linear in the table size.
    """
    trie: PrefixTrie[bool] = PrefixTrie()
    for prefix in prefixes:
        trie[prefix] = True
    pairs: list[tuple[Prefix, Prefix, Prefix]] = []
    for prefix, _value in trie.items():
        if prefix.length == 0:
            continue
        # Only consider the low sibling to report each pair once.
        if prefix.bit(prefix.length - 1) == 1:
            continue
        parent = prefix.supernet()
        low, high = parent.subnets()
        if low == prefix and high in trie:
            pairs.append((low, high, parent))
    return pairs


def uncovered_specifics(
    aggregate_prefix: Prefix,
    reachable: Iterable[Prefix],
    *,
    max_depth: int = 8,
) -> list[Prefix]:
    """The sub-space of an aggregate the announcer cannot reach.

    Models the faulty-aggregation hazard of Section VI-E: packets that
    follow the aggregate announcement but fall into an uncovered
    more-specific are lost at the faulty AS.  The uncovered space is
    returned as a minimal list of CIDR blocks, explored to
    ``max_depth`` bits below the aggregate.
    """
    trie: PrefixTrie[bool] = PrefixTrie()
    for prefix in reachable:
        if aggregate_prefix.contains(prefix):
            trie[prefix] = True

    holes: list[Prefix] = []

    def explore(prefix: Prefix, depth: int) -> None:
        if prefix in trie:
            return  # fully covered by a reachable route
        has_descendants = any(True for _ in trie.covered(prefix))
        if not has_descendants:
            holes.append(prefix)  # nothing reachable inside: a hole
            return
        if depth >= max_depth or prefix.length >= 32:
            return  # partially covered but too deep to split further
        low, high = prefix.subnets()
        explore(low, depth + 1)
        explore(high, depth + 1)

    explore(aggregate_prefix, 0)
    return holes
