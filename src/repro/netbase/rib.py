"""Routing-table snapshot structures.

A :class:`RibSnapshot` is the in-memory form of one day's Route Views
dump: for each prefix, the set of routes exported by each peer.  The
MOAS detector consumes snapshots; the MRT codec and the simulated
collector both produce them.
"""

from __future__ import annotations

import datetime
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.netbase.aspath import ASPath
from repro.netbase.prefix import Prefix


@dataclass(frozen=True, order=True, slots=True)
class PeerId:
    """Identity of one collector peer (a BGP router exporting its table)."""

    asn: int
    name: str = ""


@dataclass(frozen=True, slots=True)
class Route:
    """One table entry: ``prefix`` reachable via ``path``, seen at ``peer``."""

    prefix: Prefix
    path: ASPath
    peer: PeerId

    def origin(self) -> int | frozenset[int] | None:
        """Origin of the route's AS path (see :meth:`ASPath.origin`)."""
        return self.path.origin()


@dataclass(slots=True)
class RibSnapshot:
    """All routes visible at the collector on one observation day."""

    day: datetime.date
    _by_prefix: dict[Prefix, list[Route]] = field(default_factory=dict)
    _peers: set[PeerId] = field(default_factory=set)

    @classmethod
    def from_routes(
        cls, day: datetime.date, routes: Iterable[Route]
    ) -> "RibSnapshot":
        """Build a snapshot by grouping ``routes`` by prefix."""
        snapshot = cls(day)
        for route in routes:
            snapshot.add(route)
        return snapshot

    def add(self, route: Route) -> None:
        """Insert one route into the snapshot."""
        self._by_prefix.setdefault(route.prefix, []).append(route)
        self._peers.add(route.peer)

    # -- accessors ----------------------------------------------------

    @property
    def peers(self) -> frozenset[PeerId]:
        """All peers contributing at least one route."""
        return frozenset(self._peers)

    def prefixes(self) -> Iterator[Prefix]:
        """All prefixes present in the snapshot (arbitrary order)."""
        return iter(self._by_prefix)

    def routes_for(self, prefix: Prefix) -> list[Route]:
        """Routes for ``prefix`` (empty list if absent)."""
        return list(self._by_prefix.get(prefix, ()))

    def iter_routes(self) -> Iterator[Route]:
        """Every route in the snapshot."""
        for routes in self._by_prefix.values():
            yield from routes

    def iter_prefix_routes(
        self, *, copy: bool = True
    ) -> Iterator[tuple[Prefix, list[Route]]]:
        """``(prefix, routes)`` pairs — the detector's access pattern.

        With ``copy=False`` the snapshot's internal route lists are
        yielded directly (no per-prefix allocation); callers must not
        mutate them.
        """
        if copy:
            for prefix, routes in self._by_prefix.items():
                yield prefix, list(routes)
        else:
            yield from self._by_prefix.items()

    def num_prefixes(self) -> int:
        """Distinct prefixes in the snapshot."""
        return len(self._by_prefix)

    def num_routes(self) -> int:
        """Total routes across all prefixes and peers."""
        return sum(len(routes) for routes in self._by_prefix.values())

    def restricted_to_peer(self, peer: PeerId) -> "RibSnapshot":
        """The single-vantage-point view of one peer.

        Section III of the paper compares Route Views' collector-wide
        view against individual ISP views; this produces the latter.
        """
        view = RibSnapshot(self.day)
        for routes in self._by_prefix.values():
            for route in routes:
                if route.peer == peer:
                    view.add(route)
        return view

    def origins_of(
        self, prefix: Prefix, *, include_as_set_tails: bool = False
    ) -> set[int]:
        """Distinct single-AS origins announced for ``prefix``.

        Routes ending in AS sets are excluded by default, matching the
        paper's methodology (Section III).
        """
        origins: set[int] = set()
        for route in self._by_prefix.get(prefix, ()):
            origin = route.path.origin()
            if isinstance(origin, int):
                origins.add(origin)
            elif include_as_set_tails and origin is not None:
                origins.update(origin)
        return origins
