"""RPKI Route Origin Authorizations and RFC 6811 origin validation.

The paper's valid/invalid heuristic (Section VI-F) predates the RPKI;
modern re-examinations of MOAS conflicts — "Live Long and Prosper"
(arXiv:2307.08490) and the ROA-conflict classifiers (arXiv:2502.03378)
— ask instead what the Route Origin Authorization database says about
each origin.  This module is that layer for our substrate:

- a :class:`Roa` is one authorization: *origin* may announce *prefix*
  and its more-specifics up to *max_length*, optionally within a
  day-stamped validity window (ROAs are created when address space is
  registered and can lapse after an ownership transfer);
- a :class:`RoaTable` is an immutable set of ROAs with covering-prefix
  lookup (via :class:`~repro.netbase.trie.PrefixTrie`) and the RFC 6811
  route-origin-validation procedure: an announcement is **valid** when
  some covering, active ROA authorizes its origin at its length,
  **invalid** when ROAs cover it but none match, and **not-found** when
  no ROA covers it at all.

Tables are immutable after construction and validation is a pure
function of ``(prefix, origin, day)``, so one table can be shared by
every shard of a parallel study and merged engines can verify they
validated against the same database (:attr:`RoaTable.key`).
"""

from __future__ import annotations

import datetime
import enum
import json
from dataclasses import dataclass
from pathlib import Path as FsPath

from repro.netbase.prefix import Prefix
from repro.netbase.trie import PrefixTrie


class ValidationState(enum.Enum):
    """RFC 6811 route origin validation outcome."""

    VALID = "valid"
    INVALID = "invalid"
    NOT_FOUND = "not_found"


#: Episode-level precedence: one invalid observation taints the whole
#: episode, a valid observation beats mere non-coverage.  This is the
#: per-prefix rollup the long-lived-MOAS analysis buckets by.
STATE_PRECEDENCE = (
    ValidationState.INVALID,
    ValidationState.VALID,
    ValidationState.NOT_FOUND,
)

#: Rollup label for episodes analyzed without any ROA table.
STATE_NOT_EVALUATED = "not_evaluated"


def worst_state(
    first: ValidationState | None, second: ValidationState
) -> ValidationState:
    """The higher-precedence of two validation states (see above)."""
    if first is None:
        return second
    for state in STATE_PRECEDENCE:
        if first is state or second is state:
            return state
    return second  # unreachable: precedence covers every state


@dataclass(frozen=True)
class Roa:
    """One Route Origin Authorization.

    ``origin`` may originate ``prefix`` and any more-specific up to
    ``max_length``.  ``valid_from`` / ``valid_until`` bound the days the
    authorization is active (inclusive; ``None`` means unbounded) —
    the day-stamped windows that model ROAs issued when space is
    registered and left stale after it changes hands.
    """

    prefix: Prefix
    max_length: int
    origin: int
    valid_from: datetime.date | None = None
    valid_until: datetime.date | None = None

    def __post_init__(self) -> None:
        if not self.prefix.length <= self.max_length <= 32:
            raise ValueError(
                f"ROA max_length {self.max_length} outside "
                f"{self.prefix.length}..32 for {self.prefix}"
            )
        if self.origin < 0:
            raise ValueError(f"ROA origin {self.origin} is negative")
        if (
            self.valid_from is not None
            and self.valid_until is not None
            and self.valid_until < self.valid_from
        ):
            raise ValueError(
                f"ROA window ends {self.valid_until} before it "
                f"starts {self.valid_from}"
            )

    def active_on(self, day: datetime.date | None) -> bool:
        """Whether the ROA is in force on ``day`` (None = ignore windows)."""
        if day is None:
            return True
        if self.valid_from is not None and day < self.valid_from:
            return False
        return self.valid_until is None or day <= self.valid_until

    def authorizes(self, prefix: Prefix, origin: int) -> bool:
        """RFC 6811 match: covers ``prefix``, within max-length, same AS."""
        return (
            self.origin == origin
            and prefix.length <= self.max_length
            and self.prefix.contains(prefix)
        )

    def to_dict(self) -> dict:
        """The ``roas.json`` row for this authorization."""
        return {
            "prefix": str(self.prefix),
            "max_length": self.max_length,
            "origin": self.origin,
            "valid_from": (
                self.valid_from.isoformat()
                if self.valid_from is not None
                else None
            ),
            "valid_until": (
                self.valid_until.isoformat()
                if self.valid_until is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Roa":
        """Rebuild an authorization from :meth:`to_dict` output.

        Malformed rows raise :class:`ValueError` with a usable message
        rather than a bare ``KeyError``/``TypeError``.
        """
        if not isinstance(payload, dict):
            raise ValueError(
                f"a ROA row must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        missing = [
            key
            for key in ("prefix", "max_length", "origin")
            if key not in payload
        ]
        if missing:
            raise ValueError(
                f"ROA row is missing {', '.join(missing)}"
            )

        def window(key: str) -> datetime.date | None:
            value = payload.get(key)
            return (
                datetime.date.fromisoformat(value)
                if value is not None
                else None
            )

        return cls(
            prefix=Prefix.parse(payload["prefix"]),
            max_length=int(payload["max_length"]),
            origin=int(payload["origin"]),
            valid_from=window("valid_from"),
            valid_until=window("valid_until"),
        )


class RoaTable:
    """An immutable ROA database with RFC 6811 origin validation.

    Build it once from any iterable of :class:`Roa` rows; lookups are
    longest-chain trie walks over the covering registrations, so
    :meth:`validate` costs O(prefix length) regardless of table size.
    The table never mutates after construction — one instance is safe
    to share across every shard of a study, and :attr:`key` (the sorted
    ROA tuple) lets merging engines check they used the same database.
    """

    def __init__(self, roas=()) -> None:
        self._roas = tuple(
            sorted(
                roas,
                key=lambda roa: (
                    roa.prefix.sort_key(),
                    roa.max_length,
                    roa.origin,
                    roa.valid_from or datetime.date.min,
                    roa.valid_until or datetime.date.max,
                ),
            )
        )
        trie: PrefixTrie[tuple[Roa, ...]] = PrefixTrie()
        for roa in self._roas:
            existing = trie.get(roa.prefix, ())
            trie[roa.prefix] = existing + (roa,)
        self._trie = trie
        # Hot-path memos (pure caches — the table stays logically
        # immutable).  A conflicted prefix is re-validated for the same
        # origins every day of its episode, so:
        # - ``_covering_cache`` runs the trie walk once per distinct
        #   prefix;
        # - ``_steady_cache`` short-circuits whole (prefix, origin)
        #   pairs: when no covering ROA ever *expires*
        #   (``valid_until is None``, the common case), the outcome is
        #   constant from the day every window has opened — one dict
        #   hit and a date compare per validation instead of a scan.
        self._covering_cache: dict[Prefix, tuple[Roa, ...]] = {}
        self._steady_cache: dict[
            tuple[Prefix, int],
            tuple[datetime.date | None, ValidationState | None],
        ] = {}
        # Same idea one level up, keyed by a whole conflict's origin
        # set: the study fold asks "worst state over these origins"
        # for the same (prefix, origins) pair every day an episode is
        # live — one dict hit answers it.
        self._set_cache: dict[
            tuple[Prefix, frozenset[int]],
            tuple[datetime.date | None, ValidationState | None],
        ] = {}

    def __len__(self) -> int:
        return len(self._roas)

    def __iter__(self):
        return iter(self._roas)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoaTable):
            return NotImplemented
        return self._roas == other._roas

    def __hash__(self) -> int:
        return hash(self._roas)

    @property
    def key(self) -> tuple[Roa, ...]:
        """The table's identity: its ROAs in canonical order."""
        return self._roas

    def _covering(self, prefix: Prefix) -> tuple[Roa, ...]:
        cached = self._covering_cache.get(prefix)
        if cached is None:
            cached = self._covering_cache[prefix] = tuple(
                roa
                for _stored, roas in self._trie.covering(prefix)
                for roa in roas
            )
        return cached

    def covering_roas(
        self, prefix: Prefix, *, day: datetime.date | None = None
    ) -> tuple[Roa, ...]:
        """Every ROA whose prefix covers ``prefix`` and is active on ``day``."""
        return tuple(
            roa for roa in self._covering(prefix) if roa.active_on(day)
        )

    def validate(
        self,
        prefix: Prefix,
        origin: int,
        *,
        day: datetime.date | None = None,
    ) -> ValidationState:
        """RFC 6811 validation of ``origin`` announcing ``prefix``.

        ``day`` restricts the database to ROAs active that day
        (``None`` considers every ROA regardless of window).
        """
        if day is not None:
            key = (prefix, origin)
            entry = self._steady_cache.get(key)
            if entry is None:
                entry = self._steady_cache[key] = self._steady(
                    prefix, origin
                )
            threshold, steady = entry
            if threshold is not None and day >= threshold:
                return steady  # type: ignore[return-value]
        return self._scan(prefix, origin, day)

    def validate_origins(
        self,
        prefix: Prefix,
        origins,
        *,
        day: datetime.date | None = None,
    ) -> ValidationState | None:
        """Worst-precedence rollup over a conflict's origin set.

        The per-day MOAS-episode question: one invalid origin makes the
        day ``INVALID``, otherwise any valid origin makes it ``VALID``,
        otherwise ``NOT_FOUND`` (``None`` for an empty origin set).
        Equivalent to folding :meth:`validate` per origin with
        :func:`worst_state`, but memoized per ``(prefix, origins)`` —
        episodes re-ask this every day they are live.
        """
        if day is not None:
            key = (prefix, origins)
            entry = self._set_cache.get(key)
            if entry is None:
                thresholds = []
                stable = True
                for origin in origins:
                    threshold, _steady = self._steady_cache.setdefault(
                        (prefix, origin), self._steady(prefix, origin)
                    )
                    if threshold is None:
                        stable = False
                        break
                    thresholds.append(threshold)
                if stable and thresholds:
                    entry = (
                        max(thresholds),
                        self.validate_origins(prefix, origins),
                    )
                else:
                    entry = (None, None)
                self._set_cache[key] = entry
            threshold, steady = entry
            if threshold is not None and day >= threshold:
                return steady
        rollup: ValidationState | None = None
        for origin in origins:
            state = self.validate(prefix, origin, day=day)
            if state is ValidationState.INVALID:
                return state
            rollup = worst_state(rollup, state)
        return rollup

    def fold_episode_state(
        self,
        current: ValidationState | None,
        prefix: Prefix,
        origins,
        *,
        day: datetime.date | None = None,
    ) -> ValidationState | None:
        """Fold one conflict-day into an episode's running rollup.

        The one streaming-fold step both the study state and the
        verdict engine perform per conflict: ``INVALID`` is absorbing,
        otherwise the day's :meth:`validate_origins` rollup combines
        into ``current`` by worst-first precedence.
        """
        if current is ValidationState.INVALID:
            return current
        day_state = self.validate_origins(prefix, origins, day=day)
        if day_state is None:
            return current
        return worst_state(current, day_state)

    def _steady(
        self, prefix: Prefix, origin: int
    ) -> tuple[datetime.date | None, ValidationState | None]:
        """``(threshold, state)``: from ``threshold`` on, validation of
        ``(prefix, origin)`` always returns ``state``; ``(None, None)``
        when some covering ROA expires and no steady day exists."""
        covering = self._covering(prefix)
        if any(roa.valid_until is not None for roa in covering):
            return (None, None)
        threshold = datetime.date.min
        for roa in covering:
            if roa.valid_from is not None and roa.valid_from > threshold:
                threshold = roa.valid_from
        return (threshold, self._scan(prefix, origin, None))

    def _scan(
        self, prefix: Prefix, origin: int, day: datetime.date | None
    ) -> ValidationState:
        covered = False
        length = prefix.length
        for roa in self._covering(prefix):
            if not roa.active_on(day):
                continue
            covered = True
            if roa.origin == origin and length <= roa.max_length:
                return ValidationState.VALID
        return (
            ValidationState.INVALID if covered else ValidationState.NOT_FOUND
        )

    # -- (de)serialization -------------------------------------------------

    def to_json(self) -> str:
        """The table as a ``roas.json`` document."""
        return json.dumps([roa.to_dict() for roa in self._roas], indent=2)

    @classmethod
    def from_rows(cls, rows) -> "RoaTable":
        """Build a table from ``roas.json`` rows (dicts or Roa objects)."""
        return cls(
            row if isinstance(row, Roa) else Roa.from_dict(row)
            for row in rows
        )

    @classmethod
    def from_json(cls, text: str) -> "RoaTable":
        """Parse a :meth:`to_json` document (a JSON array of ROA rows)."""
        payload = json.loads(text)
        if not isinstance(payload, list):
            raise ValueError(
                "a ROA file is a JSON array of authorization objects"
            )
        return cls.from_rows(payload)

    @classmethod
    def load(cls, source) -> "RoaTable":
        """Resolve ``source`` into a table.

        Accepts an existing :class:`RoaTable` (returned unchanged), a
        ``roas.json`` file path, or a CDS archive directory containing
        one.
        """
        if isinstance(source, RoaTable):
            return source
        path = FsPath(source)
        if path.is_dir():
            candidate = path / "roas.json"
            if not candidate.is_file():
                raise FileNotFoundError(
                    f"no roas.json inside {path} (was the archive "
                    f"generated with --rpki?)"
                )
            path = candidate
        if not path.is_file():
            raise FileNotFoundError(f"no ROA file at {path}")
        return cls.from_json(path.read_text())
