"""AS path model with AS_SEQUENCE and AS_SET segments.

The paper defines a MOAS conflict in terms of the *origin AS* — the last
AS of the AS path — and explicitly excludes the ~12 routes whose paths
end in an AS **set** produced by aggregation (Section III).  This module
therefore models paths as true segment lists, exactly as BGP carries
them, rather than flat ASN lists.
"""

from __future__ import annotations

import enum
import re
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.netbase.asn import validate_asn


class SegmentType(enum.IntEnum):
    """BGP AS_PATH segment types (wire values from RFC 4271)."""

    AS_SET = 1
    AS_SEQUENCE = 2


@dataclass(frozen=True)
class Segment:
    """One AS_PATH segment: an ordered sequence or an unordered set.

    ``ases`` is stored as a tuple either way; for AS_SET segments the
    tuple is sorted so that equal sets compare and hash equal.
    """

    kind: SegmentType
    ases: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.ases:
            raise ValueError("empty AS_PATH segment")
        for asn in self.ases:
            validate_asn(asn)
        if self.kind is SegmentType.AS_SET:
            deduped = tuple(sorted(set(self.ases)))
            object.__setattr__(self, "ases", deduped)

    def __str__(self) -> str:
        if self.kind is SegmentType.AS_SET:
            return "{" + ",".join(str(asn) for asn in self.ases) + "}"
        return " ".join(str(asn) for asn in self.ases)


_SET_TOKEN = re.compile(r"\{([0-9,\s]*)\}")


class ASPath:
    """An immutable BGP AS path.

    Construct from segments, from a plain ASN sequence
    (:meth:`from_sequence`) or from Route Views text form
    (:meth:`parse`, e.g. ``"701 7018 {3561,701}"``).
    """

    __slots__ = ("_segments", "_hash")

    def __init__(self, segments: Iterable[Segment] = ()) -> None:
        self._segments = tuple(segments)
        for segment in self._segments:
            if not isinstance(segment, Segment):
                raise TypeError(f"expected Segment, got {type(segment).__name__}")
        self._hash = hash(self._segments)

    # -- constructors -------------------------------------------------

    @classmethod
    def from_sequence(cls, ases: Iterable[int]) -> "ASPath":
        """A path made of a single AS_SEQUENCE (the common case)."""
        ases = tuple(ases)
        if not ases:
            return cls()
        return cls((Segment(SegmentType.AS_SEQUENCE, ases),))

    @classmethod
    def parse(cls, text: str) -> "ASPath":
        """Parse the space-separated text form with ``{...}`` AS sets."""
        segments: list[Segment] = []
        pending: list[int] = []
        tokens = text.replace("{", " { ").replace("}", " } ").split()
        index = 0
        while index < len(tokens):
            token = tokens[index]
            if token == "{":
                if pending:
                    segments.append(
                        Segment(SegmentType.AS_SEQUENCE, tuple(pending))
                    )
                    pending = []
                closing = tokens.index("}", index)
                members = [
                    int(part)
                    for part in " ".join(tokens[index + 1 : closing])
                    .replace(",", " ")
                    .split()
                ]
                segments.append(Segment(SegmentType.AS_SET, tuple(members)))
                index = closing + 1
            else:
                pending.append(int(token.rstrip(",")))
                index += 1
        if pending:
            segments.append(Segment(SegmentType.AS_SEQUENCE, tuple(pending)))
        return cls(segments)

    # -- accessors ----------------------------------------------------

    @property
    def segments(self) -> tuple[Segment, ...]:
        return self._segments

    def is_empty(self) -> bool:
        """True for the empty path (a route local to the speaker)."""
        return not self._segments

    def origin(self) -> int | frozenset[int] | None:
        """The path's origin: an ASN, a frozenset for AS_SET tails, or None.

        The paper's methodology reads the *last* element of the path; a
        frozenset return signals an aggregation AS_SET tail, which the
        detector excludes from MOAS analysis just as the paper did.
        """
        if not self._segments:
            return None
        tail = self._segments[-1]
        if tail.kind is SegmentType.AS_SET:
            return frozenset(tail.ases)
        return tail.ases[-1]

    def origin_as(self) -> int:
        """The origin ASN, raising :class:`ValueError` for AS_SET tails."""
        origin = self.origin()
        if isinstance(origin, int):
            return origin
        raise ValueError(f"path {self} does not end in a single origin AS")

    def ends_in_as_set(self) -> bool:
        """True if the path terminates in an aggregation AS_SET."""
        return bool(self._segments) and (
            self._segments[-1].kind is SegmentType.AS_SET
        )

    def first_as(self) -> int | None:
        """The neighbor-most ASN (first element), None for empty paths."""
        if not self._segments:
            return None
        head = self._segments[0]
        return head.ases[0]

    def as_list(self) -> list[int]:
        """All ASNs in path order (AS_SET members in sorted order)."""
        flattened: list[int] = []
        for segment in self._segments:
            flattened.extend(segment.ases)
        return flattened

    def sequence_tuple(self) -> tuple[int, ...]:
        """The path as a flat ASN tuple, for paths without AS sets.

        Raises :class:`ValueError` if any AS_SET segment is present —
        callers that need set-aware handling must walk ``segments``.
        """
        for segment in self._segments:
            if segment.kind is SegmentType.AS_SET:
                raise ValueError(f"path {self} contains an AS set")
        return tuple(asn for segment in self._segments for asn in segment.ases)

    def path_length(self) -> int:
        """BGP path length: sequences count per-AS, each AS_SET counts 1."""
        total = 0
        for segment in self._segments:
            if segment.kind is SegmentType.AS_SEQUENCE:
                total += len(segment.ases)
            else:
                total += 1
        return total

    def contains_as(self, asn: int) -> bool:
        """True if ``asn`` appears anywhere in the path."""
        return any(asn in segment.ases for segment in self._segments)

    def unique_ases(self) -> frozenset[int]:
        """The set of all ASNs mentioned in the path."""
        return frozenset(self.as_list())

    def has_loop(self) -> bool:
        """True if an ASN appears twice *non-consecutively*.

        Consecutive repeats are legitimate path prepending; a
        non-consecutive repeat means the route looped, which the BGP
        engine uses for loop prevention.
        """
        flattened = self.as_list()
        seen: dict[int, int] = {}
        for position, asn in enumerate(flattened):
            if asn in seen and flattened[position - 1] != asn:
                return True
            seen[asn] = position
        return False

    # -- derivation ---------------------------------------------------

    def prepend(self, asn: int, count: int = 1) -> "ASPath":
        """A new path with ``asn`` prepended ``count`` times.

        This is what a BGP speaker does on eBGP export; the simulator
        also uses ``count > 1`` for traffic-engineering prepending.
        """
        validate_asn(asn)
        if count < 1:
            raise ValueError(f"prepend count must be >= 1, got {count}")
        addition = (asn,) * count
        if (
            self._segments
            and self._segments[0].kind is SegmentType.AS_SEQUENCE
        ):
            head = self._segments[0]
            merged = Segment(SegmentType.AS_SEQUENCE, addition + head.ases)
            return ASPath((merged,) + self._segments[1:])
        return ASPath(
            (Segment(SegmentType.AS_SEQUENCE, addition),) + self._segments
        )

    def with_set_tail(self, members: Iterable[int]) -> "ASPath":
        """A new path ending in an AS_SET — models proxy aggregation."""
        return ASPath(
            self._segments + (Segment(SegmentType.AS_SET, tuple(members)),)
        )

    # -- dunder -------------------------------------------------------

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments)

    def __len__(self) -> int:
        return self.path_length()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ASPath):
            return NotImplemented
        return self._segments == other._segments

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return " ".join(str(segment) for segment in self._segments)

    def __repr__(self) -> str:
        return f"ASPath.parse({str(self)!r})"
