"""Binary radix trie keyed by IPv4 prefixes.

Used wherever the analysis needs structural prefix queries: identifying
exchange-point address blocks, relating a conflicted prefix to covering
aggregates (the faulty-aggregation cause of Section VI-E), and
longest-prefix-match forwarding checks in the BGP engine.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Generic, TypeVar

from repro.netbase.prefix import Prefix

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "present")

    def __init__(self) -> None:
        self.children: list[_Node[V] | None] = [None, None]
        self.value: V | None = None
        self.present = False


class PrefixTrie(Generic[V]):
    """A mapping from :class:`Prefix` to values with prefix-tree queries.

    Beyond plain ``get``/``set``/``delete`` it supports longest-prefix
    match, enumeration of covered (more-specific) and covering
    (less-specific) entries, and lexicographic iteration.
    """

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # The traversal loops below read bits with direct shift/mask
    # arithmetic on the network integer instead of calling
    # ``Prefix.bit`` per level: one attribute read per lookup instead
    # of a bound-method call (plus its range check) per bit, which is
    # what the longest-prefix-match hot paths in the BGP engine see.

    def _find(self, prefix: Prefix) -> _Node[V] | None:
        """The node for ``prefix`` if its chain exists, else None."""
        node = self._root
        network = prefix.network
        shift = 32
        for _ in range(prefix.length):
            shift -= 1
            child = node.children[(network >> shift) & 1]
            if child is None:
                return None
            node = child
        return node

    def __contains__(self, prefix: Prefix) -> bool:
        node = self._find(prefix)
        return node is not None and node.present

    def __getitem__(self, prefix: Prefix) -> V:
        node = self._find(prefix)
        if node is None or not node.present:
            raise KeyError(str(prefix))
        return node.value  # type: ignore[return-value]

    def get(self, prefix: Prefix, default: V | None = None) -> V | None:
        """Value stored at exactly ``prefix``, or ``default``."""
        node = self._find(prefix)
        if node is None or not node.present:
            return default
        return node.value

    def __setitem__(self, prefix: Prefix, value: V) -> None:
        node = self._root
        network = prefix.network
        shift = 32
        for _ in range(prefix.length):
            shift -= 1
            branch = (network >> shift) & 1
            child = node.children[branch]
            if child is None:
                child = _Node()
                node.children[branch] = child
            node = child
        if not node.present:
            self._size += 1
        node.present = True
        node.value = value

    def __delitem__(self, prefix: Prefix) -> None:
        # Walk down recording the path so empty branches can be pruned.
        path: list[tuple[_Node[V], int]] = []
        node = self._root
        network = prefix.network
        shift = 32
        for _ in range(prefix.length):
            shift -= 1
            branch = (network >> shift) & 1
            child = node.children[branch]
            if child is None:
                raise KeyError(str(prefix))
            path.append((node, branch))
            node = child
        if not node.present:
            raise KeyError(str(prefix))
        node.present = False
        node.value = None
        self._size -= 1
        for parent, branch in reversed(path):
            child = parent.children[branch]
            assert child is not None
            if child.present or any(child.children):
                break
            parent.children[branch] = None

    # -- structural queries -------------------------------------------

    def longest_match(self, prefix: Prefix) -> tuple[Prefix, V] | None:
        """The most specific stored entry containing ``prefix``.

        This is the forwarding-table lookup: a packet destined inside
        ``prefix`` would be routed by the returned entry.
        """
        best: tuple[Prefix, V] | None = None
        node = self._root
        network = prefix.network
        length = prefix.length
        consumed = 0
        if node.present:
            best = (Prefix(0, 0), node.value)  # type: ignore[arg-type]
        while consumed < length:
            child = node.children[(network >> (31 - consumed)) & 1]
            if child is None:
                break
            consumed += 1
            node = child
            if node.present:
                best = (
                    Prefix(network, consumed, strict=False),
                    node.value,  # type: ignore[arg-type]
                )
        return best

    def longest_match_address(self, address: int) -> tuple[Prefix, V] | None:
        """Longest-prefix match for a single 32-bit address."""
        return self.longest_match(Prefix(address, 32))

    def covering(self, prefix: Prefix) -> Iterator[tuple[Prefix, V]]:
        """All stored entries that contain ``prefix``, shortest first.

        Includes ``prefix`` itself if stored — "covering" in the
        route-aggregation sense.
        """
        node = self._root
        if node.present:
            yield (Prefix(0, 0), node.value)  # type: ignore[misc]
        network = prefix.network
        length = prefix.length
        consumed = 0
        while consumed < length:
            child = node.children[(network >> (31 - consumed)) & 1]
            if child is None:
                return
            consumed += 1
            node = child
            if node.present:
                yield (
                    Prefix(network, consumed, strict=False),
                    node.value,  # type: ignore[misc]
                )

    def covered(self, prefix: Prefix) -> Iterator[tuple[Prefix, V]]:
        """All stored entries equal to or more specific than ``prefix``."""
        node = self._find(prefix)
        if node is None:
            return
        yield from self._walk(node, prefix.network, prefix.length)

    def items(self) -> Iterator[tuple[Prefix, V]]:
        """All entries in lexicographic (network, length) trie order."""
        yield from self._walk(self._root, 0, 0)

    def keys(self) -> Iterator[Prefix]:
        """All stored prefixes in trie order."""
        for prefix, _value in self.items():
            yield prefix

    def values(self) -> Iterator[V]:
        """All stored values in trie order."""
        for _prefix, value in self.items():
            yield value

    def _walk(
        self, node: _Node[V], network: int, depth: int
    ) -> Iterator[tuple[Prefix, V]]:
        stack: list[tuple[_Node[V], int, int]] = [(node, network, depth)]
        while stack:
            current, net, length = stack.pop()
            if current.present:
                yield (
                    Prefix(net, length, strict=False),
                    current.value,  # type: ignore[misc]
                )
            # Push right before left so left pops first (sorted order).
            right = current.children[1]
            if right is not None and length < 32:
                stack.append(
                    (right, net | (1 << (31 - length)), length + 1)
                )
            left = current.children[0]
            if left is not None and length < 32:
                stack.append((left, net, length + 1))
