"""Deterministic prefix-space partitioning for parallel studies.

A :class:`ShardSpec` names a subset of the IPv4 prefix space: the
prefixes whose shard index (under a ``hash`` or ``range`` scheme) falls
in the spec's index set.  Specs from one :meth:`ShardSpec.partition`
call are pairwise disjoint and jointly cover every prefix, which is the
contract the sharded study engine builds on: per-shard detections and
per-shard :class:`~repro.analysis.pipeline.StudyState` accumulators can
be computed independently and merged back into results identical to a
serial run.

Both schemes are pure functions of ``(network, length)`` — no reliance
on Python's randomized object hashing — so shard membership is stable
across processes, machines, and interpreter restarts, as checkpoint
files require.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netbase.prefix import Prefix

#: Knuth multiplicative constants used by the ``hash`` scheme.
_MIX_NETWORK = 0x9E3779B1
_MIX_LENGTH = 0x85EBCA77
_MASK32 = 0xFFFFFFFF

SCHEMES = ("hash", "range")


def shard_of(prefix: Prefix, count: int, scheme: str = "hash") -> int:
    """The shard index of ``prefix`` in a ``count``-way partition.

    ``hash`` scatters prefixes uniformly (good load balance); ``range``
    splits the 32-bit address space into ``count`` contiguous bands
    (good locality — one shard maps to one address region).
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if scheme == "hash":
        key = (
            prefix.network * _MIX_NETWORK + prefix.length * _MIX_LENGTH
        ) & _MASK32
        key ^= key >> 16
        return key % count
    if scheme == "range":
        return (prefix.network * count) >> 32
    raise ValueError(f"unknown shard scheme {scheme!r}; use one of {SCHEMES}")


@dataclass(frozen=True)
class ShardSpec:
    """An immutable subset of a ``count``-way prefix-space partition.

    ``indices`` are the shard numbers this spec covers; a spec from
    :meth:`partition` covers exactly one.  Disjoint specs combine with
    :meth:`union` (the merge direction of the study engine).
    """

    indices: frozenset[int]
    count: int
    scheme: str = "hash"

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if self.scheme not in SCHEMES:
            raise ValueError(
                f"unknown shard scheme {self.scheme!r}; use one of {SCHEMES}"
            )
        if not isinstance(self.indices, frozenset):
            object.__setattr__(self, "indices", frozenset(self.indices))
        if not self.indices:
            raise ValueError("a shard spec must cover at least one index")
        bad = [i for i in self.indices if not 0 <= i < self.count]
        if bad:
            raise ValueError(
                f"shard indices {sorted(bad)} outside 0..{self.count - 1}"
            )

    # -- constructors ---------------------------------------------------

    @classmethod
    def single(cls, index: int, count: int, scheme: str = "hash") -> "ShardSpec":
        """The spec covering exactly shard ``index`` of ``count``."""
        return cls(frozenset((index,)), count, scheme)

    @classmethod
    def partition(
        cls, count: int, scheme: str = "hash"
    ) -> tuple["ShardSpec", ...]:
        """``count`` disjoint single-index specs covering everything."""
        return tuple(cls.single(index, count, scheme) for index in range(count))

    # -- membership -----------------------------------------------------

    def shard_of(self, prefix: Prefix) -> int:
        """The shard index ``prefix`` falls in under this partitioning."""
        return shard_of(prefix, self.count, self.scheme)

    def contains(self, prefix: Prefix) -> bool:
        """True if ``prefix`` belongs to one of this spec's shards."""
        return shard_of(prefix, self.count, self.scheme) in self.indices

    __contains__ = contains

    # -- combination ------------------------------------------------------

    def compatible_with(self, other: "ShardSpec") -> bool:
        """True if both specs slice the space the same way."""
        return self.count == other.count and self.scheme == other.scheme

    def overlaps(self, other: "ShardSpec") -> bool:
        """True if the two specs share a shard index."""
        return self.compatible_with(other) and bool(
            self.indices & other.indices
        )

    def union(self, other: "ShardSpec") -> "ShardSpec":
        """The combined coverage of two disjoint, compatible specs."""
        if not self.compatible_with(other):
            raise ValueError(
                f"cannot combine {self} with {other}: different partitioning"
            )
        if self.indices & other.indices:
            raise ValueError(
                f"cannot combine overlapping shards {self} and {other}"
            )
        return ShardSpec(self.indices | other.indices, self.count, self.scheme)

    @property
    def is_complete(self) -> bool:
        """True if the spec covers the whole prefix space."""
        return len(self.indices) == self.count

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable form, for checkpoint payloads."""
        return {
            "indices": sorted(self.indices),
            "count": self.count,
            "scheme": self.scheme,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(
            frozenset(payload["indices"]),
            payload["count"],
            payload.get("scheme", "hash"),
        )

    def __str__(self) -> str:
        indices = ",".join(str(i) for i in sorted(self.indices))
        return f"shard[{indices}]/{self.count}:{self.scheme}"
