"""IP and AS-number primitives underlying the whole library.

This subpackage is the lowest layer of the reproduction: IPv4 prefixes,
AS numbers, AS paths (with AS_SET / AS_SEQUENCE segments, which the paper
explicitly discusses), a binary radix trie for prefix lookups, and the
routing-table structures every other layer exchanges.
"""

from repro.netbase.aggregation import (
    AggregateRoute,
    aggregate,
    find_aggregable_pairs,
    uncovered_specifics,
)
from repro.netbase.asn import (
    AS_TRANS,
    PRIVATE_AS_MAX,
    PRIVATE_AS_MIN,
    is_documentation_asn,
    is_private_asn,
    is_reserved_asn,
    validate_asn,
)
from repro.netbase.aspath import ASPath, Segment, SegmentType
from repro.netbase.prefix import Prefix
from repro.netbase.rib import PeerId, Route, RibSnapshot
from repro.netbase.rpki import Roa, RoaTable, ValidationState
from repro.netbase.sharding import ShardSpec, shard_of
from repro.netbase.trie import PrefixTrie

__all__ = [
    "AggregateRoute",
    "aggregate",
    "find_aggregable_pairs",
    "uncovered_specifics",
    "AS_TRANS",
    "PRIVATE_AS_MAX",
    "PRIVATE_AS_MIN",
    "is_documentation_asn",
    "is_private_asn",
    "is_reserved_asn",
    "validate_asn",
    "ASPath",
    "Segment",
    "SegmentType",
    "Prefix",
    "PeerId",
    "Route",
    "RibSnapshot",
    "Roa",
    "RoaTable",
    "ValidationState",
    "ShardSpec",
    "shard_of",
    "PrefixTrie",
]
