"""AS-number classification helpers.

The paper's cause analysis (Section VI-C) depends on recognizing
*private* AS numbers — the ASE multi-homing technique uses them — and the
MRT codec needs the 2-octet bounds that applied in the 1997-2001 study
window.  4-octet ASNs (RFC 6793) postdate the paper but are accepted by
``validate_asn`` so the library remains usable on modern data.
"""

from __future__ import annotations

#: RFC 1930 / RFC 6996 private-use 16-bit AS range.
PRIVATE_AS_MIN = 64512
PRIVATE_AS_MAX = 65534

#: RFC 5398 documentation range.
DOC_AS_MIN = 64496
DOC_AS_MAX = 64511

#: Placeholder ASN used for 4-octet transition (RFC 6793).
AS_TRANS = 23456

_MAX_ASN = (1 << 32) - 1


def validate_asn(asn: int) -> int:
    """Return ``asn`` unchanged if it is a representable AS number.

    Raises :class:`ValueError` otherwise; used at the edges of the
    library so internal code can assume well-formed ASNs.
    """
    if not isinstance(asn, int) or isinstance(asn, bool):
        raise ValueError(f"ASN must be an int, got {type(asn).__name__}")
    if not 0 <= asn <= _MAX_ASN:
        raise ValueError(f"ASN {asn} outside 0..{_MAX_ASN}")
    return asn


def is_private_asn(asn: int) -> bool:
    """True for RFC 6996 private-use ASNs (16-bit range).

    These are the numbers the ASE technique of Section VI-C would leak
    into origin position if providers fail to strip them.
    """
    return PRIVATE_AS_MIN <= asn <= PRIVATE_AS_MAX


def is_documentation_asn(asn: int) -> bool:
    """True for RFC 5398 documentation ASNs."""
    return DOC_AS_MIN <= asn <= DOC_AS_MAX


def is_reserved_asn(asn: int) -> bool:
    """True for ASNs that must never originate routes.

    Covers 0 (RFC 7607), 65535 (RFC 7300) and AS_TRANS.
    """
    return asn in (0, 65535, AS_TRANS)
