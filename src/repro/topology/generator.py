"""Initial Internet construction: a tiered, policy-annotated AS graph.

The generated topology mirrors the well-known structure of the
study-era Internet:

- a small clique of tier-1 providers (we use the era's famous ASNs:
  UUNET 701, Sprint 1239, Cable & Wireless 3561, AT&T 7018, ...) that
  peer with each other and sell transit;
- a middle tier of regional transit ASes, multihomed to 1-3 upstreams
  chosen by preferential attachment, with some transit-transit peering;
- a large fringe of stub ASes (the paper's origins), a configurable
  fraction of them multihomed — multihoming is one of the paper's main
  candidate causes of MOAS conflicts.

ASNs that the paper's fault case studies name (8584, 15412, 7007) are
reserved and wired into era-correct positions so the event scripts in
:mod:`repro.scenario.events` can re-enact the real incidents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.addressing import AddressPlan
from repro.topology.ixp import ExchangePoint, ixp_prefix
from repro.topology.model import ASInfo, InternetModel, Tier
from repro.util.rng import RngStreams

#: Era tier-1 backbone ASNs.  3561 (Cable & Wireless) must be present:
#: the April 2001 fault event propagates through it.
TIER1_ASNS = (209, 701, 1239, 2914, 3356, 3561, 6453, 7018)

#: ASNs with scripted roles in the paper's fault case studies.
AS_8584 = 8584  # falsely originated ~11k prefixes on 1998-04-07
AS_15412 = 15412  # C&W customer; misconfiguration of 2001-04-06
AS_7007 = 7007  # the 1997-04-25 de-aggregation incident

RESERVED_ASNS = frozenset(TIER1_ASNS) | {AS_8584, AS_15412, AS_7007}


@dataclass(frozen=True)
class TopologyConfig:
    """Knobs for the initial (day-0) Internet.

    Defaults approximate November 1997 at ``scale=1.0``: about 3000
    ASes and 52k prefixes.  Every count scales linearly so smaller
    studies keep the same shape.
    """

    scale: float = 0.125
    initial_as_count: int = 3000
    initial_prefix_count: int = 52_000
    transit_fraction: float = 0.10
    #: Probability that a stub is multihomed (2 providers).
    stub_multihome_prob: float = 0.30
    #: Probability that a transit AS gets a third upstream.
    transit_third_provider_prob: float = 0.25
    #: Peering links among transit ASes, as a fraction of transit count.
    transit_peering_fraction: float = 0.50
    #: Number of exchange points (paper: 30 identified prefixes).
    ixp_count: int = 30

    def scaled(self, value: int | float) -> int:
        """``value`` scaled down, never below 1."""
        return max(1, round(value * self.scale))

    @property
    def num_ases(self) -> int:
        return self.scaled(self.initial_as_count)

    @property
    def num_prefixes(self) -> int:
        return self.scaled(self.initial_prefix_count)

    @property
    def num_transit(self) -> int:
        return max(4, round(self.num_ases * self.transit_fraction))

    @property
    def num_ixps(self) -> int:
        return max(2, round(self.ixp_count * self.scale))


class AsnFactory:
    """Hands out unused, realistic ASNs."""

    def __init__(self, streams: RngStreams) -> None:
        self._rng = streams.python("asn-factory")
        self._used: set[int] = set(RESERVED_ASNS)

    def reserve(self, asn: int) -> int:
        """Claim a specific ASN (for scripted roles)."""
        if asn in self._used and asn not in RESERVED_ASNS:
            raise ValueError(f"ASN {asn} already in use")
        self._used.add(asn)
        return asn

    def next_asn(self) -> int:
        """A random unused public 16-bit ASN (study era: 2-byte only)."""
        while True:
            candidate = self._rng.randint(1, 64000)
            if candidate not in self._used:
                self._used.add(candidate)
                return candidate


def build_initial_model(
    config: TopologyConfig, streams: RngStreams
) -> tuple[InternetModel, AddressPlan, AsnFactory]:
    """Build the day-0 Internet.

    Returns the model plus the allocator and ASN factory so the growth
    model can keep extending the same address plan without collisions.
    """
    rng = streams.python("topology")
    model = InternetModel()
    plan = AddressPlan(streams)
    asn_factory = AsnFactory(streams)

    # Tier-1 clique.
    for asn in TIER1_ASNS:
        model.add_as(ASInfo(asn=asn, tier=Tier.TIER1, join_day=0))
    for index, left in enumerate(TIER1_ASNS):
        for right in TIER1_ASNS[index + 1 :]:
            model.graph.add_peering(left, right)

    # Transit tier, preferentially attached to tier-1s and earlier
    # transits (rich get richer — produces the observed skewed degrees).
    transit_asns: list[int] = []
    attachment_pool: list[int] = list(TIER1_ASNS)
    num_transit = config.num_transit
    scripted_transit = [AS_15412]  # C&W customer with a second upstream
    for position in range(num_transit):
        if position < len(scripted_transit):
            asn = asn_factory.reserve(scripted_transit[position])
        else:
            asn = asn_factory.next_asn()
        model.add_as(ASInfo(asn=asn, tier=Tier.TRANSIT, join_day=0))
        if asn == AS_15412:
            # Era-correct: FLAG Telecom bought transit from C&W (3561).
            providers = [3561, rng.choice([701, 7018])]
        else:
            provider_count = 2 if rng.random() < 0.7 else 1
            if rng.random() < config.transit_third_provider_prob:
                provider_count += 1
            providers = _distinct_choices(rng, attachment_pool, provider_count)
        for provider in providers:
            model.graph.add_customer(provider, asn)
        transit_asns.append(asn)
        # Transits join the attachment pool with multiplicity: degree-
        # proportional attachment without bookkeeping.
        attachment_pool.extend([asn] * 2)

    # Transit-transit peering.
    peering_target = round(num_transit * config.transit_peering_fraction)
    added = 0
    while added < peering_target:
        left, right = rng.sample(transit_asns, k=2)
        if not model.graph.has_link(left, right):
            model.graph.add_peering(left, right)
            added += 1

    # Stub tier.
    stub_count = config.num_ases - model.num_ases()
    scripted_stubs = [AS_8584, AS_7007]
    stub_attachment = transit_asns + list(TIER1_ASNS)
    for position in range(stub_count):
        if position < len(scripted_stubs):
            asn = asn_factory.reserve(scripted_stubs[position])
        else:
            asn = asn_factory.next_asn()
        model.add_as(ASInfo(asn=asn, tier=Tier.STUB, join_day=0))
        if asn == AS_7007:
            # Era-correct: the 7007 incident propagated via Sprint (1239).
            providers = [1239]
        elif rng.random() < config.stub_multihome_prob:
            providers = _distinct_choices(rng, stub_attachment, 2)
        else:
            providers = _distinct_choices(rng, stub_attachment, 1)
        for provider in providers:
            model.graph.add_customer(provider, asn)

    # Address space: every AS gets at least one prefix; remaining
    # prefixes go to random ASes weighted by tier.
    all_asns = sorted(model.as_info)
    for asn in all_asns:
        model.assign_prefix(plan.allocate_random_length(), asn)
    remaining = config.num_prefixes - model.num_prefixes()
    weighted = _tier_weighted_asns(model)
    for _ in range(max(0, remaining)):
        owner = rng.choice(weighted)
        model.assign_prefix(plan.allocate_random_length(), owner)

    # Exchange points among transit/tier-1 ASes.
    candidates = transit_asns + list(TIER1_ASNS)
    for index in range(config.num_ixps):
        member_count = rng.randint(3, min(8, len(candidates)))
        members = tuple(
            sorted(_distinct_choices(rng, candidates, member_count))
        )
        ixp = ExchangePoint(
            name=f"IXP-{index}", prefix=ixp_prefix(index), members=members
        )
        model.ixps.append(ixp)

    return model, plan, asn_factory


def _distinct_choices(rng, pool: list[int], count: int) -> list[int]:
    """``count`` distinct draws from a pool that may contain repeats."""
    chosen: list[int] = []
    attempts = 0
    while len(chosen) < count and attempts < 100 * count:
        candidate = rng.choice(pool)
        attempts += 1
        if candidate not in chosen:
            chosen.append(candidate)
    if len(chosen) < count:
        raise ValueError(
            f"could not draw {count} distinct ASes from pool of "
            f"{len(set(pool))}"
        )
    return chosen


def _tier_weighted_asns(model: InternetModel) -> list[int]:
    """ASNs with multiplicity by tier: big ASes own more prefixes."""
    weighted: list[int] = []
    for asn, info in model.as_info.items():
        if info.tier is Tier.TIER1:
            weighted.extend([asn] * 12)
        elif info.tier is Tier.TRANSIT:
            weighted.extend([asn] * 4)
        else:
            weighted.append(asn)
    return weighted
