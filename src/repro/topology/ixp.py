"""Exchange-point modelling.

Section VI-A of the paper: a prefix numbering an exchange-point fabric
is directly reachable from every member AS, and members may all
advertise it as locally originated — a *valid*, long-lived MOAS
conflict.  The paper definitively identified 30 such prefixes, all
conflicted for "most or all of the observation period".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netbase.prefix import Prefix

#: Historical exchange-point address block (ep.net allocations).
IXP_BLOCK = Prefix.parse("198.32.0.0/16")


@dataclass(frozen=True)
class ExchangePoint:
    """One exchange point: a fabric prefix and its member ASes."""

    name: str
    prefix: Prefix
    members: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.members) < 2:
            raise ValueError(
                f"exchange point {self.name} needs >= 2 members, "
                f"got {len(self.members)}"
            )
        if not IXP_BLOCK.contains(self.prefix):
            raise ValueError(
                f"exchange point prefix {self.prefix} outside {IXP_BLOCK}"
            )


def ixp_prefix(index: int) -> Prefix:
    """The ``index``-th /24 inside the exchange-point block."""
    if not 0 <= index < 256:
        raise ValueError(f"IXP index {index} outside 0..255")
    return Prefix(IXP_BLOCK.network | (index << 8), 24)
