"""Topology characterization — checking the synthetic Internet's shape.

The credibility of every scaled experiment rests on the synthetic
topology having real-Internet structure: heavy-tailed degrees, a small
dense core, short valley-free paths (the measured AS-path length of the
era averaged ≈ 3-4 hops), and a large single-/dual-homed fringe.  These
functions compute those properties; tests assert them.
"""

from __future__ import annotations

import statistics
from collections import Counter
from dataclasses import dataclass

from repro.bgp.oracle import GaoRexfordOracle
from repro.bgp.relationships import ASGraph
from repro.topology.model import InternetModel, Tier


@dataclass(frozen=True)
class TopologySummary:
    """Headline structural statistics of one AS graph."""

    num_ases: int
    num_links: int
    max_degree: int
    mean_degree: float
    degree_gini: float
    stub_fraction: float
    multihomed_stub_fraction: float
    mean_path_length: float


def degree_distribution(graph: ASGraph) -> Counter[int]:
    """degree -> number of ASes with that degree."""
    return Counter(graph.degree(asn) for asn in graph.ases())


def gini(values: list[float]) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, 1 = skewed).

    The real AS-level degree distribution is extremely unequal (a few
    tier-1s with hundreds of links, thousands of stubs with one); the
    generator must reproduce that inequality.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    total = sum(ordered)
    if total == 0:
        return 0.0
    cumulative = 0.0
    weighted = 0.0
    for rank, value in enumerate(ordered, start=1):
        cumulative += value
        weighted += cumulative
    n = len(ordered)
    return (n + 1 - 2 * weighted / total) / n


def mean_as_path_length(
    graph: ASGraph,
    *,
    origins: list[int],
    vantages: list[int],
) -> float:
    """Mean converged AS-path hop count between vantage/origin samples.

    Uses the Gao-Rexford oracle, so this is policy path length (what
    tables show), not shortest-path distance.
    """
    oracle = GaoRexfordOracle(graph)
    lengths: list[int] = []
    for origin in origins:
        routes = oracle.routes_to(origin)
        for vantage in vantages:
            route = routes.get(vantage)
            if route is not None and vantage != origin:
                lengths.append(route.length)
    return statistics.fmean(lengths) if lengths else 0.0


def summarize_model(
    model: InternetModel, *, path_samples: int = 20
) -> TopologySummary:
    """Structural summary of a generated Internet model."""
    graph = model.graph
    degrees = [graph.degree(asn) for asn in graph.ases()]
    stubs = model.ases_in_tier(Tier.STUB)
    multihomed = [
        asn for asn in stubs if len(graph.providers_of(asn)) >= 2
    ]
    sample_origins = stubs[:path_samples]
    sample_vantages = (
        model.ases_in_tier(Tier.TIER1)[:4]
        + model.ases_in_tier(Tier.TRANSIT)[:8]
    )
    return TopologySummary(
        num_ases=len(graph),
        num_links=graph.num_links(),
        max_degree=max(degrees, default=0),
        mean_degree=statistics.fmean(degrees) if degrees else 0.0,
        degree_gini=gini([float(degree) for degree in degrees]),
        stub_fraction=len(stubs) / max(len(graph), 1),
        multihomed_stub_fraction=len(multihomed) / max(len(stubs), 1),
        mean_path_length=mean_as_path_length(
            graph, origins=sample_origins, vantages=sample_vantages
        ),
    )
