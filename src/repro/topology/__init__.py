"""Internet-like topology and address-space generation, 1997-2001 era.

The paper measured the real Internet as it grew from roughly 50k to 104k
prefixes and 3k to 11k ASes.  This subpackage generates a synthetic
equivalent: a tiered, policy-annotated AS graph
(:mod:`repro.topology.generator`), realistic prefix allocation
(:mod:`repro.topology.addressing`), append-only daily growth
(:mod:`repro.topology.growth`) and exchange points
(:mod:`repro.topology.ixp`).  All magnitudes scale linearly with the
``scale`` parameter so laptop-size studies keep paper-shaped statistics.
"""

from repro.topology.addressing import AddressPlan, PREFIX_LENGTH_WEIGHTS
from repro.topology.generator import TopologyConfig, build_initial_model
from repro.topology.growth import GrowthModel
from repro.topology.ixp import ExchangePoint
from repro.topology.model import ASInfo, InternetModel, Tier

__all__ = [
    "AddressPlan",
    "PREFIX_LENGTH_WEIGHTS",
    "TopologyConfig",
    "build_initial_model",
    "GrowthModel",
    "ExchangePoint",
    "ASInfo",
    "InternetModel",
    "Tier",
]
