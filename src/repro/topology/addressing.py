"""Prefix allocation with an era-accurate length distribution.

Two jobs: (1) hand out *disjoint* prefixes on demand, so the synthetic
address plan never self-overlaps by construction, and (2) draw prefix
lengths from a distribution matching the published composition of
1998-2001 BGP tables, where /24s were the bulk of entries — the paper's
figure 5 leans on exactly this fact.
"""

from __future__ import annotations

from repro.netbase.prefix import Prefix
from repro.util.rng import RngStreams

#: Approximate share of each prefix length in study-era global tables
#: (derived from contemporary Route Views / Telstra table statistics;
#: /24 dominance is the feature that matters for figure 5).
PREFIX_LENGTH_WEIGHTS: dict[int, float] = {
    8: 0.0020,
    9: 0.0003,
    10: 0.0006,
    11: 0.0012,
    12: 0.0020,
    13: 0.0035,
    14: 0.0070,
    15: 0.0080,
    16: 0.1100,
    17: 0.0150,
    18: 0.0250,
    19: 0.0600,
    20: 0.0400,
    21: 0.0350,
    22: 0.0450,
    23: 0.0500,
    24: 0.5800,
    25: 0.0040,
    26: 0.0025,
    27: 0.0015,
    28: 0.0009,
    29: 0.0007,
    30: 0.0005,
    32: 0.0003,
}


class PoolExhaustedError(RuntimeError):
    """An address pool ran out of space for the requested length."""


class SequentialAllocator:
    """Carves aligned, disjoint sub-prefixes out of one base block."""

    def __init__(self, base: Prefix) -> None:
        self.base = base
        self._cursor = base.network  # next free address

    def allocate(self, length: int) -> Prefix:
        """The next free /``length`` inside the base block."""
        if length < self.base.length:
            raise ValueError(
                f"cannot allocate /{length} from {self.base}"
            )
        block_size = 1 << (32 - length)
        # Align the cursor up to the block size.
        aligned = (self._cursor + block_size - 1) & ~(block_size - 1)
        end = self.base.network + self.base.num_addresses
        if aligned + block_size > end:
            raise PoolExhaustedError(
                f"pool {self.base} exhausted allocating /{length}"
            )
        self._cursor = aligned + block_size
        return Prefix(aligned, length)

    def remaining_addresses(self) -> int:
        """Addresses left between the cursor and the pool end."""
        end = self.base.network + self.base.num_addresses
        return end - self._cursor


class AddressPlan:
    """Length-aware allocation across era-appropriate address regions.

    Short prefixes come from legacy class A space, /16s from class B,
    long prefixes from class C space — so the synthetic table *looks*
    like a 1999 table, which keeps figure 5 honest.  198.32.0.0/16 is
    held out for exchange points.
    """

    def __init__(self, streams: RngStreams) -> None:
        self._rng = streams.python("addressing")
        self._pools: dict[str, SequentialAllocator] = {
            # 16.0.0.0 - 31.255.255.255: whole /8 allocations.
            "class_a": SequentialAllocator(Prefix.parse("16.0.0.0/4")),
            # 64.0.0.0 - 95.255.255.255: classless mid-length blocks.
            "classless_a": SequentialAllocator(Prefix.parse("64.0.0.0/3")),
            # 128.0.0.0 - 191.255.255.255: class B (/16s).
            "class_b": SequentialAllocator(Prefix.parse("128.0.0.0/2")),
            # 32.0.0.0 - 63.255.255.255: CIDR blocks /17-/23.
            "cidr": SequentialAllocator(Prefix.parse("32.0.0.0/3")),
            # 200.0.0.0 - 207.255.255.255: class C (/24 and longer).
            "class_c": SequentialAllocator(Prefix.parse("200.0.0.0/5")),
        }
        lengths = sorted(PREFIX_LENGTH_WEIGHTS)
        weights = [PREFIX_LENGTH_WEIGHTS[length] for length in lengths]
        self._lengths = lengths
        self._cumulative_weights = _cumulative(weights)

    def _pool_for(self, length: int) -> SequentialAllocator:
        if length <= 8:
            return self._pools["class_a"]
        if length <= 15:
            return self._pools["classless_a"]
        if length == 16:
            return self._pools["class_b"]
        if length <= 23:
            return self._pools["cidr"]
        return self._pools["class_c"]

    def allocate(self, length: int) -> Prefix:
        """A fresh, globally-disjoint prefix of exactly ``length``."""
        return self._pool_for(length).allocate(length)

    def allocate_random_length(self) -> Prefix:
        """A fresh prefix with length drawn from the era distribution."""
        return self.allocate(self.draw_length())

    def draw_length(self) -> int:
        """Sample a prefix length from :data:`PREFIX_LENGTH_WEIGHTS`."""
        choice = self._rng.random()
        for length, bound in zip(self._lengths, self._cumulative_weights):
            if choice <= bound:
                return length
        return self._lengths[-1]


def _cumulative(weights: list[float]) -> list[float]:
    total = sum(weights)
    bounds = []
    running = 0.0
    for weight in weights:
        running += weight / total
        bounds.append(running)
    bounds[-1] = 1.0
    return bounds
