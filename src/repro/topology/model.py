"""The mutable world model shared by topology generation and scenarios."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.bgp.relationships import ASGraph
from repro.netbase.prefix import Prefix
from repro.topology.ixp import ExchangePoint


class Tier(enum.Enum):
    """Coarse role of an AS in the hierarchy."""

    TIER1 = "tier1"
    TRANSIT = "transit"
    STUB = "stub"


@dataclass(frozen=True)
class ASInfo:
    """Static metadata about one AS."""

    asn: int
    tier: Tier
    join_day: int  # study-day index when the AS appeared (0 = start)


@dataclass
class InternetModel:
    """The synthetic Internet at a point in time.

    ``graph`` holds business relationships; ``prefix_owner`` maps every
    allocated prefix to the AS that legitimately owns it (origination is
    tracked separately by the scenario world, because MOAS conflicts are
    precisely about origination diverging from ownership).
    """

    graph: ASGraph = field(default_factory=ASGraph)
    as_info: dict[int, ASInfo] = field(default_factory=dict)
    prefix_owner: dict[Prefix, int] = field(default_factory=dict)
    owner_prefixes: dict[int, list[Prefix]] = field(default_factory=dict)
    ixps: list[ExchangePoint] = field(default_factory=list)

    def add_as(self, info: ASInfo) -> None:
        """Register a new AS (must not already exist)."""
        if info.asn in self.as_info:
            raise ValueError(f"AS {info.asn} already exists")
        self.as_info[info.asn] = info
        self.graph.add_as(info.asn)
        self.owner_prefixes.setdefault(info.asn, [])

    def assign_prefix(self, prefix: Prefix, owner: int) -> None:
        """Record ``owner`` as the legitimate holder of ``prefix``."""
        if prefix in self.prefix_owner:
            raise ValueError(f"{prefix} already assigned")
        if owner not in self.as_info:
            raise KeyError(f"unknown owner AS {owner}")
        self.prefix_owner[prefix] = owner
        self.owner_prefixes[owner].append(prefix)

    # -- convenience queries -------------------------------------------

    def ases_in_tier(self, tier: Tier) -> list[int]:
        """All ASNs of one tier, sorted."""
        return sorted(
            asn for asn, info in self.as_info.items() if info.tier is tier
        )

    def num_ases(self) -> int:
        """Number of ASes in the model."""
        return len(self.as_info)

    def num_prefixes(self) -> int:
        """Number of allocated prefixes."""
        return len(self.prefix_owner)

    def prefixes_of(self, asn: int) -> list[Prefix]:
        """Prefixes owned by ``asn`` (possibly empty)."""
        return list(self.owner_prefixes.get(asn, ()))
