"""Append-only daily growth of the synthetic Internet.

Between November 1997 and July 2001 the global table roughly doubled
(≈52k → ≈104k prefixes) and the AS count nearly quadrupled (≈3k →
≈11.5k).  The growth model adds stub ASes and prefixes day by day to hit
those era totals (scaled), using fractional accumulators so any window
length lands on target.

Growth is *append-only*: new ASes attach as customers of existing ASes,
and no links between pre-existing ASes are added or removed.  This keeps
converged routes of existing origins stable, which (a) matches the
archive-level stability of real tables at day granularity and (b) lets
the Gao-Rexford oracle cache per-origin routing for the whole study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.addressing import AddressPlan
from repro.topology.generator import AsnFactory, TopologyConfig
from repro.topology.model import ASInfo, InternetModel, Tier
from repro.util.rng import RngStreams


@dataclass(frozen=True)
class GrowthTargets:
    """End-of-study targets at ``scale=1.0``."""

    final_as_count: int = 11_500
    final_prefix_count: int = 104_000


class GrowthModel:
    """Daily growth driver over an :class:`InternetModel`."""

    def __init__(
        self,
        model: InternetModel,
        plan: AddressPlan,
        asn_factory: AsnFactory,
        config: TopologyConfig,
        streams: RngStreams,
        *,
        num_days: int,
        targets: GrowthTargets | None = None,
    ) -> None:
        if num_days < 1:
            raise ValueError(f"num_days must be >= 1, got {num_days}")
        self.model = model
        self.plan = plan
        self.asn_factory = asn_factory
        self.config = config
        self._rng = streams.python("growth")
        targets = targets or GrowthTargets()
        final_ases = config.scaled(targets.final_as_count)
        final_prefixes = config.scaled(targets.final_prefix_count)
        self._as_per_day = max(
            0.0, (final_ases - model.num_ases()) / num_days
        )
        self._prefix_per_day = max(
            0.0, (final_prefixes - model.num_prefixes()) / num_days
        )
        self._as_accumulator = 0.0
        self._prefix_accumulator = 0.0
        self._attachment_pool = self._build_attachment_pool()

    def _build_attachment_pool(self) -> list[int]:
        pool: list[int] = []
        for asn, info in self.model.as_info.items():
            if info.tier is Tier.TRANSIT:
                pool.extend([asn] * 3)
            elif info.tier is Tier.TIER1:
                pool.extend([asn] * 2)
        return pool

    def grow_one_day(self, day_index: int) -> tuple[list[int], list]:
        """Apply one day of growth; returns (new ASNs, new prefixes)."""
        self._as_accumulator += self._as_per_day
        self._prefix_accumulator += self._prefix_per_day
        new_asns: list[int] = []
        new_prefixes = []

        while self._as_accumulator >= 1.0:
            self._as_accumulator -= 1.0
            asn = self.asn_factory.next_asn()
            self.model.add_as(
                ASInfo(asn=asn, tier=Tier.STUB, join_day=day_index)
            )
            provider_count = (
                2
                if self._rng.random() < self.config.stub_multihome_prob
                else 1
            )
            providers: list[int] = []
            while len(providers) < provider_count:
                provider = self._rng.choice(self._attachment_pool)
                if provider not in providers:
                    providers.append(provider)
            for provider in providers:
                self.model.graph.add_customer(provider, asn)
            new_asns.append(asn)
            # Every new AS brings at least one prefix.
            prefix = self.plan.allocate_random_length()
            self.model.assign_prefix(prefix, asn)
            new_prefixes.append(prefix)
            self._prefix_accumulator -= 1.0

        while self._prefix_accumulator >= 1.0:
            self._prefix_accumulator -= 1.0
            owner = self._pick_prefix_owner(new_asns)
            prefix = self.plan.allocate_random_length()
            self.model.assign_prefix(prefix, owner)
            new_prefixes.append(prefix)

        return new_asns, new_prefixes

    def _pick_prefix_owner(self, new_asns: list[int]) -> int:
        # Mostly existing ASes grow their announcements; occasionally a
        # brand-new AS brings several prefixes at once.
        if new_asns and self._rng.random() < 0.3:
            return self._rng.choice(new_asns)
        all_asns = list(self.model.as_info)
        return self._rng.choice(all_asns)
