"""Command-line entry points.

- ``repro-simulate`` — generate a synthetic Route Views archive,
- ``repro-analyze`` — run the study pipeline over an archive and write
  every figure/table to an output directory,
- ``repro-report`` — print the summary tables from an analysis output.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.compare import compare_to_paper, comparison_table
from repro.analysis.export import episodes_csv, summary_json
from repro.analysis.figures import (
    figure1_ascii,
    figure1_csv,
    figure3_ascii,
    figure3_csv,
    figure5_ascii,
    figure5_csv,
    figure6_ascii,
    figure6_csv,
)
from repro.analysis.pipeline import StudyPipeline
from repro.analysis.report import figure2_table, figure4_table, summary_report
from repro.analysis.sources import detections_from_archive
from repro.scenario.world import ScenarioConfig, simulate_study
from repro.util.dates import parse_date


def simulate_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-simulate``."""
    parser = argparse.ArgumentParser(
        prog="repro-simulate",
        description="Generate a synthetic 1997-2001 Route Views archive.",
    )
    parser.add_argument("archive_dir", type=Path)
    parser.add_argument(
        "--scale",
        type=float,
        default=0.125,
        help="fraction of real-Internet size (default 0.125)",
    )
    parser.add_argument("--seed", type=int, default=20011108)
    parser.add_argument(
        "--peers", type=int, default=12, help="collector peer count"
    )
    parser.add_argument(
        "--mrt-export",
        metavar="YYYY-MM-DD",
        action="append",
        default=[],
        help="additionally dump this day as a binary MRT file "
        "(repeatable)",
    )
    args = parser.parse_args(argv)
    config = ScenarioConfig(
        scale=args.scale, seed=args.seed, num_peers=args.peers
    )
    export_days = {parse_date(text) for text in args.mrt_export}
    summary = simulate_study(
        args.archive_dir, config, mrt_export_days=export_days
    )
    print(f"archive written to {args.archive_dir}")
    for key in (
        "observed_days",
        "num_ases_final",
        "num_prefixes_final",
        "events_total",
    ):
        print(f"  {key}: {summary[key]}")
    return 0


def analyze_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-analyze``."""
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Run the MOAS study pipeline over an archive.",
    )
    parser.add_argument("archive_dir", type=Path)
    parser.add_argument("output_dir", type=Path)
    args = parser.parse_args(argv)

    results = StudyPipeline().run(detections_from_archive(args.archive_dir))
    out = args.output_dir
    out.mkdir(parents=True, exist_ok=True)
    (out / "figure1.csv").write_text(figure1_csv(results))
    (out / "figure3.csv").write_text(figure3_csv(results))
    (out / "figure5.csv").write_text(figure5_csv(results))
    (out / "figure6.csv").write_text(figure6_csv(results))
    (out / "episodes.csv").write_text(episodes_csv(results))
    (out / "summary.json").write_text(summary_json(results))
    sections = [
        summary_report(results),
        figure2_table(results),
        figure4_table(results),
        figure1_ascii(results),
        figure3_ascii(results),
        figure5_ascii(results),
        figure6_ascii(results),
    ]
    # When the archive records its generation scale, add the
    # programmatic paper-vs-measured table.
    from repro.scenario.archive import ArchiveReader

    scale = ArchiveReader(args.archive_dir).manifest.get("scale")
    if scale:
        sections.append(
            comparison_table(
                compare_to_paper(results, scale=float(scale))
            )
        )
    report = "\n\n".join(sections)
    (out / "report.txt").write_text(report + "\n")
    print(report)
    return 0


def report_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-report``."""
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Print a previously generated analysis report.",
    )
    parser.add_argument("output_dir", type=Path)
    args = parser.parse_args(argv)
    report_path = args.output_dir / "report.txt"
    if not report_path.exists():
        print(f"no report at {report_path}; run repro-analyze first",
              file=sys.stderr)
        return 1
    print(report_path.read_text(), end="")
    return 0
