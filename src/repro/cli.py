"""Deprecated command-line entry points.

``repro-simulate`` / ``repro-analyze`` / ``repro-report`` are thin
shims over the unified :mod:`repro.api.cli` command (``repro simulate``
/ ``repro analyze`` / ``repro report``) and will be removed in a future
release.  Because they delegate, their output is byte-identical to the
``repro`` subcommands.
"""

from __future__ import annotations

import sys
import warnings


def _delegate(subcommand: str, argv: list[str] | None) -> int:
    """Forward a legacy entry point to the unified ``repro`` CLI."""
    # FutureWarning, not DeprecationWarning: the default warning filters
    # hide DeprecationWarning outside __main__, so console-script users
    # would never see the notice before removal.
    warnings.warn(
        f"repro-{subcommand} is deprecated; use `repro {subcommand}`",
        FutureWarning,
        stacklevel=3,
    )
    from repro.api.cli import main

    return main([subcommand, *(argv if argv is not None else sys.argv[1:])])


def simulate_main(argv: list[str] | None = None) -> int:
    """Deprecated entry point of ``repro-simulate``.

    Use ``repro simulate`` instead.
    """
    return _delegate("simulate", argv)


def analyze_main(argv: list[str] | None = None) -> int:
    """Deprecated entry point of ``repro-analyze``.

    Use ``repro analyze`` instead.
    """
    return _delegate("analyze", argv)


def report_main(argv: list[str] | None = None) -> int:
    """Deprecated entry point of ``repro-report``.

    Use ``repro report`` instead.
    """
    return _delegate("report", argv)
