"""repro — reproduction of Zhao et al., *An Analysis of BGP Multiple
Origin AS (MOAS) Conflicts* (IMC 2001).

The package layers as follows (lowest first):

- :mod:`repro.netbase` — IPv4 prefixes, AS numbers, AS paths, radix trie,
  RIB snapshots.
- :mod:`repro.mrt` — MRT archive codec (TABLE_DUMP / TABLE_DUMP_V2 /
  BGP4MP), our substitute for mrtparse.
- :mod:`repro.bgp` — a policy-aware BGP route-propagation engine
  (Gao-Rexford relationships, per-router decision process).
- :mod:`repro.topology` — Internet-like AS topology and address-space
  generation for the 1997-2001 study window.
- :mod:`repro.scenario` — the measurement world: MOAS cause processes,
  the simulated Route Views collector and the daily snapshot archive.
- :mod:`repro.core` — the paper's contribution: MOAS detection,
  classification, episode/duration tracking, statistics and cause
  attribution, plus a streaming real-time alerter.
- :mod:`repro.analysis` — the end-to-end study pipeline (serial or
  sharded across a process pool; see :mod:`repro.analysis.parallel`)
  and the table/figure report generators.
- :mod:`repro.api` — the canonical entry surface: pluggable
  :class:`~repro.api.sources.DetectionSource` adapters, the renderer
  registry, the checkpointable :class:`~repro.api.service.MoasService`
  session, and the unified ``repro`` CLI.

See README.md for install and quickstart, and CHANGES.md for the
release history.
"""

__version__ = "1.9.0"

from repro.netbase import (
    ASPath,
    PeerId,
    Prefix,
    RibSnapshot,
    Roa,
    RoaTable,
    Route,
    ValidationState,
)

__all__ = [
    "ASPath",
    "DetectionSource",
    "MoasService",
    "PeerId",
    "Prefix",
    "RibSnapshot",
    "Roa",
    "RoaTable",
    "Route",
    "ValidationState",
    "render",
    "__version__",
]


def __getattr__(name: str):
    """Lazily expose the :mod:`repro.api` facade at the top level.

    ``MoasService``, ``DetectionSource`` and ``render`` import the
    analysis stack; deferring that import keeps ``import repro`` cheap
    for callers that only need the value types.
    """
    if name in ("MoasService", "DetectionSource", "render"):
        import repro.api as api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
