"""Developer tooling that ships with the package (``repro.tools``)."""
