"""``repro check`` — the project-invariant static analyzer.

The repo's correctness story rests on invariants no unit test can see
until they break: byte-identical shard merges, day-boundary snapshot
isolation under a lock, allocation-free columnar hot loops, and a
checkpoint wire format that versions its own changes.  This package
makes those invariants machine-checked: an AST pass over the source
tree with five project-specific rule families (see
:mod:`repro.tools.check.rules`), path-scoped configuration in
``pyproject.toml`` under ``[tool.repro-check]``, and
``# repro: ignore[rule-id]`` line suppressions with unused-suppression
detection.

Run it as ``repro check [PATHS...]`` or ``python -m repro.tools.check``;
``--format json`` emits the machine-readable document described in the
README (stable ``schema_version``), and exit status is 0 only when no
finding of ``error`` severity survives suppression.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import re
import sys
import tokenize
import tomllib
from dataclasses import dataclass
from pathlib import Path

#: Version of the ``--format json`` output document.  Bump only on
#: incompatible changes to the finding/summary shape.
JSON_SCHEMA_VERSION = 1

#: Findings the framework itself emits (suppression bookkeeping).
RULE_UNUSED_SUPPRESSION = "unused-suppression"
RULE_UNKNOWN_RULE = "unknown-rule"

_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*ignore\[([A-Za-z0-9_\-, ]+)\]"
)


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    ``line`` is 1-based; ``col`` is 1-based (``ast`` column offsets are
    shifted by one so editors and humans agree on what column 1 means).
    """

    rule: str
    severity: str  # "error" | "warning"
    path: str  # project-relative posix path
    line: int
    col: int
    message: str

    def to_dict(self) -> dict:
        """JSON-serializable form — one row of ``--format json``."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output."""
        return cls(
            rule=payload["rule"],
            severity=payload["severity"],
            path=payload["path"],
            line=payload["line"],
            col=payload["col"],
            message=payload["message"],
        )

    def render(self) -> str:
        """The ascii-format line for this finding."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity}[{self.rule}] {self.message}"
        )


class Module:
    """One parsed source file, shared by every rule that scans it."""

    __slots__ = ("path", "relpath", "source", "lines", "tree", "suppressions")

    def __init__(self, path: Path, root: Path) -> None:
        self.path = path
        try:
            self.relpath = path.relative_to(root).as_posix()
        except ValueError:
            self.relpath = path.as_posix()
        self.source = path.read_text()
        self.lines = self.source.splitlines()
        self.tree = ast.parse(self.source, filename=str(path))
        #: line number -> set of rule ids suppressed on that line.
        #: Only real COMMENT tokens count — the marker inside a string
        #: or docstring (e.g. documentation quoting the syntax) is not
        #: a suppression.
        self.suppressions: dict[int, set[str]] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _SUPPRESSION_RE.search(token.string)
                if match:
                    self.suppressions[token.start[0]] = {
                        rule.strip()
                        for rule in match.group(1).split(",")
                        if rule.strip()
                    }
        except tokenize.TokenError:
            pass


class Rule:
    """Base class for one rule family.

    Subclasses set ``id``/``description``, optionally override
    ``default_paths`` (project-relative path prefixes the rule scans
    when the config has none), and implement :meth:`check`.
    """

    id: str = ""
    description: str = ""
    default_severity: str = "error"
    default_paths: tuple[str, ...] = ()

    def check(self, module: Module, options: dict, project: "Project"):
        """Yield :class:`Finding` objects for one module."""
        raise NotImplementedError

    def finalize(self, options: dict, project: "Project"):
        """Yield project-wide findings after every module was scanned."""
        return ()


class Project:
    """Shared context for one checker run: root, config, module cache."""

    __slots__ = ("root", "config", "_modules")

    def __init__(self, root: Path, config: dict) -> None:
        self.root = root
        self.config = config
        self._modules: dict[Path, Module] = {}

    def module(self, path: Path) -> Module:
        """The parsed module for ``path`` (cached per run)."""
        path = path.resolve()
        cached = self._modules.get(path)
        if cached is None:
            cached = self._modules[path] = Module(path, self.root)
        return cached

    def rule_options(self, rule_id: str) -> dict:
        """The ``[tool.repro-check.<rule>]`` table (empty if absent)."""
        options = self.config.get(rule_id, {})
        return options if isinstance(options, dict) else {}


def load_pyproject_config(root: Path) -> dict:
    """The ``[tool.repro-check]`` table of ``root/pyproject.toml``."""
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return {}
    with open(pyproject, "rb") as handle:
        data = tomllib.load(handle)
    return data.get("tool", {}).get("repro-check", {})


def find_project_root(start: Path | None = None) -> Path:
    """Nearest ancestor of ``start`` carrying a ``pyproject.toml``."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return current


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Every ``.py`` file under ``paths``, sorted for stable output."""
    found: set[Path] = set()
    for path in paths:
        if path.is_dir():
            found.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)


def _scoped(
    module_rel: str, options: dict, defaults: tuple[str, ...]
) -> bool:
    """True when a rule's path scope covers ``module_rel``."""
    scopes = options.get("paths", list(defaults))
    if scopes:
        if not any(
            module_rel == scope or module_rel.startswith(scope.rstrip("/") + "/")
            for scope in scopes
        ):
            return False
    for excluded in options.get("exclude", []):
        if module_rel == excluded or module_rel.startswith(
            excluded.rstrip("/") + "/"
        ):
            return False
    return True


def run_check(
    paths: list[Path],
    *,
    root: Path | None = None,
    config: dict | None = None,
    rules: list[str] | None = None,
) -> tuple[list[Finding], dict]:
    """Run the analyzer over ``paths``.

    Returns ``(findings, summary)``.  ``config`` overrides the
    ``[tool.repro-check]`` table (tests use this to point rules at
    fixture corpora); ``rules`` selects a subset of rule ids.
    """
    from repro.tools.check.rules import ALL_RULES

    root = (root or find_project_root()).resolve()
    config = load_pyproject_config(root) if config is None else config
    project = Project(root, config)

    by_id = {rule.id: rule for rule in ALL_RULES}
    if rules:
        unknown = sorted(set(rules) - set(by_id))
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(by_id))}"
            )
        selected = [by_id[rule_id] for rule_id in rules]
    else:
        selected = list(ALL_RULES)
    active_ids = {rule.id for rule in selected}

    files = iter_python_files([path.resolve() for path in paths])
    findings: list[Finding] = []
    used_suppressions: dict[tuple[str, int], set[str]] = {}
    modules: list[Module] = []
    for path in files:
        module = project.module(path)
        modules.append(module)
        for rule in selected:
            options = project.rule_options(rule.id)
            if not _scoped(module.relpath, options, rule.default_paths):
                continue
            severity = options.get("severity", rule.default_severity)
            for finding in rule.check(module, options, project):
                if severity != rule.default_severity:
                    finding = Finding(
                        rule=finding.rule,
                        severity=severity,
                        path=finding.path,
                        line=finding.line,
                        col=finding.col,
                        message=finding.message,
                    )
                suppressed = module.suppressions.get(finding.line, set())
                if finding.rule in suppressed:
                    used_suppressions.setdefault(
                        (module.relpath, finding.line), set()
                    ).add(finding.rule)
                    continue
                findings.append(finding)
    for rule in selected:
        options = project.rule_options(rule.id)
        findings.extend(rule.finalize(options, project))

    # Suppression hygiene: a comment naming a rule that ran but caught
    # nothing is dead weight; a comment naming no known rule is a typo.
    known_ids = set(by_id) | {RULE_UNUSED_SUPPRESSION, RULE_UNKNOWN_RULE}
    for module in modules:
        for line, ids in sorted(module.suppressions.items()):
            used = used_suppressions.get((module.relpath, line), set())
            for rule_id in sorted(ids):
                if rule_id not in known_ids:
                    findings.append(
                        Finding(
                            rule=RULE_UNKNOWN_RULE,
                            severity="error",
                            path=module.relpath,
                            line=line,
                            col=1,
                            message=(
                                f"suppression names unknown rule "
                                f"{rule_id!r}"
                            ),
                        )
                    )
                elif rule_id in active_ids and rule_id not in used:
                    findings.append(
                        Finding(
                            rule=RULE_UNUSED_SUPPRESSION,
                            severity="error",
                            path=module.relpath,
                            line=line,
                            col=1,
                            message=(
                                f"unused suppression: no {rule_id!r} "
                                f"finding on this line"
                            ),
                        )
                    )

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    summary = {
        "files_checked": len(files),
        "findings": len(findings),
        "rules_run": sorted(active_ids),
    }
    return findings, summary


def render_json(findings: list[Finding], summary: dict) -> str:
    """The ``--format json`` document (see README "Static analysis")."""
    return json.dumps(
        {
            "schema_version": JSON_SCHEMA_VERSION,
            "tool": "repro-check",
            "findings": [finding.to_dict() for finding in findings],
            "summary": summary,
        },
        indent=2,
        sort_keys=True,
    )


def render_ascii(findings: list[Finding], summary: dict) -> str:
    """Human-readable report: one line per finding plus a footer."""
    lines = [finding.render() for finding in findings]
    lines.append(
        f"repro check: {summary['findings']} finding(s) in "
        f"{summary['files_checked']} file(s)"
    )
    return "\n".join(lines)


def write_schema_snapshot(root: Path | None = None) -> Path:
    """Regenerate the committed checkpoint-schema snapshot.

    Extracts the current ``CHECKPOINT_VERSION`` and the ``state_dict``
    key fingerprints of every registered merge-algebra class, then
    writes them to the path the ``wire-symmetry`` rule checks against.
    Run this (``repro check --write-schema``) after intentionally
    changing a checkpoint payload *and* bumping the version.
    """
    from repro.tools.check.rules import WireSymmetryRule

    root = (root or find_project_root()).resolve()
    config = load_pyproject_config(root)
    project = Project(root, config)
    options = project.rule_options(WireSymmetryRule.id)
    snapshot = WireSymmetryRule().current_schema(options, project)
    target = root / options.get(
        "schema", "tests/fixtures/checkpoint_schema.json"
    )
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return target


def main(argv: list[str] | None = None) -> int:
    """CLI entry (``repro check`` / ``python -m repro.tools.check``)."""
    parser = argparse.ArgumentParser(
        prog="repro check",
        description=(
            "Static analysis of the repro source tree against its "
            "project invariants (determinism, lock discipline, merge "
            "algebra, hot-path hygiene, wire/checkpoint symmetry)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: configured paths)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE_ID",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--format",
        choices=("ascii", "json"),
        default="ascii",
        dest="output_format",
        help="report format (default: ascii)",
    )
    parser.add_argument(
        "--write-schema",
        action="store_true",
        help="regenerate the checkpoint schema snapshot and exit",
    )
    args = parser.parse_args(argv)

    root = find_project_root()
    if args.write_schema:
        target = write_schema_snapshot(root)
        print(f"wrote {target}")
        return 0
    config = load_pyproject_config(root)
    if args.paths:
        paths = [Path(path) for path in args.paths]
    else:
        paths = [root / path for path in config.get("paths", ["src"])]
    try:
        findings, summary = run_check(paths, root=root, rules=args.rules)
    except ValueError as error:
        print(f"repro check: {error}", file=sys.stderr)
        return 2
    if args.output_format == "json":
        print(render_json(findings, summary))
    else:
        print(render_ascii(findings, summary))
    return 1 if any(f.severity == "error" for f in findings) else 0
