"""The five project-invariant rule families of ``repro check``.

Each rule is a pure AST pass — nothing here imports or executes the
code under scrutiny, so the checker can run on broken trees and on
known-bad test corpora alike.  Rule ids (stable, used in
``# repro: ignore[...]`` suppressions and ``--rule`` selection):

``determinism``
    No wall-clock, entropy, or unseeded RNG in the study-producing
    layers; randomness must flow from seeded ``repro.util.rng``
    streams.  Also bans iterating directly over set displays or bare
    ``set()``/``frozenset()`` calls, whose order leaks hash
    randomization into output.

``lock-discipline``
    Attributes declared via :func:`repro.util.concurrency.guarded_by`
    may only be touched inside ``with self.<lock>:`` (``__init__``
    excepted — the object is not yet shared there).

``merge-algebra``
    A class that defines ``merge`` is a shard-combinable state and
    must also define ``state_dict``/``from_state`` and be listed in
    the differential harness registry, so the merge laws stay tested.

``hot-path``
    Classes on the per-row hot path declare ``__slots__`` (and only
    assign declared slots); designated hot scan functions allocate no
    objects inside their loops.

``wire-symmetry``
    ``from_dict`` may only read keys its ``to_dict`` writes, and the
    checkpoint payload schema (``state_dict`` key fingerprints of the
    registered merge-algebra classes) must match the committed
    snapshot, with ``CHECKPOINT_VERSION`` bumped on any change.
"""

from __future__ import annotations

import ast
import json

from repro.tools.check import Finding, Module, Project, Rule

# ---------------------------------------------------------------------------
# shared AST helpers


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _module_dotted(relpath: str) -> str:
    """Import path of a project-relative source file.

    ``src/repro/core/episodes.py`` -> ``repro.core.episodes``.
    """
    path = relpath
    if path.startswith("src/"):
        path = path[len("src/") :]
    if path.endswith("/__init__.py"):
        path = path[: -len("/__init__.py")]
    elif path.endswith(".py"):
        path = path[: -len(".py")]
    return path.replace("/", ".")


def _finding(
    rule: "Rule", module: Module, node: ast.AST, message: str
) -> Finding:
    return Finding(
        rule=rule.id,
        severity=rule.default_severity,
        path=module.relpath,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        message=message,
    )


def _class_methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    """Directly defined methods of a class, by name."""
    return {
        node.name: node
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _decorator_call(node: ast.expr) -> tuple[str | None, ast.Call | None]:
    """(callable name, Call node) of a decorator expression."""
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        return (name.rsplit(".", 1)[-1] if name else None, node)
    name = _dotted(node)
    return (name.rsplit(".", 1)[-1] if name else None, None)


def _string_args(call: ast.Call) -> list[str]:
    return [
        arg.value
        for arg in call.args
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
    ]


def _dict_written_keys(func: ast.FunctionDef) -> set[str]:
    """String keys a function writes: dict-literal keys + subscript
    stores (``payload["key"] = ...``), at any nesting depth."""
    keys: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    keys.add(key.value)
        elif isinstance(node, ast.Subscript) and isinstance(
            node.ctx, ast.Store
        ):
            if isinstance(node.slice, ast.Constant) and isinstance(
                node.slice.value, str
            ):
                keys.add(node.slice.value)
    return keys


def _dict_read_keys(func: ast.FunctionDef) -> set[str]:
    """String keys a function reads from mapping payloads: constant
    subscript loads, ``.get(...)``/``.pop(...)`` first arguments, and
    constant left operands of ``in``/``not in``."""
    keys: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Subscript) and isinstance(
            node.ctx, ast.Load
        ):
            if isinstance(node.slice, ast.Constant) and isinstance(
                node.slice.value, str
            ):
                keys.add(node.slice.value)
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("get", "pop")
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                keys.add(node.args[0].value)
        elif isinstance(node, ast.Compare):
            if (
                isinstance(node.left, ast.Constant)
                and isinstance(node.left.value, str)
                and any(
                    isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
                )
            ):
                keys.add(node.left.value)
    return keys


# ---------------------------------------------------------------------------
# determinism


#: Fully-qualified callables banned in deterministic layers.
_BANNED_CALLS = {
    "time.time": "wall clock",
    "time.time_ns": "wall clock",
    "datetime.datetime.now": "wall clock",
    "datetime.datetime.utcnow": "wall clock",
    "datetime.datetime.today": "wall clock",
    "datetime.date.today": "wall clock",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "host/time-derived id",
    "uuid.uuid4": "OS entropy",
}

#: Module prefixes where every call is banned (entropy sources).
_BANNED_PREFIXES = ("secrets.",)


def _import_map(tree: ast.Module) -> dict[str, str]:
    """Local alias -> canonical dotted path, from top-level imports."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for item in node.names:
                aliases[item.asname or item.name] = (
                    f"{node.module}.{item.name}"
                )
    return aliases


class DeterminismRule(Rule):
    id = "determinism"
    description = (
        "no wall clock, entropy, or unseeded RNG in study-producing "
        "code; no iteration over bare sets"
    )
    default_paths = (
        "src/repro/core",
        "src/repro/analysis",
        "src/repro/scenario",
    )

    def check(self, module: Module, options: dict, project: Project):
        aliases = _import_map(module.tree)

        def resolve(func: ast.expr) -> str | None:
            dotted = _dotted(func)
            if dotted is None:
                return None
            head, _, rest = dotted.partition(".")
            canonical = aliases.get(head)
            if canonical is None:
                return None
            return f"{canonical}.{rest}" if rest else canonical

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                resolved = resolve(node.func)
                if resolved is None:
                    continue
                reason = _BANNED_CALLS.get(resolved)
                if reason is not None:
                    yield _finding(
                        self,
                        module,
                        node,
                        f"call to {resolved} ({reason}) breaks "
                        "reproducibility; derive values from the study "
                        "inputs or a repro.util.rng stream",
                    )
                elif resolved.startswith(_BANNED_PREFIXES):
                    yield _finding(
                        self,
                        module,
                        node,
                        f"call to {resolved} (OS entropy) breaks "
                        "reproducibility",
                    )
                elif resolved == "random.Random" or resolved.endswith(
                    ".random.Random"
                ):
                    if not node.args and not node.keywords:
                        yield _finding(
                            self,
                            module,
                            node,
                            "unseeded random.Random() seeds from OS "
                            "entropy; pass a seed derived via "
                            "repro.util.rng",
                        )
                elif resolved.startswith("random."):
                    yield _finding(
                        self,
                        module,
                        node,
                        f"module-level {resolved}() uses the shared, "
                        "unseeded global RNG; use a repro.util.rng "
                        "stream",
                    )
                elif resolved.startswith("numpy.random.") or resolved.startswith(
                    "np.random."
                ):
                    if resolved.endswith(".default_rng") and (
                        node.args or node.keywords
                    ):
                        continue
                    yield _finding(
                        self,
                        module,
                        node,
                        f"{resolved} bypasses the seeded "
                        "repro.util.rng streams",
                    )
            elif isinstance(node, ast.For):
                yield from self._set_iteration(module, node.iter)
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                for generator in node.generators:
                    yield from self._set_iteration(module, generator.iter)

    def _set_iteration(self, module: Module, iterable: ast.expr):
        bare_set = isinstance(iterable, ast.Set) or (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in ("set", "frozenset")
        )
        if bare_set:
            yield _finding(
                self,
                module,
                iterable,
                "iterating a bare set leaks hash-randomized order into "
                "downstream output; wrap it in sorted()",
            )


# ---------------------------------------------------------------------------
# lock discipline


class LockDisciplineRule(Rule):
    id = "lock-discipline"
    description = (
        "attributes declared with @guarded_by are only touched inside "
        "`with self.<lock>`"
    )
    default_paths = ("src/repro/api",)

    def check(self, module: Module, options: dict, project: Project):
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            guarded: dict[str, str] = {}
            for decorator in cls.decorator_list:
                name, call = _decorator_call(decorator)
                if name != "guarded_by" or call is None:
                    continue
                strings = _string_args(call)
                if len(strings) >= 2:
                    lock = strings[0]
                    for attribute in strings[1:]:
                        guarded[attribute] = lock
            if not guarded:
                continue
            for method in cls.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if method.name == "__init__":
                    continue
                yield from self._check_method(module, cls, method, guarded)

    def _check_method(
        self,
        module: Module,
        cls: ast.ClassDef,
        method: ast.FunctionDef,
        guarded: dict[str, str],
    ):
        held_locks: set[str] = set()

        def visit(node: ast.AST):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired = set()
                for item in node.items:
                    dotted = _dotted(item.context_expr)
                    if dotted and dotted.startswith("self."):
                        lock = dotted[len("self.") :]
                        if lock not in held_locks:
                            acquired.add(lock)
                    # the context expressions themselves run unlocked
                    yield from visit(item.context_expr)
                held_locks.update(acquired)
                for child in node.body:
                    yield from visit(child)
                held_locks.difference_update(acquired)
                return
            if isinstance(node, ast.Attribute):
                dotted = _dotted(node)
                if dotted and dotted.startswith("self."):
                    attribute = dotted[len("self.") :].split(".")[0]
                    lock = guarded.get(attribute)
                    if lock is not None and lock not in held_locks:
                        yield _finding(
                            self,
                            module,
                            node,
                            f"{cls.name}.{attribute} is @guarded_by"
                            f'("{lock}") but {method.name}() touches it '
                            f"outside `with self.{lock}`",
                        )
            for child in ast.iter_child_nodes(node):
                yield from visit(child)

        for statement in method.body:
            yield from visit(statement)


# ---------------------------------------------------------------------------
# merge algebra


def _registry_entries(project: Project, registry_rel: str) -> set[str] | None:
    """Dotted class names in the harness ``MERGE_ALGEBRA_REGISTRY``.

    ``None`` when the registry file or the tuple is missing.
    """
    path = project.root / registry_rel
    if not path.is_file():
        return None
    try:
        registry_module = project.module(path)
    except SyntaxError:
        return None
    for node in registry_module.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name)
            and target.id == "MERGE_ALGEBRA_REGISTRY"
            for target in node.targets
        ):
            continue
        if isinstance(node.value, (ast.Tuple, ast.List, ast.Set)):
            return {
                element.value
                for element in node.value.elts
                if isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            }
    return None


class MergeAlgebraRule(Rule):
    id = "merge-algebra"
    description = (
        "classes defining merge() also define state_dict()/from_state() "
        "and are registered in the differential merge harness"
    )
    default_paths = ("src/repro",)

    def check(self, module: Module, options: dict, project: Project):
        registry_rel = options.get("registry")
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            methods = _class_methods(cls)
            if "merge" not in methods:
                continue
            missing = [
                name
                for name in ("state_dict", "from_state")
                if name not in methods
            ]
            if missing:
                yield _finding(
                    self,
                    module,
                    cls,
                    f"{cls.name} defines merge() but not "
                    f"{' or '.join(missing)}: mergeable state must be "
                    "checkpointable so the differential harness can "
                    "round-trip it",
                )
            if registry_rel is None:
                continue
            entries = _registry_entries(project, registry_rel)
            dotted = f"{_module_dotted(module.relpath)}.{cls.name}"
            if entries is None:
                yield _finding(
                    self,
                    module,
                    cls,
                    f"merge harness registry {registry_rel} does not "
                    "define MERGE_ALGEBRA_REGISTRY",
                )
            elif dotted not in entries:
                yield _finding(
                    self,
                    module,
                    cls,
                    f"{dotted} defines merge() but is not listed in "
                    f"MERGE_ALGEBRA_REGISTRY ({registry_rel}); register "
                    "it so the merge laws are differentially tested",
                )


# ---------------------------------------------------------------------------
# hot-path hygiene


#: Base classes that manage their own storage; subclasses are exempt
#: from the ``__slots__`` requirement.
_SLOTS_EXEMPT_BASES = {
    "Enum",
    "IntEnum",
    "StrEnum",
    "Flag",
    "IntFlag",
    "Protocol",
    "NamedTuple",
    "TypedDict",
}

_DEFAULT_HOT_FUNCTIONS = ("_scan_segments", "_scan_flat", "detect_day_columns")


def _base_name(node: ast.expr) -> str | None:
    dotted = _dotted(node)
    if dotted is not None:
        return dotted.rsplit(".", 1)[-1]
    if isinstance(node, ast.Subscript):  # e.g. Generic[V], Protocol[T]
        return _base_name(node.value)
    return None


def _slots_declaration(cls: ast.ClassDef) -> set[str] | None:
    """Declared slot names, or ``None`` if the class has no
    ``__slots__`` assignment."""
    for node in cls.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(target, ast.Name) and target.id == "__slots__"
            for target in targets
        ):
            continue
        names: set[str] = set()
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    names.add(element.value)
        elif isinstance(value, ast.Constant) and isinstance(
            value.value, str
        ):
            names.add(value.value)
        return names
    return None


def _dataclass_slots(cls: ast.ClassDef) -> bool:
    """True for ``@dataclass(..., slots=True)``."""
    for decorator in cls.decorator_list:
        name, call = _decorator_call(decorator)
        if name != "dataclass" or call is None:
            continue
        for keyword in call.keywords:
            if (
                keyword.arg == "slots"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


class HotPathRule(Rule):
    id = "hot-path"
    description = (
        "hot-path classes declare __slots__ (and only assign declared "
        "slots); hot scan functions allocate nothing inside loops"
    )
    default_paths = (
        "src/repro/core",
        "src/repro/netbase/prefix.py",
        "src/repro/netbase/rib.py",
        "src/repro/scenario/archive.py",
    )

    def check(self, module: Module, options: dict, project: Project):
        hot_functions = set(
            options.get("hot-functions", _DEFAULT_HOT_FUNCTIONS)
        )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)
            elif (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in hot_functions
            ):
                yield from self._check_hot_function(module, node)

    def _check_class(self, module: Module, cls: ast.ClassDef):
        if cls.name.endswith(("Error", "Exception", "Warning")):
            return
        base_names = {_base_name(base) for base in cls.bases}
        if base_names & _SLOTS_EXEMPT_BASES:
            return
        slots = _slots_declaration(cls)
        if slots is None:
            if _dataclass_slots(cls):
                return
            yield _finding(
                self,
                module,
                cls,
                f"{cls.name} is on the per-row hot path but declares no "
                "__slots__ (use @dataclass(slots=True) or an explicit "
                "tuple)",
            )
            return
        if cls.bases:
            # Inherited slots are invisible to a static pass; the
            # declaration requirement above is still enforced.
            return
        for method in cls.body:
            if not isinstance(
                method, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            for node in ast.walk(method):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Store)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr not in slots
                ):
                    yield _finding(
                        self,
                        module,
                        node,
                        f"{cls.name}.{method.name}() assigns "
                        f"self.{node.attr}, which is not a declared "
                        "slot of the class",
                    )

    def _check_hot_function(self, module: Module, func: ast.FunctionDef):
        def visit(node: ast.AST, in_loop: bool):
            if isinstance(node, (ast.For, ast.While, ast.AsyncFor)):
                in_loop = True
            elif in_loop:
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id[:1].isupper()
                ):
                    yield _finding(
                        self,
                        module,
                        node,
                        f"{func.name}() instantiates "
                        f"{node.func.id} inside its scan loop; hoist "
                        "construction out of the per-row path",
                    )
                elif isinstance(
                    node,
                    (
                        ast.ListComp,
                        ast.SetComp,
                        ast.DictComp,
                        ast.GeneratorExp,
                    ),
                ):
                    yield _finding(
                        self,
                        module,
                        node,
                        f"{func.name}() builds a comprehension inside "
                        "its scan loop; hoist the allocation out of the "
                        "per-row path",
                    )
            for child in ast.iter_child_nodes(node):
                yield from visit(child, in_loop)

        for statement in func.body:
            yield from visit(statement, False)


# ---------------------------------------------------------------------------
# wire / checkpoint schema symmetry


class WireSymmetryRule(Rule):
    id = "wire-symmetry"
    description = (
        "from_dict reads only keys to_dict writes; checkpoint payload "
        "schema matches the committed snapshot at CHECKPOINT_VERSION"
    )
    default_paths = ("src/repro",)

    def check(self, module: Module, options: dict, project: Project):
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            methods = _class_methods(cls)
            writer = methods.get("to_dict")
            reader = methods.get("from_dict")
            if writer is None or reader is None:
                continue
            written = _dict_written_keys(writer)
            read = _dict_read_keys(reader)
            orphaned = sorted(read - written)
            if orphaned:
                yield _finding(
                    self,
                    module,
                    reader,
                    f"{cls.name}.from_dict() reads key(s) "
                    f"{', '.join(repr(key) for key in orphaned)} that "
                    f"{cls.name}.to_dict() never writes",
                )

    # -- checkpoint schema snapshot ------------------------------------

    def current_schema(self, options: dict, project: Project) -> dict:
        """The live schema fingerprint: ``CHECKPOINT_VERSION`` plus the
        ``state_dict`` key sets of every registered class."""
        registry_rel = options.get(
            "registry", "tests/analysis/test_merge_properties.py"
        )
        entries = _registry_entries(project, registry_rel)
        if entries is None:
            raise ValueError(
                f"merge harness registry {registry_rel} does not define "
                "MERGE_ALGEBRA_REGISTRY"
            )
        classes: dict[str, list[str]] = {}
        for dotted in sorted(entries):
            module_dotted, _, class_name = dotted.rpartition(".")
            source = (
                project.root
                / "src"
                / (module_dotted.replace(".", "/") + ".py")
            )
            keys: set[str] = set()
            if source.is_file():
                module = project.module(source)
                for cls in ast.walk(module.tree):
                    if (
                        isinstance(cls, ast.ClassDef)
                        and cls.name == class_name
                    ):
                        state_dict = _class_methods(cls).get("state_dict")
                        if state_dict is not None:
                            keys = _dict_written_keys(state_dict)
                        break
            classes[dotted] = sorted(keys)
        return {
            "checkpoint_version": self._checkpoint_version(
                options, project
            ),
            "classes": classes,
        }

    def _checkpoint_version(
        self, options: dict, project: Project
    ) -> int | None:
        source_rel = options.get("version-source", "src/repro/api/service.py")
        source = project.root / source_rel
        if not source.is_file():
            return None
        module = project.module(source)
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            if any(
                isinstance(target, ast.Name)
                and target.id == "CHECKPOINT_VERSION"
                for target in targets
            ) and isinstance(value, ast.Constant):
                return value.value
        return None

    def finalize(self, options: dict, project: Project):
        schema_rel = options.get("schema")
        if schema_rel is None:
            return  # snapshot check not configured (e.g. corpus runs)
        snapshot_path = project.root / schema_rel
        anchor_rel = options.get("version-source", "src/repro/api/service.py")
        if not snapshot_path.is_file():
            yield Finding(
                rule=self.id,
                severity=self.default_severity,
                path=schema_rel,
                line=1,
                col=1,
                message=(
                    "checkpoint schema snapshot is missing; run "
                    "`repro check --write-schema`"
                ),
            )
            return
        snapshot = json.loads(snapshot_path.read_text())
        try:
            current = self.current_schema(options, project)
        except ValueError as error:
            yield Finding(
                rule=self.id,
                severity=self.default_severity,
                path=schema_rel,
                line=1,
                col=1,
                message=str(error),
            )
            return
        version_bumped = (
            current["checkpoint_version"] != snapshot.get("checkpoint_version")
        )
        changed = sorted(
            dotted
            for dotted in set(current["classes"])
            | set(snapshot.get("classes", {}))
            if current["classes"].get(dotted)
            != snapshot.get("classes", {}).get(dotted)
        )
        if changed and not version_bumped:
            yield Finding(
                rule=self.id,
                severity=self.default_severity,
                path=anchor_rel,
                line=1,
                col=1,
                message=(
                    "checkpoint payload schema changed for "
                    f"{', '.join(changed)} without bumping "
                    "CHECKPOINT_VERSION; bump it, then run "
                    "`repro check --write-schema`"
                ),
            )
        elif changed or version_bumped:
            yield Finding(
                rule=self.id,
                severity=self.default_severity,
                path=schema_rel,
                line=1,
                col=1,
                message=(
                    "checkpoint schema snapshot is stale; run "
                    "`repro check --write-schema` to record the new "
                    "schema"
                ),
            )


#: Every rule the checker runs, in report order.
ALL_RULES: tuple[Rule, ...] = (
    DeterminismRule(),
    LockDisciplineRule(),
    MergeAlgebraRule(),
    HotPathRule(),
    WireSymmetryRule(),
)
