"""``python -m repro.tools.check`` — same CLI as ``repro check``."""

import sys

from repro.tools.check import main

if __name__ == "__main__":
    sys.exit(main())
