"""MOAS conflict detection over daily snapshots.

The paper's methodology (Section III): take each day's table, read the
origin AS (last AS of the AS path) of every route for every prefix, and
flag prefixes with more than one distinct origin.  A prefix is excluded
(and counted) when *any* of its routes' paths ends in an AS *set* — the
paper saw ~12 such prefixes and left them out entirely, since an AS_SET
tail makes the true origin ambiguous.

Two input forms are supported: full :class:`~repro.netbase.rib.RibSnapshot`
tables (e.g. parsed from MRT archives) and the sparse CDS day records,
which carry per-peer origins for event-touched prefixes and imply the
registry owner for the rest.

Both detectors take an optional :class:`~repro.netbase.sharding.ShardSpec`
that restricts the scan to one slice of the prefix space.  Per-shard
detections from one partition recombine with :func:`merge_detections`
into exactly the detection a full scan would have produced — the
foundation of the parallel study engine.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.netbase.prefix import Prefix
from repro.netbase.rib import RibSnapshot
from repro.netbase.sharding import ShardSpec
from repro.scenario.archive import ArchiveReader, DayRecord, PeerRow


@dataclass(frozen=True)
class DailyConflict:
    """One prefix observed with multiple origins on one day."""

    prefix: Prefix
    origins: frozenset[int]
    #: origin -> tuple of distinct AS paths ending at that origin
    #: (paths start at the exporting peer).  May be empty when the
    #: input carries no path information.
    paths_by_origin: tuple[tuple[int, tuple[tuple[int, ...], ...]], ...] = ()

    def paths_of(self, origin: int) -> tuple[tuple[int, ...], ...]:
        """Observed paths ending at ``origin`` (empty if none)."""
        for candidate, paths in self.paths_by_origin:
            if candidate == origin:
                return paths
        return ()

    def all_paths(self) -> tuple[tuple[int, ...], ...]:
        """Every observed path across all origins."""
        return tuple(
            path for _origin, paths in self.paths_by_origin for path in paths
        )


@dataclass(frozen=True)
class DayDetection:
    """Detector output for one observed day."""

    day: datetime.date
    conflicts: tuple[DailyConflict, ...]
    prefixes_scanned: int
    as_set_excluded: int

    @property
    def num_conflicts(self) -> int:
        return len(self.conflicts)


def detect_snapshot(
    snapshot: RibSnapshot, shard: ShardSpec | None = None
) -> DayDetection:
    """Scan a full multi-peer table (the MRT-file path).

    This is the reference implementation of the paper's methodology:
    every route of every prefix is examined, and a prefix with any
    AS_SET-terminated route is excluded and counted.  With ``shard``
    only prefixes inside the shard are scanned (and only they count
    toward ``prefixes_scanned`` / ``as_set_excluded``), so per-shard
    detections sum exactly to the full scan.
    """
    conflicts: list[DailyConflict] = []
    as_set_excluded = 0
    scanned = 0
    for prefix, routes in snapshot.iter_prefix_routes(copy=False):
        if shard is not None and not shard.contains(prefix):
            continue
        scanned += 1
        # Pass 1: one origin() call per route into a flat array, no
        # per-route set/dict churn.  Most prefixes are single-origin
        # and never leave this pass; AS_SET tails bail out early.
        origins: list[int | None] = []
        first_origin: int | None = None
        multi = False
        saw_as_set = False
        for route in routes:
            origin = route.path.origin()
            if isinstance(origin, frozenset):
                saw_as_set = True
                break
            origins.append(origin)
            if origin is None:
                continue
            if first_origin is None:
                first_origin = origin
            elif origin != first_origin:
                multi = True
        if saw_as_set:
            as_set_excluded += 1
            continue
        if not multi:
            continue
        # Pass 2 (conflicted prefixes only): gather distinct paths.
        origin_paths: dict[int, set[tuple[int, ...]]] = {}
        for route, origin in zip(routes, origins):
            if origin is None:
                continue
            bucket = origin_paths.get(origin)
            if bucket is None:
                origin_paths[origin] = bucket = set()
            bucket.add(tuple(route.path.as_list()))
        conflicts.append(_conflict(prefix, origin_paths))
    return DayDetection(
        day=snapshot.day,
        conflicts=tuple(
            sorted(conflicts, key=lambda c: c.prefix.sort_key())
        ),
        prefixes_scanned=scanned,
        as_set_excluded=as_set_excluded,
    )


def detect_day(
    record: DayRecord,
    reader: ArchiveReader,
    shard: ShardSpec | None = None,
) -> DayDetection:
    """Scan one CDS day record.

    Prefixes without rows have a single origin (their registry owner)
    by archive semantics; rows carry each peer's chosen origin for
    event-touched prefixes, so the origin-set test runs on rows grouped
    by prefix.  Registry entries flagged as AS_SET-terminated are
    excluded and counted — the flag records that the prefix's
    announcements end in an AS set, i.e. the same "any route ends in an
    AS set" rule :func:`detect_snapshot` applies to full tables.

    The hot loop touches only event-touched prefixes: exclusion counts
    come from a precomputed cumulative profile of the registry, and the
    distinct-origin test runs on plain row arrays, materializing path
    sets only for actual conflicts.
    """
    alive = record.alive_count
    scanned_profile, as_set_profile = reader.shard_profile(shard)
    by_prefix: dict[int, list[PeerRow]] = {}
    for row in record.rows:
        if row.prefix_id >= alive:
            continue
        rows = by_prefix.get(row.prefix_id)
        if rows is None:
            by_prefix[row.prefix_id] = rows = []
        rows.append(row)

    registry = reader.registry
    conflicts: list[DailyConflict] = []
    for prefix_id, rows in by_prefix.items():
        entry = registry[prefix_id]
        if entry.as_set_tail:
            continue  # already counted via the cumulative profile
        first_origin = rows[0].origin
        for row in rows:
            if row.origin != first_origin:
                break
        else:
            continue  # single origin: not a conflict
        prefix = entry.prefix
        if shard is not None and not shard.contains(prefix):
            continue
        origin_paths: dict[int, set[tuple[int, ...]]] = {}
        for row in rows:
            bucket = origin_paths.get(row.origin)
            if bucket is None:
                origin_paths[row.origin] = bucket = set()
            bucket.add(reader.path(row.path_id))
        conflicts.append(_conflict(prefix, origin_paths))
    return DayDetection(
        day=record.day,
        conflicts=tuple(
            sorted(conflicts, key=lambda c: c.prefix.sort_key())
        ),
        prefixes_scanned=scanned_profile[alive],
        as_set_excluded=as_set_profile[alive],
    )


def merge_detections(parts: list[DayDetection]) -> DayDetection:
    """Recombine per-shard detections of one day into the full scan.

    ``parts`` must come from disjoint shards of the same day; the
    result is identical to detecting the whole table at once (conflicts
    in prefix order, counters summed).
    """
    if not parts:
        raise ValueError("cannot merge zero detections")
    day = parts[0].day
    for part in parts[1:]:
        if part.day != day:
            raise ValueError(
                f"cannot merge detections of {part.day} into {day}"
            )
    conflicts = [
        conflict for part in parts for conflict in part.conflicts
    ]
    conflicts.sort(key=lambda c: c.prefix.sort_key())
    return DayDetection(
        day=day,
        conflicts=tuple(conflicts),
        prefixes_scanned=sum(part.prefixes_scanned for part in parts),
        as_set_excluded=sum(part.as_set_excluded for part in parts),
    )


def _conflict(
    prefix: Prefix, origin_paths: dict[int, set[tuple[int, ...]]]
) -> DailyConflict:
    return DailyConflict(
        prefix=prefix,
        origins=frozenset(origin_paths),
        paths_by_origin=tuple(
            (origin, tuple(sorted(paths)))
            for origin, paths in sorted(origin_paths.items())
        ),
    )
