"""MOAS conflict detection over daily snapshots.

The paper's methodology (Section III): take each day's table, read the
origin AS (last AS of the AS path) of every route for every prefix, and
flag prefixes with more than one distinct origin.  A prefix is excluded
(and counted) when *any* of its routes' paths ends in an AS *set* — the
paper saw ~12 such prefixes and left them out entirely, since an AS_SET
tail makes the true origin ambiguous.

Two input forms are supported: full :class:`~repro.netbase.rib.RibSnapshot`
tables (e.g. parsed from MRT archives) and the sparse CDS day records,
which carry per-peer origins for event-touched prefixes and imply the
registry owner for the rest.

CDS days scan in one of two equivalent forms: :func:`detect_day` over
object :class:`~repro.scenario.archive.DayRecord` rows (the reference
implementation) and :func:`detect_day_columns` over flat
:class:`~repro.scenario.archive.DayColumns` batches — the production
hot path, which works run-wise on whole-day arrays and only
materializes per-row structures for prefixes that actually conflict.
The two are differentially tested to produce identical output;
``REPRO_OBJECT_SCAN=1`` forces the object path everywhere.

All detectors take an optional :class:`~repro.netbase.sharding.ShardSpec`
that restricts the scan to one slice of the prefix space.  Per-shard
detections from one partition recombine with :func:`merge_detections`
into exactly the detection a full scan would have produced — the
foundation of the parallel study engine.
"""

from __future__ import annotations

import datetime
import operator
import os
import weakref
from dataclasses import dataclass

from repro.netbase.prefix import Prefix
from repro.netbase.rib import RibSnapshot
from repro.netbase.sharding import ShardSpec
from repro.scenario.archive import (
    ArchiveReader,
    DayColumns,
    DayRecord,
    PeerRow,
)


@dataclass(frozen=True, slots=True, weakref_slot=True)
class DailyConflict:
    """One prefix observed with multiple origins on one day.

    Slotted for the hot path; ``weakref_slot`` stays because the
    episode tracker and classifier memoize per-conflict results behind
    ``weakref.ref`` guards.
    """

    prefix: Prefix
    origins: frozenset[int]
    #: origin -> tuple of distinct AS paths ending at that origin
    #: (paths start at the exporting peer).  May be empty when the
    #: input carries no path information.
    paths_by_origin: tuple[tuple[int, tuple[tuple[int, ...], ...]], ...] = ()

    def paths_of(self, origin: int) -> tuple[tuple[int, ...], ...]:
        """Observed paths ending at ``origin`` (empty if none)."""
        for candidate, paths in self.paths_by_origin:
            if candidate == origin:
                return paths
        return ()

    def all_paths(self) -> tuple[tuple[int, ...], ...]:
        """Every observed path across all origins."""
        return tuple(
            path for _origin, paths in self.paths_by_origin for path in paths
        )


@dataclass(frozen=True, slots=True)
class DayDetection:
    """Detector output for one observed day."""

    day: datetime.date
    conflicts: tuple[DailyConflict, ...]
    prefixes_scanned: int
    as_set_excluded: int

    @property
    def num_conflicts(self) -> int:
        return len(self.conflicts)


def detect_snapshot(
    snapshot: RibSnapshot, shard: ShardSpec | None = None
) -> DayDetection:
    """Scan a full multi-peer table (the MRT-file path).

    This is the reference implementation of the paper's methodology:
    every route of every prefix is examined, and a prefix with any
    AS_SET-terminated route is excluded and counted.  With ``shard``
    only prefixes inside the shard are scanned (and only they count
    toward ``prefixes_scanned`` / ``as_set_excluded``), so per-shard
    detections sum exactly to the full scan.
    """
    conflicts: list[DailyConflict] = []
    as_set_excluded = 0
    scanned = 0
    for prefix, routes in snapshot.iter_prefix_routes(copy=False):
        if shard is not None and not shard.contains(prefix):
            continue
        scanned += 1
        # Pass 1: one origin() call per route into a flat array, no
        # per-route set/dict churn.  Most prefixes are single-origin
        # and never leave this pass; AS_SET tails bail out early.
        origins: list[int | None] = []
        first_origin: int | None = None
        multi = False
        saw_as_set = False
        for route in routes:
            origin = route.path.origin()
            if isinstance(origin, frozenset):
                saw_as_set = True
                break
            origins.append(origin)
            if origin is None:
                continue
            if first_origin is None:
                first_origin = origin
            elif origin != first_origin:
                multi = True
        if saw_as_set:
            as_set_excluded += 1
            continue
        if not multi:
            continue
        # Pass 2 (conflicted prefixes only): gather distinct paths.
        origin_paths: dict[int, set[tuple[int, ...]]] = {}
        for route, origin in zip(routes, origins):
            if origin is None:
                continue
            bucket = origin_paths.get(origin)
            if bucket is None:
                origin_paths[origin] = bucket = set()
            bucket.add(tuple(route.path.as_list()))
        conflicts.append(_conflict(prefix, origin_paths))
    return DayDetection(
        day=snapshot.day,
        conflicts=tuple(
            sorted(conflicts, key=lambda c: c.prefix.sort_key())
        ),
        prefixes_scanned=scanned,
        as_set_excluded=as_set_excluded,
    )


def detect_day(
    record: DayRecord,
    reader: ArchiveReader,
    shard: ShardSpec | None = None,
) -> DayDetection:
    """Scan one CDS day record.

    Prefixes without rows have a single origin (their registry owner)
    by archive semantics; rows carry each peer's chosen origin for
    event-touched prefixes, so the origin-set test runs on rows grouped
    by prefix.  Registry entries flagged as AS_SET-terminated are
    excluded and counted — the flag records that the prefix's
    announcements end in an AS set, i.e. the same "any route ends in an
    AS set" rule :func:`detect_snapshot` applies to full tables.

    The hot loop touches only event-touched prefixes: exclusion counts
    come from a precomputed cumulative profile of the registry, and the
    distinct-origin test runs on plain row arrays, materializing path
    sets only for actual conflicts.
    """
    alive = record.alive_count
    scanned_profile, as_set_profile = reader.shard_profile(shard)
    by_prefix: dict[int, list[PeerRow]] = {}
    for row in record.rows:
        if row.prefix_id >= alive:
            continue
        rows = by_prefix.get(row.prefix_id)
        if rows is None:
            by_prefix[row.prefix_id] = rows = []
        rows.append(row)

    registry = reader.registry
    conflicts: list[DailyConflict] = []
    for prefix_id, rows in by_prefix.items():
        entry = registry[prefix_id]
        if entry.as_set_tail:
            continue  # already counted via the cumulative profile
        first_origin = rows[0].origin
        for row in rows:
            if row.origin != first_origin:
                break
        else:
            continue  # single origin: not a conflict
        prefix = entry.prefix
        if shard is not None and not shard.contains(prefix):
            continue
        origin_paths: dict[int, set[tuple[int, ...]]] = {}
        for row in rows:
            bucket = origin_paths.get(row.origin)
            if bucket is None:
                origin_paths[row.origin] = bucket = set()
            bucket.add(reader.path(row.path_id))
        conflicts.append(_conflict(prefix, origin_paths))
    return DayDetection(
        day=record.day,
        conflicts=tuple(
            sorted(conflicts, key=lambda c: c.prefix.sort_key())
        ),
        prefixes_scanned=scanned_profile[alive],
        as_set_excluded=as_set_profile[alive],
    )


def columnar_scan_enabled() -> bool:
    """Whether the analysis layers should scan columnar day batches.

    On by default; set ``REPRO_OBJECT_SCAN=1`` to force the object-row
    path everywhere (the escape hatch the differential suites use to
    time and cross-check the two implementations).
    """
    return os.environ.get("REPRO_OBJECT_SCAN", "").lower() not in (
        "1",
        "true",
        "yes",
    )


#: Per-reader caches of run key -> (prefix sort key, DailyConflict),
#: used by the flat-columns scan.  On a v2 store a conflicting run is
#: one interned row group that recurs day after day while its event is
#: live; its conflict record is identical every such day, so it is
#: built once — sort key and all — and reused (conflict-heavy days
#: cost O(runs), not O(rows)).  Keyed weakly so dropping a reader
#: drops its cache.
_CONFLICT_TEMPLATES: "weakref.WeakKeyDictionary[ArchiveReader, dict]" = (
    weakref.WeakKeyDictionary()
)

#: Per-reader caches of whole-group scan outcomes, used by the segment
#: scan.  An interned row group's conflicts are a pure function of its
#: rows and the reader's registry masks, independent of which day
#: references it — except for the ``pid >= alive`` liveness filter, so
#: each entry records the minimum alive count it is valid for:
#: ``group_id`` (or ``(group_id, shard)``) -> ``(min_alive, pairs)``.
#: In the steady state a day scan is one dict hit per group.
_GROUP_OUTCOMES: "weakref.WeakKeyDictionary[ArchiveReader, dict]" = (
    weakref.WeakKeyDictionary()
)


def detect_day_columns(
    columns: DayColumns,
    reader: ArchiveReader,
    shard: ShardSpec | None = None,
) -> DayDetection:
    """Scan one columnar day batch; equivalent to :func:`detect_day`.

    The whole-day array formulation of the same methodology: run
    boundaries over the prefix-id column partition the rows per prefix,
    ``run_single`` (a run-wise min==max over origins, computed at
    decode time) discards the single-origin majority without touching
    rows, AS_SET exclusion and shard membership are O(1) indexes into
    precomputed registry masks, and only runs that actually conflict
    materialize origin->path sets — with each interned row group's
    scan outcome (usually "no conflicts") cached per reader, so a
    group that recurs across days is scanned exactly once.  On a v2
    store the scan walks the decoder's zero-copy per-group segments
    directly, so the flat concatenated columns are never even built.

    Output is identical to ``detect_day(columns.to_record(), ...)`` for
    every input; the rare day whose rows are not grouped by prefix
    (duplicate prefix ids across non-adjacent runs — legal in the
    format, never produced by our writer) falls back to the object path
    wholesale to keep that guarantee.
    """
    alive = columns.alive_count
    scanned_profile, as_set_profile = reader.shard_profile(shard)
    segments = columns.segments
    if segments is not None:
        pairs = _scan_segments(segments, reader, shard, alive)
    else:
        pairs = _scan_flat(columns, reader, shard, alive)
    if pairs is None:
        # A prefix's rows span non-adjacent runs; the run-wise scan
        # would see partial origin sets (two individually single-origin
        # runs of one prefix can still conflict jointly).  Take the
        # object path.
        return detect_day(columns.to_record(), reader, shard)
    pairs.sort(key=_PAIR_KEY)
    return DayDetection(
        day=columns.day,
        conflicts=tuple(entry[1] for entry in pairs),
        prefixes_scanned=scanned_profile[alive],
        as_set_excluded=as_set_profile[alive],
    )


#: Sort key of a (prefix sort key, conflict) scan pair.
_PAIR_KEY = operator.itemgetter(0)


def _scan_segments(
    segments: list[tuple],
    reader: ArchiveReader,
    shard: ShardSpec | None,
    alive: int,
) -> list[tuple] | None:
    """Run-wise scan over zero-copy v2 segments; ``None`` -> fallback.

    Each segment is one interned row group scanned in place with local
    indices, so no per-day concatenation or rebasing happens at all —
    and each group's scan outcome is cached on the reader (see
    :data:`_GROUP_OUTCOMES`), so a group that recurs across days is
    scanned once and thereafter costs one dict hit.  Returns
    ``(prefix sort key, conflict)`` pairs, unsorted.
    """
    total_runs = 0
    pids: set[int] = set()
    for segment in segments:
        g_pids = segment[2][1]
        pids.update(g_pids)
        total_runs += len(g_pids)
    if len(pids) != total_runs:
        return None
    outcomes = _GROUP_OUTCOMES.get(reader)
    if outcomes is None:
        outcomes = _GROUP_OUTCOMES[reader] = {}
    pairs: list[tuple] = []
    get_outcome = outcomes.get
    # Mask/registry handles resolve lazily: a steady-state day is all
    # cache hits and never needs them.
    as_set = None
    in_shard = None
    registry = None
    path_of = None
    for segment in segments:
        group_id = segment[0]
        key = group_id if shard is None else (group_id, shard)
        entry = get_outcome(key)
        if entry is not None and alive >= entry[0]:
            pairs.extend(entry[1])
            continue
        g_starts, g_pids, g_single = segment[2]
        if 0 not in g_single:
            # Every run is single-origin: conflict-free at any alive
            # count, since the liveness filter can only remove runs.
            outcomes[key] = (0, ())
            continue
        g_origin = segment[1][2]
        g_path = segment[1][3]
        if as_set is None:
            as_set = reader.as_set_mask()
            in_shard = reader.shard_mask(shard)
            registry = reader.registry
            path_of = reader.path
        num_runs = len(g_pids)
        num_rows = len(g_origin)
        group_pairs: list[tuple] = []
        max_pid = -1
        filtered = False
        for run in range(num_runs):
            pid = g_pids[run]
            if pid > max_pid:
                max_pid = pid
            if g_single[run]:
                continue
            if pid >= alive:
                # This run is invisible today, so the outcome below is
                # partial — usable for this day, not cacheable.
                filtered = True
                continue
            if as_set[pid]:
                continue  # already counted via the cumulative profile
            if in_shard is not None and not in_shard[pid]:
                continue
            start = g_starts[run]
            stop = (
                g_starts[run + 1] if run + 1 < num_runs else num_rows
            )
            origin_paths: dict[int, set[tuple[int, ...]]] = {}
            for index in range(start, stop):
                origin = g_origin[index]
                bucket = origin_paths.get(origin)
                if bucket is None:
                    origin_paths[origin] = bucket = set()
                bucket.add(path_of(g_path[index]))
            prefix = registry[pid].prefix
            group_pairs.append(
                (prefix.sort_key(), _conflict(prefix, origin_paths))
            )
        if not filtered:
            outcomes[key] = (max_pid + 1, tuple(group_pairs))
        pairs.extend(group_pairs)
    return pairs


def _scan_flat(
    columns: DayColumns,
    reader: ArchiveReader,
    shard: ShardSpec | None,
    alive: int,
) -> list[tuple] | None:
    """Run-wise scan over flat columns; ``None`` -> object fallback.

    The materialized-columns twin of :func:`_scan_segments`, used for
    v1 stores and eagerly built :class:`DayColumns`.
    """
    run_pids = columns.run_pids
    num_runs = len(run_pids)
    pairs: list[tuple] = []
    if not num_runs:
        return pairs
    if len(set(run_pids)) != num_runs:
        return None
    if 0 not in columns.run_single:
        return pairs
    as_set = reader.as_set_mask()
    in_shard = reader.shard_mask(shard)
    registry = reader.registry
    path_of = reader.path
    run_starts = columns.run_starts
    run_single = columns.run_single
    run_keys = columns.run_keys
    origins = columns.origins
    path_ids = columns.path_ids
    num_rows = len(origins)
    templates = _CONFLICT_TEMPLATES.get(reader)
    if templates is None:
        templates = _CONFLICT_TEMPLATES[reader] = {}
    for run in range(num_runs):
        if run_single[run]:
            continue
        pid = run_pids[run]
        if pid >= alive:
            continue
        if as_set[pid]:
            continue  # already counted via the cumulative profile
        if in_shard is not None and not in_shard[pid]:
            continue
        key = run_keys[run] if run_keys is not None else -1
        if key >= 0:
            cached = templates.get(key)
            if cached is not None:
                pairs.append(cached)
                continue
        start = run_starts[run]
        stop = run_starts[run + 1] if run + 1 < num_runs else num_rows
        origin_paths: dict[int, set[tuple[int, ...]]] = {}
        for index in range(start, stop):
            origin = origins[index]
            bucket = origin_paths.get(origin)
            if bucket is None:
                origin_paths[origin] = bucket = set()
            bucket.add(path_of(path_ids[index]))
        prefix = registry[pid].prefix
        entry = (prefix.sort_key(), _conflict(prefix, origin_paths))
        if key >= 0:
            templates[key] = entry
        pairs.append(entry)
    return pairs


def merge_detections(parts: list[DayDetection]) -> DayDetection:
    """Recombine per-shard detections of one day into the full scan.

    ``parts`` must come from disjoint shards of the same day; the
    result is identical to detecting the whole table at once (conflicts
    in prefix order, counters summed).
    """
    if not parts:
        raise ValueError("cannot merge zero detections")
    day = parts[0].day
    for part in parts[1:]:
        if part.day != day:
            raise ValueError(
                f"cannot merge detections of {part.day} into {day}"
            )
    conflicts = [
        conflict for part in parts for conflict in part.conflicts
    ]
    conflicts.sort(key=lambda c: c.prefix.sort_key())
    return DayDetection(
        day=day,
        conflicts=tuple(conflicts),
        prefixes_scanned=sum(part.prefixes_scanned for part in parts),
        as_set_excluded=sum(part.as_set_excluded for part in parts),
    )


def _conflict(
    prefix: Prefix, origin_paths: dict[int, set[tuple[int, ...]]]
) -> DailyConflict:
    return DailyConflict(
        prefix=prefix,
        origins=frozenset(origin_paths),
        paths_by_origin=tuple(
            (origin, tuple(sorted(paths)))
            for origin, paths in sorted(origin_paths.items())
        ),
    )
