"""MOAS conflict detection over daily snapshots.

The paper's methodology (Section III): take each day's table, read the
origin AS (last AS of the AS path) of every route for every prefix, and
flag prefixes with more than one distinct origin.  Routes whose paths
end in AS *sets* are excluded (the paper saw ~12 such prefixes and left
them out).

Two input forms are supported: full :class:`~repro.netbase.rib.RibSnapshot`
tables (e.g. parsed from MRT archives) and the sparse CDS day records,
which carry per-peer origins for event-touched prefixes and imply the
registry owner for the rest.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.netbase.prefix import Prefix
from repro.netbase.rib import RibSnapshot
from repro.scenario.archive import ArchiveReader, DayRecord


@dataclass(frozen=True)
class DailyConflict:
    """One prefix observed with multiple origins on one day."""

    prefix: Prefix
    origins: frozenset[int]
    #: origin -> tuple of distinct AS paths ending at that origin
    #: (paths start at the exporting peer).  May be empty when the
    #: input carries no path information.
    paths_by_origin: tuple[tuple[int, tuple[tuple[int, ...], ...]], ...] = ()

    def paths_of(self, origin: int) -> tuple[tuple[int, ...], ...]:
        """Observed paths ending at ``origin`` (empty if none)."""
        for candidate, paths in self.paths_by_origin:
            if candidate == origin:
                return paths
        return ()

    def all_paths(self) -> tuple[tuple[int, ...], ...]:
        """Every observed path across all origins."""
        return tuple(
            path for _origin, paths in self.paths_by_origin for path in paths
        )


@dataclass(frozen=True)
class DayDetection:
    """Detector output for one observed day."""

    day: datetime.date
    conflicts: tuple[DailyConflict, ...]
    prefixes_scanned: int
    as_set_excluded: int

    @property
    def num_conflicts(self) -> int:
        return len(self.conflicts)


def detect_snapshot(snapshot: RibSnapshot) -> DayDetection:
    """Scan a full multi-peer table (the MRT-file path).

    This is the reference implementation of the paper's methodology:
    every route of every prefix is examined.
    """
    conflicts: list[DailyConflict] = []
    as_set_excluded = 0
    scanned = 0
    for prefix, routes in snapshot.iter_prefix_routes():
        scanned += 1
        origin_paths: dict[int, set[tuple[int, ...]]] = {}
        saw_as_set = False
        for route in routes:
            origin = route.path.origin()
            if isinstance(origin, frozenset):
                saw_as_set = True
                continue
            if origin is None:
                continue
            flattened = tuple(route.path.as_list())
            origin_paths.setdefault(origin, set()).add(flattened)
        if saw_as_set and not origin_paths:
            as_set_excluded += 1
            continue
        if len(origin_paths) >= 2:
            conflicts.append(_conflict(prefix, origin_paths))
    return DayDetection(
        day=snapshot.day,
        conflicts=tuple(
            sorted(conflicts, key=lambda c: c.prefix.sort_key())
        ),
        prefixes_scanned=scanned,
        as_set_excluded=as_set_excluded,
    )


def detect_day(record: DayRecord, reader: ArchiveReader) -> DayDetection:
    """Scan one CDS day record.

    Prefixes without rows have a single origin (their registry owner)
    by archive semantics; rows carry each peer's chosen origin for
    event-touched prefixes, so the origin-set test runs on rows grouped
    by prefix.  Registry entries flagged as AS_SET-terminated are
    excluded and counted, mirroring the paper.
    """
    by_prefix: dict[int, dict[int, set[tuple[int, ...]]]] = {}
    for row in record.rows:
        origin_paths = by_prefix.setdefault(row.prefix_id, {})
        origin_paths.setdefault(row.origin, set()).add(
            reader.path(row.path_id)
        )

    conflicts: list[DailyConflict] = []
    as_set_excluded = 0
    for prefix_id in range(record.alive_count):
        entry = reader.registry[prefix_id]
        if entry.as_set_tail:
            as_set_excluded += 1
            continue
        origin_paths = by_prefix.get(prefix_id)
        if origin_paths is None or len(origin_paths) < 2:
            continue
        conflicts.append(_conflict(entry.prefix, origin_paths))
    return DayDetection(
        day=record.day,
        conflicts=tuple(
            sorted(conflicts, key=lambda c: c.prefix.sort_key())
        ),
        prefixes_scanned=record.alive_count,
        as_set_excluded=as_set_excluded,
    )


def _conflict(
    prefix: Prefix, origin_paths: dict[int, set[tuple[int, ...]]]
) -> DailyConflict:
    return DailyConflict(
        prefix=prefix,
        origins=frozenset(origin_paths),
        paths_by_origin=tuple(
            (origin, tuple(sorted(paths)))
            for origin, paths in sorted(origin_paths.items())
        ),
    )
