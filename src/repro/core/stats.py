"""Statistics behind every figure and table of the paper.

Each public function maps to one paper artifact:

- :func:`yearly_medians` — figure 2 (the yearly-median table),
- :func:`duration_histogram` — figure 3,
- :func:`duration_expectations` — figure 4 (conditional means),
- :func:`prefix_length_distribution` — figure 5,
- plus spike/involvement helpers used by the Section VI case studies.
"""

from __future__ import annotations

import datetime
import statistics
from collections import Counter
from collections.abc import Iterable, Mapping, Sequence

from repro.core.detector import DailyConflict
from repro.core.episodes import ConflictEpisode


# ---------------------------------------------------------------------------
# Figure 1 / Figure 2: daily counts and yearly medians
# ---------------------------------------------------------------------------


def daily_count_series(
    detections: Iterable[tuple[datetime.date, int]],
) -> list[tuple[datetime.date, int]]:
    """Normalize and order a (day, conflict-count) series."""
    series = sorted(detections)
    for (day_a, _), (day_b, _) in zip(series, series[1:]):
        if day_a == day_b:
            raise ValueError(f"duplicate day {day_a} in series")
    return series


def yearly_medians(
    series: Sequence[tuple[datetime.date, int]],
) -> dict[int, float]:
    """Median daily conflict count per calendar year (figure 2)."""
    by_year: dict[int, list[int]] = {}
    for day, count in series:
        by_year.setdefault(day.year, []).append(count)
    return {
        year: float(statistics.median(counts))
        for year, counts in sorted(by_year.items())
    }


def yearly_increase_rates(medians: Mapping[int, float]) -> dict[int, float]:
    """Year-over-year growth of the medians, as fractions (figure 2).

    The paper reports 18.7% / 17.3% / 36.1% for 1999-2001.
    """
    rates: dict[int, float] = {}
    years = sorted(medians)
    for previous, current in zip(years, years[1:]):
        if medians[previous] > 0:
            rates[current] = (
                medians[current] - medians[previous]
            ) / medians[previous]
    return rates


def peak_days(
    series: Sequence[tuple[datetime.date, int]], count: int = 2
) -> list[tuple[datetime.date, int]]:
    """The ``count`` highest-count days (the figure-1 spikes)."""
    return sorted(series, key=lambda item: item[1], reverse=True)[:count]


# ---------------------------------------------------------------------------
# Figure 3 / Figure 4: durations
# ---------------------------------------------------------------------------


def duration_histogram(
    episodes: Iterable[ConflictEpisode],
) -> Counter[int]:
    """days-observed -> number of conflicts (figure 3)."""
    return Counter(episode.days_observed for episode in episodes)


def duration_expectations(
    episodes: Iterable[ConflictEpisode],
    thresholds: Sequence[int] = (0, 1, 9, 29, 89),
) -> dict[int, float]:
    """E[duration | duration > k] for each threshold k (figure 4).

    Durations are in observed days; thresholds follow the paper's rows
    ("longer than 0/1/9/29/89 days").  Thresholds with no qualifying
    conflicts are omitted.
    """
    durations = [episode.days_observed for episode in episodes]
    result: dict[int, float] = {}
    for threshold in thresholds:
        qualifying = [d for d in durations if d > threshold]
        if qualifying:
            result[threshold] = sum(qualifying) / len(qualifying)
    return result


def one_time_conflicts(episodes: Iterable[ConflictEpisode]) -> int:
    """Conflicts seen on exactly one snapshot (paper: 13 730)."""
    return sum(1 for episode in episodes if episode.one_time)


def long_lived_conflicts(
    episodes: Iterable[ConflictEpisode], threshold_days: int = 300
) -> int:
    """Conflicts longer than ``threshold_days`` (paper: 1 002 > 300)."""
    return sum(
        1
        for episode in episodes
        if episode.days_observed > threshold_days
    )


def ongoing_conflicts(episodes: Iterable[ConflictEpisode]) -> int:
    """Conflicts still present on the last observed day (paper: 1 326)."""
    return sum(1 for episode in episodes if episode.ongoing)


def max_duration(episodes: Iterable[ConflictEpisode]) -> int:
    """The longest observed duration in days (paper: 1 246 of 1 279)."""
    return max(
        (episode.days_observed for episode in episodes), default=0
    )


# ---------------------------------------------------------------------------
# Figure 5: prefix-length distribution
# ---------------------------------------------------------------------------


def prefix_length_distribution(
    daily_conflicts: Iterable[tuple[datetime.date, Sequence[DailyConflict]]],
) -> dict[int, dict[int, float]]:
    """year -> prefix length -> mean daily conflict count (figure 5).

    Figure 5's y-axis (peaking around 700 for /24) matches the *average
    standing count* per length, not totals — computed here as the mean
    over that year's observed days.
    """
    sums: dict[int, Counter[int]] = {}
    days_per_year: Counter[int] = Counter()
    for day, conflicts in daily_conflicts:
        year = day.year
        days_per_year[year] += 1
        bucket = sums.setdefault(year, Counter())
        for conflict in conflicts:
            bucket[conflict.prefix.length] += 1
    return {
        year: {
            length: bucket[length] / days_per_year[year]
            for length in sorted(bucket)
        }
        for year, bucket in sorted(sums.items())
    }


# ---------------------------------------------------------------------------
# Section VI-E: fault spikes and AS involvement
# ---------------------------------------------------------------------------


def involvement_fraction(
    conflicts: Sequence[DailyConflict], asn: int
) -> tuple[int, int]:
    """(conflicts involving ``asn`` as an origin, total) for one day.

    The paper: AS 8584 was involved in 11 357 of 11 842 conflicts on
    1998-04-07.
    """
    involved = sum(1 for conflict in conflicts if asn in conflict.origins)
    return involved, len(conflicts)


def sequence_involvement_fraction(
    conflicts: Sequence[DailyConflict], upstream: int, origin: int
) -> tuple[int, int]:
    """Conflicts whose paths contain the hop ``upstream -> origin``.

    The paper: the sequence (AS 3561, AS 15412) was involved in 5 532 of
    6 627 conflicts on 2001-04-10.
    """
    involved = 0
    for conflict in conflicts:
        if _contains_sequence(conflict, upstream, origin):
            involved += 1
    return involved, len(conflicts)


def _contains_sequence(
    conflict: DailyConflict, upstream: int, origin: int
) -> bool:
    for path in conflict.all_paths():
        for left, right in zip(path, path[1:]):
            if left == upstream and right == origin:
                return True
    return False


def conflicted_prefixes_by_length(
    episodes: Iterable[ConflictEpisode],
) -> Counter[int]:
    """Total distinct conflicted prefixes per length (whole study)."""
    return Counter(episode.prefix.length for episode in episodes)


def share_of_length(
    distribution: Mapping[int, float], length: int = 24
) -> float:
    """Fraction of conflicts at one prefix length (figure 5's /24 bulk)."""
    total = sum(distribution.values())
    if total == 0:
        return 0.0
    return distribution.get(length, 0.0) / total
