"""Per-episode verdicts: one tagging engine over every analyzer.

The paper's Section VI walks through causes one analysis at a time
(exchange points by address block, private ASNs by number range,
duration as a validity hint, path shape per Section V, sub-prefix
anomalies per VI-E).  Modern systems — GRIP for MOAS, the RPKI conflict
classifiers — run all of those signals at once and emit one *tagged
verdict* per event.  This module is that engine for our substrate:

- :class:`VerdictEngine` streams daily
  :class:`~repro.core.detector.DayDetection` records (shard-filtered
  and mergeable exactly like the study state, so it runs through the
  parallel executor), accumulating per-prefix evidence: duration,
  origin sets, presence gaps, Section V class votes, private-ASN
  sightings;
- :meth:`VerdictEngine.finalize` combines that evidence with the
  archive's prefix registry (for sub-prefix / aggregate shapes and
  owner attribution) into one :class:`Verdict` per prefix: a tag set, a
  predicted incident kind, and a benign..suspicious score.

The predicted kinds use the same vocabulary as the injectable incidents
(:class:`~repro.scenario.incidents.IncidentKind`), which is what lets
:mod:`repro.analysis.evaluation` score any verdict run against injected
ground truth.
"""

from __future__ import annotations

import datetime
from collections import Counter
from dataclasses import dataclass, field

from repro.core.classifier import ConflictClass, classify_conflict
from repro.core.detector import DayDetection
from repro.netbase.asn import is_private_asn
from repro.netbase.prefix import Prefix
from repro.netbase.rpki import RoaTable, ValidationState
from repro.netbase.sharding import ShardSpec
from repro.netbase.trie import PrefixTrie
from repro.topology.ixp import IXP_BLOCK

# -- tags -----------------------------------------------------------------

TAG_IXP = "ixp-prefix"
TAG_PRIVATE_ASN = "private-asn-origin"
TAG_SHORT_LIVED = "short-lived"
TAG_LONG_LIVED = "long-lived"
TAG_WIDE_ORIGIN_SET = "wide-origin-set"
TAG_FLAPPING = "flapping"
TAG_FOREIGN_SUBPREFIX = "foreign-subprefix"
TAG_FOREIGN_AGGREGATE = "foreign-aggregate"
TAG_ORIG_TRAN_AS = "orig-tran-as"
TAG_SPLIT_VIEW = "split-view"
TAG_DISTINCT_PATHS = "distinct-paths"
TAG_RPKI_VALID = "rpki-valid"
TAG_RPKI_INVALID = "rpki-invalid"
TAG_RPKI_NOT_FOUND = "rpki-not-found"

#: Episode RPKI state -> verdict tag (engines built with a ROA table).
_RPKI_TAGS = {
    ValidationState.VALID: TAG_RPKI_VALID,
    ValidationState.INVALID: TAG_RPKI_INVALID,
    ValidationState.NOT_FOUND: TAG_RPKI_NOT_FOUND,
}

#: Predicted kind for prefixes no incident heuristic fires on.
KIND_ORGANIC = "organic"

_CLASS_TAGS = {
    ConflictClass.ORIG_TRAN_AS: TAG_ORIG_TRAN_AS,
    ConflictClass.SPLIT_VIEW: TAG_SPLIT_VIEW,
    ConflictClass.DISTINCT_PATHS: TAG_DISTINCT_PATHS,
}

#: tag -> suspicion shift; the base is 0.5 ("no idea"), positive pushes
#: toward malicious, negative toward benign.  Magnitudes follow the
#: paper's confidence ordering: address-block and registry shapes are
#: near-certain, duration is the confessedly weak signal.
_SUSPICION_SHIFTS: dict[str, float] = {
    TAG_IXP: -0.35,
    TAG_LONG_LIVED: -0.20,
    TAG_WIDE_ORIGIN_SET: -0.15,
    TAG_ORIG_TRAN_AS: -0.15,
    TAG_PRIVATE_ASN: -0.10,  # ASE leakage: sloppy but operational (VI-C)
    TAG_SHORT_LIVED: 0.25,
    TAG_FLAPPING: 0.20,
    TAG_FOREIGN_SUBPREFIX: 0.40,
    TAG_FOREIGN_AGGREGATE: 0.40,
    # RFC 6811 states: a signed authorization is near-registry-grade
    # evidence either way; not-found says nothing (no shift).
    TAG_RPKI_VALID: -0.25,
    TAG_RPKI_INVALID: 0.35,
}


@dataclass(frozen=True, slots=True)
class VerdictConfig:
    """Thresholds for the tagging heuristics."""

    #: VI-F duration heuristic: conflicts this short lean *invalid*.
    short_days: int = 9
    #: Conflicts at least this long lean valid (standing policy).
    long_days: int = 30
    #: Simultaneous origins for the anycast shape (paper VI-D).
    anycast_min_origins: int = 4
    #: Share of the study an anycast-like conflict must span.
    anycast_min_share: float = 0.35
    #: Absence fraction (within the episode's own span) for "flapping".
    flapping_min_gap: float = 0.4
    flapping_min_days: int = 3

    def to_dict(self) -> dict:
        """JSON-serializable form (recorded in evaluation reports)."""
        return {
            "short_days": self.short_days,
            "long_days": self.long_days,
            "anycast_min_origins": self.anycast_min_origins,
            "anycast_min_share": self.anycast_min_share,
            "flapping_min_gap": self.flapping_min_gap,
            "flapping_min_days": self.flapping_min_days,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "VerdictConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        return cls(
            short_days=payload["short_days"],
            long_days=payload["long_days"],
            anycast_min_origins=payload["anycast_min_origins"],
            anycast_min_share=payload["anycast_min_share"],
            flapping_min_gap=payload["flapping_min_gap"],
            flapping_min_days=payload["flapping_min_days"],
        )


@dataclass(frozen=True, slots=True)
class Verdict:
    """One prefix's unified assessment: tags, kind, suspicion."""

    prefix: Prefix
    kind: str  # an IncidentKind value, or "organic"
    tags: frozenset[str]
    #: 0.0 (certainly benign) .. 1.0 (certainly malicious).
    suspicion: float
    days_observed: int
    origins: frozenset[int]
    #: Origins that are not the registered owner (empty without a
    #: registry, or when every origin is the owner's).
    perpetrators: frozenset[int] = frozenset()
    #: Episode-level RFC 6811 rollup (``"valid"`` / ``"invalid"`` /
    #: ``"not_found"``), or ``None`` when the engine ran without a ROA
    #: table.  One invalid origin-day taints the episode; a valid
    #: observation beats mere non-coverage.
    rpki_state: str | None = None

    @property
    def benign(self) -> bool:
        return self.suspicion < 0.5

    def to_dict(self) -> dict:
        """JSON-serializable form (the serve API's ``/v1/verdicts`` rows).

        Origin sets serialize as sorted lists and ``rpki_state``
        appears only when the engine ran with a ROA table, so equal
        verdicts always produce equal documents.
        """
        payload = {
            "prefix": str(self.prefix),
            "kind": self.kind,
            "tags": sorted(self.tags),
            "suspicion": self.suspicion,
            "benign": self.benign,
            "days_observed": self.days_observed,
            "origins": sorted(self.origins),
            "perpetrators": sorted(self.perpetrators),
        }
        if self.rpki_state is not None:
            payload["rpki_state"] = self.rpki_state
        return payload


@dataclass(slots=True)
class _Evidence:
    """Streaming per-prefix accumulator (one conflicted prefix)."""

    first_ordinal: int
    last_ordinal: int
    days: int = 0
    origins: set[int] = field(default_factory=set)
    max_width: int = 0
    class_votes: Counter = field(default_factory=Counter)
    private_asn: bool = False
    first_day: datetime.date | None = None
    last_day: datetime.date | None = None
    rpki_state: ValidationState | None = None


class VerdictEngine:
    """Streaming evidence accumulation toward per-prefix verdicts.

    Mirrors the :class:`~repro.analysis.pipeline.StudyState` contract:
    feed every day's full detection in order; with ``shard`` only
    conflicts inside the shard accumulate evidence, and disjoint-shard
    engines recombine with :meth:`merge` into exactly the serial
    engine.  Verdicts come from :meth:`finalize`, and
    :meth:`state_dict` / :meth:`from_state` round-trip the streaming
    evidence so checkpointed sessions can resume mid-study.
    """

    __slots__ = ("config", "shard", "roa_table", "_evidence", "_total_days")

    def __init__(
        self,
        config: VerdictConfig | None = None,
        *,
        shard: ShardSpec | None = None,
        roa_table: RoaTable | None = None,
    ) -> None:
        self.config = config or VerdictConfig()
        self.shard = shard
        #: Immutable ROA database every origin-day is validated against
        #: (see :mod:`repro.netbase.rpki`); ``None`` disables the RPKI
        #: signal entirely.
        self.roa_table = roa_table
        self._evidence: dict[Prefix, _Evidence] = {}
        self._total_days = 0

    @property
    def total_days(self) -> int:
        """Observed days fed so far."""
        return self._total_days

    def __len__(self) -> int:
        return len(self._evidence)

    # -- streaming ----------------------------------------------------------

    def feed_day(self, detection: DayDetection) -> None:
        """Fold one day's detection into the evidence tables."""
        self._total_days += 1
        ordinal = self._total_days
        contains = self.shard.contains if self.shard is not None else None
        roa_table = self.roa_table
        for conflict in detection.conflicts:
            prefix = conflict.prefix
            if contains is not None and not contains(prefix):
                continue
            evidence = self._evidence.get(prefix)
            if evidence is None:
                evidence = self._evidence[prefix] = _Evidence(
                    first_ordinal=ordinal,
                    last_ordinal=ordinal,
                    first_day=detection.day,
                )
            evidence.last_ordinal = ordinal
            evidence.last_day = detection.day
            evidence.days += 1
            evidence.origins.update(conflict.origins)
            if roa_table is not None:
                evidence.rpki_state = roa_table.fold_episode_state(
                    evidence.rpki_state,
                    prefix,
                    conflict.origins,
                    day=detection.day,
                )
            evidence.max_width = max(
                evidence.max_width, len(conflict.origins)
            )
            if not evidence.private_asn:
                evidence.private_asn = any(
                    is_private_asn(origin) for origin in conflict.origins
                )
            # Section V class vote for the day; conflicts without path
            # information simply contribute no vote.
            try:
                evidence.class_votes[classify_conflict(conflict)] += 1
            except ValueError:
                pass

    # -- shard recombination -------------------------------------------------

    def merge(self, other: "VerdictEngine") -> "VerdictEngine":
        """Combine two engines fed the same days over disjoint shards."""
        if self.config != other.config:
            raise ValueError(
                "cannot merge verdict engines with different configs"
            )
        if self.roa_table != other.roa_table:
            raise ValueError(
                "cannot merge verdict engines validated against "
                "different ROA tables"
            )
        if self._total_days != other._total_days:
            raise ValueError(
                "cannot merge verdict engines fed different day streams: "
                f"{self._total_days} vs {other._total_days} days"
            )
        overlap = set(self._evidence) & set(other._evidence)
        if overlap:
            raise ValueError(
                "cannot merge verdict engines with overlapping prefixes: "
                + ", ".join(
                    str(prefix) for prefix in sorted(
                        overlap, key=lambda p: p.sort_key()
                    )[:5]
                )
            )
        shard = None
        if self.shard is not None and other.shard is not None:
            shard = self.shard.union(other.shard)
        merged = VerdictEngine(
            self.config, shard=shard, roa_table=self.roa_table
        )
        merged._total_days = self._total_days
        merged._evidence = {**self._evidence, **other._evidence}
        return merged

    @classmethod
    def merged(cls, engines: list["VerdictEngine"]) -> "VerdictEngine":
        """Fold disjoint shard engines into one (single engine passes)."""
        if not engines:
            raise ValueError("cannot merge zero verdict engines")
        combined = engines[0]
        for engine in engines[1:]:
            combined = combined.merge(engine)
        return combined

    # -- checkpointing --------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the streaming evidence.

        Prefixes serialize as ``[network, length]`` integer pairs and
        class votes by their :class:`ConflictClass` value, so the
        payload survives a JSON round trip exactly and equal engines
        always produce equal documents.
        """
        return {
            "config": self.config.to_dict(),
            "shard": (
                self.shard.to_dict() if self.shard is not None else None
            ),
            "total_days": self._total_days,
            "roas": (
                [roa.to_dict() for roa in self.roa_table]
                if self.roa_table is not None
                else None
            ),
            "evidence": [
                [
                    prefix.network,
                    prefix.length,
                    {
                        "first_ordinal": evidence.first_ordinal,
                        "last_ordinal": evidence.last_ordinal,
                        "days": evidence.days,
                        "origins": sorted(evidence.origins),
                        "max_width": evidence.max_width,
                        "class_votes": {
                            conflict_class.value: votes
                            for conflict_class, votes in sorted(
                                evidence.class_votes.items(),
                                key=lambda item: item[0].value,
                            )
                        },
                        "private_asn": evidence.private_asn,
                        "first_day": (
                            evidence.first_day.isoformat()
                            if evidence.first_day is not None
                            else None
                        ),
                        "last_day": (
                            evidence.last_day.isoformat()
                            if evidence.last_day is not None
                            else None
                        ),
                        "rpki_state": (
                            evidence.rpki_state.value
                            if evidence.rpki_state is not None
                            else None
                        ),
                    },
                ]
                for prefix, evidence in self._evidence.items()
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "VerdictEngine":
        """Rebuild an engine from a :meth:`state_dict` payload."""
        shard_payload = state["shard"]
        roa_payload = state["roas"]
        engine = cls(
            VerdictConfig.from_dict(state["config"]),
            shard=(
                ShardSpec.from_dict(shard_payload)
                if shard_payload is not None
                else None
            ),
            roa_table=(
                RoaTable.from_rows(roa_payload)
                if roa_payload is not None
                else None
            ),
        )
        engine._total_days = state["total_days"]
        for network, length, payload in state["evidence"]:
            prefix = Prefix(network, length, strict=False)
            first_day = payload["first_day"]
            last_day = payload["last_day"]
            rpki_state = payload["rpki_state"]
            engine._evidence[prefix] = _Evidence(
                first_ordinal=payload["first_ordinal"],
                last_ordinal=payload["last_ordinal"],
                days=payload["days"],
                origins=set(payload["origins"]),
                max_width=payload["max_width"],
                class_votes=Counter(
                    {
                        ConflictClass(value): votes
                        for value, votes in payload["class_votes"].items()
                    }
                ),
                private_asn=payload["private_asn"],
                first_day=(
                    datetime.date.fromisoformat(first_day)
                    if first_day is not None
                    else None
                ),
                last_day=(
                    datetime.date.fromisoformat(last_day)
                    if last_day is not None
                    else None
                ),
                rpki_state=(
                    ValidationState(rpki_state)
                    if rpki_state is not None
                    else None
                ),
            )
        return engine

    # -- verdicts -------------------------------------------------------------

    def finalize(self, registry=None) -> dict[Prefix, Verdict]:
        """One verdict per evidenced prefix (plus registry-only shapes).

        ``registry`` is an optional sequence of archive
        :class:`~repro.scenario.archive.RegistryEntry` rows.  With it,
        sub-prefix hijack and faulty-aggregation shapes are detected
        from announced-space structure — including prefixes that never
        produced a same-prefix MOAS conflict at all — and perpetrators
        are attributed as "origins that are not the registered owner".
        """
        owners: dict[Prefix, int] = {}
        structural: dict[Prefix, str] = {}
        if registry is not None:
            structural = _structural_tags(registry)
            owners = {
                entry.prefix: entry.owner
                for entry in registry
            }
        verdicts: dict[Prefix, Verdict] = {}
        for prefix, evidence in self._evidence.items():
            tags = self._episode_tags(prefix, evidence)
            tag = structural.get(prefix)
            if tag is not None:
                tags.add(tag)
            verdicts[prefix] = self._verdict(
                prefix,
                tags,
                days=evidence.days,
                origins=frozenset(evidence.origins),
                owner=owners.get(prefix),
                rpki_state=evidence.rpki_state,
            )
        # Registry-only shapes: announced-space anomalies that never
        # conflicted (the AS7007 signature same-prefix MOAS cannot see).
        for prefix, tag in structural.items():
            if prefix in verdicts:
                continue
            owner = owners.get(prefix)
            rpki_state = None
            if self.roa_table is not None and owner is not None:
                # No conflict days to validate: judge the announcer's
                # registration itself against the whole database.
                rpki_state = self.roa_table.validate(prefix, owner)
            verdicts[prefix] = self._verdict(
                prefix,
                {tag},
                days=0,
                origins=frozenset(() if owner is None else (owner,)),
                owner=None,  # the announcer *is* the suspect
                rpki_state=rpki_state,
            )
        return verdicts

    # -- internals ------------------------------------------------------------

    def _episode_tags(self, prefix: Prefix, evidence: _Evidence) -> set[str]:
        config = self.config
        tags: set[str] = set()
        if IXP_BLOCK.contains(prefix):
            tags.add(TAG_IXP)
        if evidence.private_asn:
            tags.add(TAG_PRIVATE_ASN)
        if evidence.days <= config.short_days:
            tags.add(TAG_SHORT_LIVED)
        if evidence.days >= config.long_days:
            tags.add(TAG_LONG_LIVED)
        if evidence.max_width >= config.anycast_min_origins:
            tags.add(TAG_WIDE_ORIGIN_SET)
        span = evidence.last_ordinal - evidence.first_ordinal + 1
        gap = 1.0 - evidence.days / span
        if (
            gap >= config.flapping_min_gap
            and evidence.days >= config.flapping_min_days
            and TAG_IXP not in tags
        ):
            tags.add(TAG_FLAPPING)
        if evidence.class_votes:
            winner, _votes = max(
                evidence.class_votes.items(),
                key=lambda item: (item[1], item[0].value),
            )
            tags.add(_CLASS_TAGS[winner])
        return tags

    def _verdict(
        self,
        prefix: Prefix,
        tags: set[str],
        *,
        days: int,
        origins: frozenset[int],
        owner: int | None,
        rpki_state: ValidationState | None = None,
    ) -> Verdict:
        config = self.config
        if rpki_state is not None:
            tags.add(_RPKI_TAGS[rpki_state])
        kind = KIND_ORGANIC
        wide_and_standing = (
            TAG_WIDE_ORIGIN_SET in tags
            and self._total_days > 0
            and days >= config.anycast_min_share * self._total_days
        )
        if TAG_IXP in tags:
            kind = "ixp_conflict"
        elif TAG_FOREIGN_SUBPREFIX in tags:
            kind = "subprefix_hijack"
        elif TAG_FOREIGN_AGGREGATE in tags:
            kind = "faulty_aggregation"
        elif TAG_PRIVATE_ASN in tags:
            kind = "private_leak"
        elif wide_and_standing:
            kind = "anycast"
        elif TAG_FLAPPING in tags and days < config.long_days:
            kind = "flapping_fault"
        elif TAG_SHORT_LIVED in tags:
            kind = "exact_hijack"
        elif TAG_RPKI_INVALID in tags and TAG_LONG_LIVED not in tags:
            # An unauthorized origin with no other explanation: the
            # RPKI extends the hijack call past the duration heuristic.
            kind = "exact_hijack"
        suspicion = 0.5 + sum(
            _SUSPICION_SHIFTS.get(tag, 0.0) for tag in tags
        )
        if wide_and_standing:
            suspicion -= 0.15
        suspicion = min(1.0, max(0.0, suspicion))
        perpetrators: frozenset[int] = frozenset()
        if owner is not None:
            perpetrators = frozenset(
                origin for origin in origins if origin != owner
            )
        elif TAG_FOREIGN_SUBPREFIX in tags or TAG_FOREIGN_AGGREGATE in tags:
            perpetrators = origins
        return Verdict(
            prefix=prefix,
            kind=kind,
            tags=frozenset(tags),
            suspicion=round(suspicion, 4),
            days_observed=days,
            origins=origins,
            perpetrators=perpetrators,
            rpki_state=(
                rpki_state.value if rpki_state is not None else None
            ),
        )


def _structural_tags(registry) -> dict[Prefix, str]:
    """Announced-space anomaly tags from the prefix registry.

    For every prefix registered *during* the study (``created_day > 0``)
    whose closest covering registration belongs to a different owner:
    the younger side of the pair is the anomaly.  A new more-specific
    under an old foreign cover is the AS7007 de-aggregation shape; a new
    cover over old foreign more-specifics is faulty aggregation.
    AS_SET-flagged aggregates (excluded by the paper's methodology) and
    exchange-point fabric registrations are skipped.
    """
    trie: PrefixTrie = PrefixTrie()
    entries = [
        entry
        for entry in registry
        if not entry.as_set_tail and not entry.exchange_point
    ]
    for entry in entries:
        trie[entry.prefix] = entry
    tags: dict[Prefix, str] = {}
    for entry in entries:
        if entry.prefix.length == 0:
            continue
        cover = None
        for candidate in trie.covering(entry.prefix):
            if candidate[0] != entry.prefix:
                cover = candidate[1]  # keep the most specific cover
        if cover is None or cover.owner == entry.owner:
            continue
        if entry.created_day > cover.created_day:
            tags[entry.prefix] = TAG_FOREIGN_SUBPREFIX
        elif cover.created_day > entry.created_day:
            tags.setdefault(cover.prefix, TAG_FOREIGN_AGGREGATE)
    return tags
