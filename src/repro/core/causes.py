"""Cause attribution: the Section VI analysis.

From the archive alone (no generator ground truth) the paper could
identify exchange-point prefixes by address block, leaked private ASNs
by number range, fault events by their spike signature, and could use
duration as a (confessedly imperfect) valid/invalid heuristic.  Each of
those analyses is implemented here; benches compare their output to the
generator's ground truth.
"""

from __future__ import annotations

import datetime
import statistics
from collections import Counter
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.core.detector import DailyConflict
from repro.core.episodes import ConflictEpisode
from repro.netbase.asn import is_private_asn
from repro.netbase.prefix import Prefix
from repro.topology.ixp import IXP_BLOCK


def exchange_point_episodes(
    episodes: Mapping[Prefix, ConflictEpisode],
) -> list[ConflictEpisode]:
    """Episodes on prefixes inside the exchange-point address block.

    The paper definitively identified 30 such prefixes out of 38 225
    conflicts, all of them conflicted for most or all of the study.
    """
    return sorted(
        (
            episode
            for prefix, episode in episodes.items()
            if IXP_BLOCK.contains(prefix)
        ),
        key=lambda episode: episode.prefix.sort_key(),
    )


def private_asn_episodes(
    episodes: Mapping[Prefix, ConflictEpisode],
) -> list[ConflictEpisode]:
    """Episodes where a private ASN appeared in origin position.

    Under correct ASE operation the private ASN is stripped; seeing one
    means an upstream leaked it (Section VI-C).
    """
    return sorted(
        (
            episode
            for episode in episodes.values()
            if any(is_private_asn(origin) for origin in episode.origins_ever)
        ),
        key=lambda episode: episode.prefix.sort_key(),
    )


def anycast_like_episodes(
    episodes: Mapping[Prefix, ConflictEpisode],
    *,
    min_origins: int = 4,
    min_share_of_study: float = 0.5,
) -> list[ConflictEpisode]:
    """Candidate anycast prefixes (paper Section VI-D).

    Anycast would appear as a *stable, wide* MOAS conflict: many
    simultaneous origins for a long time, outside the exchange-point
    block.  The paper identified **no** anycast prefixes in its data,
    and the reproduction generates none — this detector exists so that
    claim is checkable rather than assumed (the pipeline benchmark
    asserts it returns an empty list).
    """
    total_days = max(
        (episode.days_observed for episode in episodes.values()), default=0
    )
    if total_days == 0:
        return []
    return sorted(
        (
            episode
            for prefix, episode in episodes.items()
            if not IXP_BLOCK.contains(prefix)
            and episode.max_origins_single_day >= min_origins
            and episode.days_observed
            >= min_share_of_study * total_days
        ),
        key=lambda episode: episode.prefix.sort_key(),
    )


# ---------------------------------------------------------------------------
# Fault-spike detection
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SpikeReport:
    """One detected fault day and its dominant culprit."""

    day: datetime.date
    total_conflicts: int
    baseline_median: float
    culprit_asn: int
    culprit_involved: int

    @property
    def involvement(self) -> float:
        return (
            self.culprit_involved / self.total_conflicts
            if self.total_conflicts
            else 0.0
        )


def detect_spikes(
    daily: Sequence[tuple[datetime.date, Sequence[DailyConflict]]],
    *,
    window: int = 30,
    factor: float = 4.0,
) -> list[SpikeReport]:
    """Find days whose conflict count explodes over the local baseline.

    A day is a spike when its count exceeds ``factor`` times the median
    of the preceding ``window`` observed days.  For each spike the
    origin AS involved in the most conflicts is reported — the
    signature that identified AS 8584 and AS 15412 in the paper.
    """
    reports: list[SpikeReport] = []
    counts = [len(conflicts) for _day, conflicts in daily]
    for index, (day, conflicts) in enumerate(daily):
        if index == 0:
            continue
        start = max(0, index - window)
        baseline = statistics.median(counts[start:index])
        if baseline <= 0 or counts[index] < factor * baseline:
            continue
        involvement: Counter[int] = Counter()
        for conflict in conflicts:
            for origin in conflict.origins:
                involvement[origin] += 1
        culprit, involved = involvement.most_common(1)[0]
        reports.append(
            SpikeReport(
                day=day,
                total_conflicts=counts[index],
                baseline_median=float(baseline),
                culprit_asn=culprit,
                culprit_involved=involved,
            )
        )
    return reports


# ---------------------------------------------------------------------------
# Section VI-F: duration as a validity heuristic
# ---------------------------------------------------------------------------


def duration_heuristic(
    episode: ConflictEpisode, *, threshold_days: int = 9
) -> bool:
    """Predict whether a conflict is *valid* (policy, not fault).

    The paper's observation: faults are short, policies are long — but
    "such differentiation can not be accurate enough to be a solution".
    Returns True (predicted valid) when the conflict outlived the
    threshold.
    """
    return episode.days_observed > threshold_days


@dataclass(frozen=True, slots=True)
class HeuristicScore:
    """Confusion counts of the duration heuristic at one threshold."""

    threshold_days: int
    true_valid: int
    false_valid: int
    true_invalid: int
    false_invalid: int

    @property
    def precision(self) -> float:
        predicted = self.true_valid + self.false_valid
        return self.true_valid / predicted if predicted else 0.0

    @property
    def recall(self) -> float:
        actual = self.true_valid + self.false_invalid
        return self.true_valid / actual if actual else 0.0

    @property
    def accuracy(self) -> float:
        total = (
            self.true_valid
            + self.false_valid
            + self.true_invalid
            + self.false_invalid
        )
        correct = self.true_valid + self.true_invalid
        return correct / total if total else 0.0


def score_duration_heuristic(
    episodes: Iterable[ConflictEpisode],
    truth: Mapping[Prefix, bool],
    *,
    threshold_days: int,
) -> HeuristicScore:
    """Score the heuristic against ground-truth validity labels.

    ``truth`` maps prefix -> True when the conflict had a valid cause.
    Episodes without a label are skipped (e.g. prefixes conflicted by
    both a valid and an invalid cause are ambiguous and excluded by the
    benchmark harness before calling this).
    """
    true_valid = false_valid = true_invalid = false_invalid = 0
    for episode in episodes:
        label = truth.get(episode.prefix)
        if label is None:
            continue
        predicted_valid = duration_heuristic(
            episode, threshold_days=threshold_days
        )
        if predicted_valid and label:
            true_valid += 1
        elif predicted_valid and not label:
            false_valid += 1
        elif not predicted_valid and not label:
            true_invalid += 1
        else:
            false_invalid += 1
    return HeuristicScore(
        threshold_days=threshold_days,
        true_valid=true_valid,
        false_valid=false_valid,
        true_invalid=true_invalid,
        false_invalid=false_invalid,
    )
