"""The Section V conflict taxonomy: OrigTranAS / SplitView / DistinctPaths.

Given two AS paths for the same prefix ending in different origins:

- **OrigTranAS** — the origin of one path appears as a *transit* hop in
  the other: a single AS announces itself both as origin and as transit
  for the prefix.
- **SplitView** — the paths share some transit AS but neither origin
  transits in the other: the shared AS offers different routes (ending
  at different origins) to different neighbors.
- **DistinctPaths** — the paths share no AS at all: two completely
  disjoint routes to the same prefix (the dominant class in the paper).

A conflict with more than two visible paths is classified by examining
one representative path per origin and taking the most structurally
specific relationship found (OrigTranAS ≻ SplitView ≻ DistinctPaths).
"""

from __future__ import annotations

import enum
import weakref
from collections import Counter
from collections.abc import Sequence

from repro.core.detector import DailyConflict


class ConflictClass(enum.Enum):
    """The paper's three conflict classes."""

    ORIG_TRAN_AS = "OrigTranAS"
    SPLIT_VIEW = "SplitView"
    DISTINCT_PATHS = "DistinctPaths"


#: Specificity order used to aggregate pairwise results.
_PRECEDENCE = (
    ConflictClass.ORIG_TRAN_AS,
    ConflictClass.SPLIT_VIEW,
    ConflictClass.DISTINCT_PATHS,
)


def classify_pair(
    path_a: Sequence[int], path_b: Sequence[int]
) -> ConflictClass:
    """Classify one pair of AS paths with different origins.

    Raises :class:`ValueError` when the paths share their origin —
    that pair is not a MOAS conflict and classifying it would hide a
    caller bug.
    """
    if not path_a or not path_b:
        raise ValueError("cannot classify an empty AS path")
    origin_a = path_a[-1]
    origin_b = path_b[-1]
    if origin_a == origin_b:
        raise ValueError(
            f"paths share origin AS {origin_a}; not a MOAS pair"
        )
    if origin_a in path_b[:-1] or origin_b in path_a[:-1]:
        return ConflictClass.ORIG_TRAN_AS
    if set(path_a[:-1]) & set(path_b[:-1]):
        return ConflictClass.SPLIT_VIEW
    return ConflictClass.DISTINCT_PATHS


def representative_path(
    paths: Sequence[Sequence[int]],
) -> tuple[int, ...]:
    """The representative among one origin's observed paths.

    The most frequently observed path wins; ties break to the shortest,
    then lexicographically smallest, so classification is deterministic
    across runs.
    """
    if not paths:
        raise ValueError("no paths to choose a representative from")
    counts = Counter(tuple(path) for path in paths)
    return min(
        counts,
        key=lambda path: (-counts[path], len(path), path),
    )


def classify_conflict(conflict: DailyConflict) -> ConflictClass:
    """Classify a multi-origin prefix observation.

    One representative path per origin is chosen, every origin pair is
    classified, and the most specific class found is returned.
    Conflicts without path information cannot be classified and raise
    :class:`ValueError`.
    """
    representatives = [
        representative_path(paths)
        for _origin, paths in conflict.paths_by_origin
        if paths
    ]
    if len(representatives) < 2:
        raise ValueError(
            f"conflict on {conflict.prefix} lacks paths for two origins"
        )
    found: set[ConflictClass] = set()
    for index, path_a in enumerate(representatives):
        for path_b in representatives[index + 1 :]:
            if path_a[-1] == path_b[-1]:
                continue
            found.add(classify_pair(path_a, path_b))
    for conflict_class in _PRECEDENCE:
        if conflict_class in found:
            return conflict_class
    raise ValueError(
        f"no classifiable origin pairs for {conflict.prefix}"
    )


#: id(conflict) -> (weakref to it, its class).  DailyConflict is frozen
#: and classification is a pure function of it, so when the columnar
#: detector hands back the same cached object day after day its class
#: is looked up, not recomputed.  The weakref guards against id reuse
#: (the referent must still *be* the conflict) and its callback evicts
#: the entry when the conflict dies, so nothing is pinned.
_CLASS_MEMO: dict[int, tuple] = {}


def classify_day(
    conflicts: Sequence[DailyConflict],
) -> dict[ConflictClass, int]:
    """Per-class conflict counts for one day (the figure-6 series)."""
    memo = _CLASS_MEMO
    counts = {conflict_class: 0 for conflict_class in ConflictClass}
    for conflict in conflicts:
        key = id(conflict)
        entry = memo.get(key)
        if entry is not None and entry[0]() is conflict:
            conflict_class = entry[1]
        else:
            conflict_class = classify_conflict(conflict)
            memo[key] = (
                weakref.ref(
                    conflict,
                    lambda _ref, _memo=memo, _key=key: _memo.pop(_key, None),
                ),
                conflict_class,
            )
        counts[conflict_class] += 1
    return counts
