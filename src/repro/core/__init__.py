"""The paper's contribution: MOAS conflict detection and analysis.

- :mod:`repro.core.detector` — find multi-origin prefixes in a daily
  snapshot (excluding AS_SET-terminated routes, as the paper did);
- :mod:`repro.core.classifier` — the Section V taxonomy: OrigTranAS,
  SplitView, DistinctPaths;
- :mod:`repro.core.episodes` — merge daily observations into per-prefix
  conflict records with the paper's duration accounting;
- :mod:`repro.core.stats` — figure/table statistics (daily series,
  yearly medians, duration expectations, prefix-length distributions);
- :mod:`repro.core.causes` — cause attribution heuristics (exchange
  points, private ASNs, fault spikes, the duration heuristic of VI-F);
- :mod:`repro.core.realtime` — a streaming MOAS alerter (extension; the
  direction the paper's Section VII points at);
- :mod:`repro.core.verdict` — the unified tagging engine: every
  analyzer's signal folded into one per-episode :class:`Verdict`
  (tags, predicted incident kind, benign..suspicious score).
"""

from repro.core.classifier import ConflictClass, classify_conflict, classify_pair
from repro.core.detector import (
    DailyConflict,
    columnar_scan_enabled,
    detect_day,
    detect_day_columns,
    detect_snapshot,
)
from repro.core.episodes import ConflictEpisode, EpisodeTracker
from repro.core.realtime import (
    AlertKind,
    DaySnapshotAlerter,
    MoasAlert,
    StreamingMoasDetector,
)
from repro.core.stats import (
    duration_expectations,
    duration_histogram,
    prefix_length_distribution,
    yearly_medians,
)
from repro.core.validator import ConflictValidator, ValidatorConfig
from repro.core.verdict import Verdict, VerdictConfig, VerdictEngine

__all__ = [
    "ConflictClass",
    "classify_conflict",
    "classify_pair",
    "DailyConflict",
    "columnar_scan_enabled",
    "detect_day",
    "detect_day_columns",
    "detect_snapshot",
    "ConflictEpisode",
    "EpisodeTracker",
    "duration_expectations",
    "duration_histogram",
    "prefix_length_distribution",
    "yearly_medians",
    "AlertKind",
    "DaySnapshotAlerter",
    "MoasAlert",
    "StreamingMoasDetector",
    "ConflictValidator",
    "ValidatorConfig",
    "Verdict",
    "VerdictConfig",
    "VerdictEngine",
]
