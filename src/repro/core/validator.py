"""Multi-signal MOAS conflict validation — the paper's future work.

Section VII: "Based on this MOAS data alone, we can not accurately
differentiate a fault from a valid policy change, but we can utilize
the MOAS analysis results as a valuable input ... we are investigating
techniques for identifying invalid conflicts with a high degree of
certainty."

This module implements that investigation over our substrate: a
transparent, rule-based validator that combines every signal the paper
identifies instead of duration alone —

- **duration** (VI-F): long conflicts lean valid;
- **exchange-point address space** (VI-A): fabric prefixes are valid;
- **private-ASN origins** (VI-C): ASE leakage, operationally valid;
- **spike-day mass origination** (VI-E): conflicts born inside a
  detected fault spike involving the spike's culprit lean invalid;
- **origin relationship** (V, VI-B): provider-customer origin pairs
  (visible as OrigTranAS-shaped paths) indicate multihoming, valid;
- **recurrence**: conflicts that keep coming back across the study are
  standing policy, valid.

The benchmark ``bench_validator.py`` scores this against ground truth
and against the duration-only heuristic; the design goal is exactly the
paper's: materially higher certainty than duration alone.
"""

from __future__ import annotations

import datetime
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.core.causes import SpikeReport
from repro.core.detector import DailyConflict
from repro.core.episodes import ConflictEpisode
from repro.netbase.asn import is_private_asn
from repro.topology.ixp import IXP_BLOCK


@dataclass(frozen=True, slots=True)
class Verdict:
    """One conflict's validity assessment."""

    valid: bool
    confidence: float  # 0.5 (coin flip) .. 1.0 (certain)
    reasons: tuple[str, ...]


@dataclass(slots=True)
class ValidatorConfig:
    """Scoring weights; positive pushes toward *valid*."""

    duration_long_days: int = 30
    duration_short_days: int = 3
    weight_exchange_point: float = 3.0
    weight_private_asn: float = 2.0
    weight_long_duration: float = 1.5
    weight_short_duration: float = -1.0
    weight_spike_member: float = -3.0
    weight_origin_adjacency: float = 1.5
    weight_recurrent: float = 1.0


@dataclass(slots=True)
class ConflictValidator:
    """Combines the paper's Section VI signals into a verdict."""

    config: ValidatorConfig = field(default_factory=ValidatorConfig)
    #: Day -> culprit ASN for detected fault spikes (from the pipeline's
    #: case studies); conflicts involving the culprit on those days are
    #: almost certainly mass-origination victims.
    spike_culprits: dict[datetime.date, int] = field(default_factory=dict)

    @classmethod
    def from_case_studies(
        cls,
        case_studies: Iterable,
        config: ValidatorConfig | None = None,
    ) -> "ConflictValidator":
        """Build from pipeline case studies (see StudyResults)."""
        culprits: dict[datetime.date, int] = {}
        for case in case_studies:
            report: SpikeReport = case.report
            culprits[report.day] = report.culprit_asn
        return cls(config=config or ValidatorConfig(), spike_culprits=culprits)

    # -- signals ---------------------------------------------------------

    def _signals(
        self,
        episode: ConflictEpisode,
        observations: Mapping[datetime.date, DailyConflict] | None,
    ) -> list[tuple[str, float]]:
        config = self.config
        signals: list[tuple[str, float]] = []

        if IXP_BLOCK.contains(episode.prefix):
            signals.append(
                ("exchange-point prefix", config.weight_exchange_point)
            )

        if any(is_private_asn(origin) for origin in episode.origins_ever):
            signals.append(
                ("private ASN in origin set", config.weight_private_asn)
            )

        if episode.days_observed >= config.duration_long_days:
            signals.append(
                (
                    f"duration {episode.days_observed}d >= "
                    f"{config.duration_long_days}d",
                    config.weight_long_duration,
                )
            )
        elif episode.days_observed <= config.duration_short_days:
            signals.append(
                (
                    f"duration {episode.days_observed}d <= "
                    f"{config.duration_short_days}d",
                    config.weight_short_duration,
                )
            )

        spike_hits = 0
        for day, culprit in self.spike_culprits.items():
            if (
                episode.first_day <= day <= episode.last_day
                and culprit in episode.origins_ever
            ):
                spike_hits += 1
        if spike_hits:
            signals.append(
                (
                    "involves a detected mass-origination culprit",
                    config.weight_spike_member,
                )
            )

        if observations:
            if self._origins_adjacent_in_paths(episode, observations):
                signals.append(
                    (
                        "origins adjacent in observed paths "
                        "(provider-customer multihoming shape)",
                        config.weight_origin_adjacency,
                    )
                )

        span = (episode.last_day - episode.first_day).days + 1
        if span > 2 * episode.days_observed and episode.days_observed >= 4:
            signals.append(
                ("recurs intermittently across the study",
                 config.weight_recurrent)
            )
        return signals

    @staticmethod
    def _origins_adjacent_in_paths(
        episode: ConflictEpisode,
        observations: Mapping[datetime.date, DailyConflict],
    ) -> bool:
        """Do two conflicting origins appear adjacent on one path?

        That is the OrigTranAS signature: one origin transits the
        other, i.e. they are provider and customer — multihoming.
        """
        origins = episode.origins_ever
        for conflict in observations.values():
            for path in conflict.all_paths():
                for left, right in zip(path, path[1:]):
                    if left in origins and right in origins:
                        return True
        return False

    # -- verdicts ---------------------------------------------------------

    def validate(
        self,
        episode: ConflictEpisode,
        observations: Mapping[datetime.date, DailyConflict] | None = None,
    ) -> Verdict:
        """Assess one conflict episode.

        ``observations`` optionally supplies the daily conflict records
        of this prefix (for path-shape signals); the validator degrades
        gracefully without them.
        """
        signals = self._signals(episode, observations)
        score = sum(weight for _reason, weight in signals)
        valid = score >= 0
        # Squash |score| into a 0.5..1.0 confidence.
        confidence = 0.5 + min(abs(score), 4.0) / 8.0
        return Verdict(
            valid=valid,
            confidence=confidence,
            reasons=tuple(reason for reason, _weight in signals),
        )

    def validate_all(
        self,
        episodes: Mapping,
        observations_by_prefix: Mapping | None = None,
    ) -> dict:
        """Verdicts for a whole episode table (prefix -> Verdict)."""
        verdicts = {}
        for prefix, episode in episodes.items():
            observations = None
            if observations_by_prefix is not None:
                observations = observations_by_prefix.get(prefix)
            verdicts[prefix] = self.validate(episode, observations)
        return verdicts
