"""Per-prefix conflict episodes and the paper's duration accounting.

Section III: "The MOAS conflicts are identified by prefixes only, no
matter whether a MOAS conflict was conflicted by the same set of origin
ASes or the conflict was continuous."  Section IV: "The duration of an
individual conflict counts the total number of days the conflict was in
existence, regardless of whether the conflict was continuous and
whether the same ASes were involved."

So: one episode per prefix for the whole study, and duration = number
of observation days on which the prefix was in conflict.  A conflict
seen on exactly one snapshot "lasted less than one day" — the paper's
one-time conflicts — which we encode as duration 1 (days observed).
"""

from __future__ import annotations

import datetime
import weakref
from dataclasses import dataclass

from repro.core.detector import DailyConflict
from repro.netbase.prefix import Prefix

#: Mutable per-prefix episode record: [first, last, days, origins, width].
_FIRST, _LAST, _DAYS, _ORIGINS, _WIDTH = range(5)


@dataclass(frozen=True, slots=True)
class ConflictEpisode:
    """The merged, study-wide conflict record of one prefix."""

    prefix: Prefix
    first_day: datetime.date
    last_day: datetime.date
    days_observed: int
    origins_ever: frozenset[int]
    max_origins_single_day: int
    ongoing: bool

    @property
    def one_time(self) -> bool:
        """True for conflicts seen on exactly one snapshot."""
        return self.days_observed == 1


class EpisodeTracker:
    """Accumulates daily detections into per-prefix episodes.

    The fold is the per-day cost every study pays after detection, so
    it is built around two constant-factor facts of the conflict
    stream: one mutable record per prefix (single dict lookup per
    conflict instead of one per field), and an *identity* fast path —
    the columnar detector hands back the same cached
    :class:`DailyConflict` object for a conflict that persists across
    days, so a recurring conflict costs two list writes, not a
    prefix-keyed lookup plus origin-set union.  The fast path is pure
    memoization: a conflict object only ever hits it after the slow
    path absorbed that exact object's origins once, so fed state is
    identical whichever path runs.
    """

    __slots__ = ("_records", "_seen", "_last_fed_day")

    def __init__(self) -> None:
        #: prefix -> [first, last, days, origins, max_width]
        self._records: dict[Prefix, list] = {}
        #: id(conflict) -> (weakref to it, its prefix's record).  The
        #: weakref both guards against id reuse (the stored referent
        #: must still *be* the conflict) and evicts the entry when the
        #: conflict object dies, so nothing is pinned.
        self._seen: dict[int, tuple] = {}
        self._last_fed_day: datetime.date | None = None

    def observe_day(
        self, day: datetime.date, conflicts: list[DailyConflict]
    ) -> None:
        """Feed one day's conflicts.  Days must arrive in order."""
        if self._last_fed_day is not None and day <= self._last_fed_day:
            raise ValueError(
                f"days must be fed in increasing order: {day} after "
                f"{self._last_fed_day}"
            )
        self._last_fed_day = day
        records = self._records
        seen = self._seen
        for conflict in conflicts:
            key = id(conflict)
            entry = seen.get(key)
            if entry is not None and entry[0]() is conflict:
                record = entry[1]
                record[_LAST] = day
                record[_DAYS] += 1
                continue
            prefix = conflict.prefix
            record = records.get(prefix)
            width = len(conflict.origins)
            if record is None:
                records[prefix] = record = [
                    day, day, 1, set(conflict.origins), width,
                ]
            else:
                record[_LAST] = day
                record[_DAYS] += 1
                record[_ORIGINS].update(conflict.origins)
                if width > record[_WIDTH]:
                    record[_WIDTH] = width
            seen[key] = (
                weakref.ref(
                    conflict,
                    lambda _ref, _seen=seen, _key=key: _seen.pop(_key, None),
                ),
                record,
            )

    def merge(self, other: "EpisodeTracker") -> "EpisodeTracker":
        """Combine two trackers covering disjoint prefix shards.

        Both trackers must have been fed the same days (same
        ``last_fed_day``) over disjoint prefix sets — the contract
        sharded studies satisfy by construction.  Returns a new
        tracker; neither input is mutated, so merging is associative
        and repeatable.
        """
        if self._last_fed_day != other._last_fed_day:
            raise ValueError(
                "cannot merge trackers fed through different days: "
                f"{self._last_fed_day} vs {other._last_fed_day}"
            )
        merged = EpisodeTracker()
        merged._last_fed_day = self._last_fed_day
        combined = {
            prefix: [
                record[_FIRST],
                record[_LAST],
                record[_DAYS],
                set(record[_ORIGINS]),
                record[_WIDTH],
            ]
            for tracker in (self, other)
            for prefix, record in tracker._records.items()
        }
        if len(combined) != len(self._records) + len(other._records):
            overlap = sorted(
                str(prefix)
                for prefix in set(self._records) & set(other._records)
            )
            raise ValueError(
                "cannot merge trackers with overlapping prefixes: "
                + ", ".join(overlap[:5])
            )
        merged._records = combined
        return merged

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the tracker's streaming state.

        Together with :meth:`from_state` this lets long-running studies
        checkpoint mid-stream and resume without replaying earlier days.
        Prefixes are stored as ``[network, length]`` integer pairs so the
        payload survives a JSON round trip exactly.
        """
        return {
            "last_fed_day": (
                self._last_fed_day.isoformat()
                if self._last_fed_day is not None
                else None
            ),
            "prefixes": [
                [
                    prefix.network,
                    prefix.length,
                    record[_FIRST].isoformat(),
                    record[_LAST].isoformat(),
                    record[_DAYS],
                    sorted(record[_ORIGINS]),
                    record[_WIDTH],
                ]
                for prefix, record in self._records.items()
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "EpisodeTracker":
        """Rebuild a tracker from a :meth:`state_dict` payload."""
        tracker = cls()
        last_fed = state.get("last_fed_day")
        tracker._last_fed_day = (
            datetime.date.fromisoformat(last_fed)
            if last_fed is not None
            else None
        )
        for network, length, first, last, days, origins, width in state[
            "prefixes"
        ]:
            prefix = Prefix(network, length, strict=False)
            tracker._records[prefix] = [
                datetime.date.fromisoformat(first),
                datetime.date.fromisoformat(last),
                days,
                set(origins),
                width,
            ]
        return tracker

    def finalize(
        self, last_observed_day: datetime.date | None = None
    ) -> dict[Prefix, ConflictEpisode]:
        """Produce the per-prefix episode table.

        ``last_observed_day`` defaults to the last day fed; episodes
        still conflicted on it are marked ongoing (the paper counted
        1326 such conflicts at study end).
        """
        if last_observed_day is None:
            last_observed_day = self._last_fed_day
        episodes: dict[Prefix, ConflictEpisode] = {}
        for prefix, record in self._records.items():
            last_day = record[_LAST]
            episodes[prefix] = ConflictEpisode(
                prefix=prefix,
                first_day=record[_FIRST],
                last_day=last_day,
                days_observed=record[_DAYS],
                origins_ever=frozenset(record[_ORIGINS]),
                max_origins_single_day=record[_WIDTH],
                ongoing=(last_day == last_observed_day),
            )
        return episodes

    def __len__(self) -> int:
        return len(self._records)
