"""Per-prefix conflict episodes and the paper's duration accounting.

Section III: "The MOAS conflicts are identified by prefixes only, no
matter whether a MOAS conflict was conflicted by the same set of origin
ASes or the conflict was continuous."  Section IV: "The duration of an
individual conflict counts the total number of days the conflict was in
existence, regardless of whether the conflict was continuous and
whether the same ASes were involved."

So: one episode per prefix for the whole study, and duration = number
of observation days on which the prefix was in conflict.  A conflict
seen on exactly one snapshot "lasted less than one day" — the paper's
one-time conflicts — which we encode as duration 1 (days observed).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.core.detector import DailyConflict
from repro.netbase.prefix import Prefix


@dataclass(frozen=True)
class ConflictEpisode:
    """The merged, study-wide conflict record of one prefix."""

    prefix: Prefix
    first_day: datetime.date
    last_day: datetime.date
    days_observed: int
    origins_ever: frozenset[int]
    max_origins_single_day: int
    ongoing: bool

    @property
    def one_time(self) -> bool:
        """True for conflicts seen on exactly one snapshot."""
        return self.days_observed == 1


class EpisodeTracker:
    """Accumulates daily detections into per-prefix episodes."""

    def __init__(self) -> None:
        self._first: dict[Prefix, datetime.date] = {}
        self._last: dict[Prefix, datetime.date] = {}
        self._days: dict[Prefix, int] = {}
        self._origins: dict[Prefix, set[int]] = {}
        self._max_width: dict[Prefix, int] = {}
        self._last_fed_day: datetime.date | None = None

    def observe_day(
        self, day: datetime.date, conflicts: list[DailyConflict]
    ) -> None:
        """Feed one day's conflicts.  Days must arrive in order."""
        if self._last_fed_day is not None and day <= self._last_fed_day:
            raise ValueError(
                f"days must be fed in increasing order: {day} after "
                f"{self._last_fed_day}"
            )
        self._last_fed_day = day
        for conflict in conflicts:
            prefix = conflict.prefix
            if prefix not in self._first:
                self._first[prefix] = day
                self._days[prefix] = 0
                self._origins[prefix] = set()
                self._max_width[prefix] = 0
            self._last[prefix] = day
            self._days[prefix] += 1
            self._origins[prefix].update(conflict.origins)
            self._max_width[prefix] = max(
                self._max_width[prefix], len(conflict.origins)
            )

    def merge(self, other: "EpisodeTracker") -> "EpisodeTracker":
        """Combine two trackers covering disjoint prefix shards.

        Both trackers must have been fed the same days (same
        ``last_fed_day``) over disjoint prefix sets — the contract
        sharded studies satisfy by construction.  Returns a new
        tracker; neither input is mutated, so merging is associative
        and repeatable.
        """
        if self._last_fed_day != other._last_fed_day:
            raise ValueError(
                "cannot merge trackers fed through different days: "
                f"{self._last_fed_day} vs {other._last_fed_day}"
            )
        merged = EpisodeTracker()
        merged._last_fed_day = self._last_fed_day
        merged._first = {**self._first, **other._first}
        if len(merged._first) != len(self._first) + len(other._first):
            overlap = sorted(
                str(prefix)
                for prefix in set(self._first) & set(other._first)
            )
            raise ValueError(
                "cannot merge trackers with overlapping prefixes: "
                + ", ".join(overlap[:5])
            )
        merged._last = {**self._last, **other._last}
        merged._days = {**self._days, **other._days}
        merged._origins = {
            prefix: set(origins)
            for tracker in (self, other)
            for prefix, origins in tracker._origins.items()
        }
        merged._max_width = {**self._max_width, **other._max_width}
        return merged

    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the tracker's streaming state.

        Together with :meth:`from_state` this lets long-running studies
        checkpoint mid-stream and resume without replaying earlier days.
        Prefixes are stored as ``[network, length]`` integer pairs so the
        payload survives a JSON round trip exactly.
        """
        return {
            "last_fed_day": (
                self._last_fed_day.isoformat()
                if self._last_fed_day is not None
                else None
            ),
            "prefixes": [
                [
                    prefix.network,
                    prefix.length,
                    self._first[prefix].isoformat(),
                    self._last[prefix].isoformat(),
                    self._days[prefix],
                    sorted(self._origins[prefix]),
                    self._max_width[prefix],
                ]
                for prefix in self._first
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "EpisodeTracker":
        """Rebuild a tracker from a :meth:`state_dict` payload."""
        tracker = cls()
        last_fed = state.get("last_fed_day")
        tracker._last_fed_day = (
            datetime.date.fromisoformat(last_fed)
            if last_fed is not None
            else None
        )
        for network, length, first, last, days, origins, width in state[
            "prefixes"
        ]:
            prefix = Prefix(network, length, strict=False)
            tracker._first[prefix] = datetime.date.fromisoformat(first)
            tracker._last[prefix] = datetime.date.fromisoformat(last)
            tracker._days[prefix] = days
            tracker._origins[prefix] = set(origins)
            tracker._max_width[prefix] = width
        return tracker

    def finalize(
        self, last_observed_day: datetime.date | None = None
    ) -> dict[Prefix, ConflictEpisode]:
        """Produce the per-prefix episode table.

        ``last_observed_day`` defaults to the last day fed; episodes
        still conflicted on it are marked ongoing (the paper counted
        1326 such conflicts at study end).
        """
        if last_observed_day is None:
            last_observed_day = self._last_fed_day
        episodes: dict[Prefix, ConflictEpisode] = {}
        for prefix, first_day in self._first.items():
            last_day = self._last[prefix]
            episodes[prefix] = ConflictEpisode(
                prefix=prefix,
                first_day=first_day,
                last_day=last_day,
                days_observed=self._days[prefix],
                origins_ever=frozenset(self._origins[prefix]),
                max_origins_single_day=self._max_width[prefix],
                ongoing=(last_day == last_observed_day),
            )
        return episodes

    def __len__(self) -> int:
        return len(self._first)
