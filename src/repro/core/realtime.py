"""Streaming MOAS detection — the extension the paper's summary calls for.

Section VII: "we are investigating techniques for identifying invalid
conflicts with a high degree of certainty."  That line of work became
systems like ARTEMIS and BGPalerter; this module implements the core of
such a system against our own substrate: a stateful detector consuming
a stream of BGP updates (e.g. BGP4MP records from
:mod:`repro.mrt.reader`) and emitting alerts the moment a prefix gains
or loses a second origin, enriched with the duration-based validity
hint from Section VI-F.
"""

from __future__ import annotations

import calendar
import datetime
import enum
from collections.abc import Iterator
from dataclasses import dataclass

from repro.core.detector import DayDetection
from repro.mrt.records import Bgp4mpMessage, Bgp4mpStateChange
from repro.netbase.aspath import ASPath
from repro.netbase.prefix import Prefix


def day_timestamp(day: datetime.date) -> int:
    """Seconds since the Unix epoch at UTC midnight of ``day``.

    The timestamp stamped onto alerts derived from daily snapshots
    (:class:`DaySnapshotAlerter`), where the finest time resolution the
    data offers is the observation day itself.
    """
    return calendar.timegm(day.timetuple())


class AlertKind(enum.Enum):
    """What changed about a prefix's origin set."""

    MOAS_STARTED = "moas_started"
    MOAS_ORIGIN_ADDED = "moas_origin_added"
    MOAS_ORIGIN_REMOVED = "moas_origin_removed"
    MOAS_ENDED = "moas_ended"


@dataclass(frozen=True, slots=True)
class MoasAlert:
    """One origin-set transition observed on the update stream."""

    timestamp: int
    prefix: Prefix
    kind: AlertKind
    origins: frozenset[int]
    previous_origins: frozenset[int]
    #: ASN whose appearance/disappearance triggered the alert.
    changed_origin: int

    def to_dict(self) -> dict:
        """JSON-serializable form — the wire contract of the serve
        daemon's ``/v1/alerts`` SSE stream (see :mod:`repro.api.serve`).

        Origin sets are rendered as sorted lists so equal alerts
        serialize to equal documents; :meth:`from_dict` restores the
        exact alert.
        """
        return {
            "timestamp": self.timestamp,
            "day": datetime.datetime.fromtimestamp(
                self.timestamp, tz=datetime.timezone.utc
            )
            .date()
            .isoformat(),
            "prefix": str(self.prefix),
            "kind": self.kind.value,
            "origins": sorted(self.origins),
            "previous_origins": sorted(self.previous_origins),
            "changed_origin": self.changed_origin,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MoasAlert":
        """Rebuild an alert from :meth:`to_dict` output.

        Raises :class:`ValueError` (never a bare ``KeyError``) on
        payloads that do not carry the alert contract.
        """
        try:
            return cls(
                timestamp=int(payload["timestamp"]),
                prefix=Prefix.parse(payload["prefix"]),
                kind=AlertKind(payload["kind"]),
                origins=frozenset(
                    int(asn) for asn in payload["origins"]
                ),
                previous_origins=frozenset(
                    int(asn) for asn in payload["previous_origins"]
                ),
                changed_origin=int(payload["changed_origin"]),
            )
        except KeyError as missing:
            raise ValueError(
                f"alert payload is missing field {missing}"
            ) from None


class StreamingMoasDetector:
    """Stateful per-(peer, prefix) origin tracking with MOAS alerts.

    Mirror of the offline detector's semantics: a prefix is in MOAS
    when the *current* announcements across peers carry more than one
    distinct single-AS origin; AS_SET-terminated announcements are
    ignored.  Withdrawals shrink the origin set and can end a conflict.
    """

    __slots__ = ("_announced", "_origin_counts", "_expected")

    def __init__(self, *, expected_origins: dict[Prefix, int] | None = None):
        #: Last announced origin per (peer ASN, prefix).
        self._announced: dict[tuple[int, Prefix], int] = {}
        #: prefix -> origin -> number of peers currently announcing it.
        self._origin_counts: dict[Prefix, dict[int, int]] = {}
        #: Optional registry of legitimate origins (a simple "IRR").
        self._expected = dict(expected_origins or {})

    # -- queries -----------------------------------------------------------

    def origins_of(self, prefix: Prefix) -> frozenset[int]:
        """Origins currently announced for ``prefix`` across peers."""
        return frozenset(self._origin_counts.get(prefix, ()))

    def in_moas(self, prefix: Prefix) -> bool:
        """True while ``prefix`` has two or more distinct origins."""
        return len(self._origin_counts.get(prefix, ())) >= 2

    def current_conflicts(self) -> list[Prefix]:
        """All prefixes currently in MOAS, sorted."""
        return sorted(
            (
                prefix
                for prefix, origins in self._origin_counts.items()
                if len(origins) >= 2
            ),
            key=lambda prefix: prefix.sort_key(),
        )

    def is_expected_origin(self, prefix: Prefix, origin: int) -> bool:
        """True when a registry says ``origin`` legitimately owns ``prefix``."""
        expected = self._expected.get(prefix)
        return expected is None or expected == origin

    # -- update processing ----------------------------------------------------

    def process_update(
        self, message: Bgp4mpMessage, timestamp: int = 0
    ) -> list[MoasAlert]:
        """Apply one BGP4MP update; returns alerts it triggered."""
        alerts: list[MoasAlert] = []
        peer = message.peer_asn
        for prefix in message.withdrawn:
            alerts.extend(self._withdraw(peer, prefix, timestamp))
        if message.attributes is not None:
            path = message.attributes.as_path
            for prefix in message.announced:
                alerts.extend(
                    self._announce(peer, prefix, path, timestamp)
                )
        return alerts

    def process_state_change(
        self, change: Bgp4mpStateChange, timestamp: int = 0
    ) -> list[MoasAlert]:
        """Apply a BGP4MP session state transition.

        A session leaving ESTABLISHED invalidates every route learned
        from that peer — an implicit withdraw of the peer's whole
        table, which can end conflicts the peer was sustaining.
        """
        if not change.session_lost():
            return []
        peer = change.peer_asn
        lost = [
            prefix
            for (announced_peer, prefix) in self._announced
            if announced_peer == peer
        ]
        alerts: list[MoasAlert] = []
        for prefix in lost:
            alerts.extend(self._withdraw(peer, prefix, timestamp))
        return alerts

    def process_stream(
        self,
        messages: Iterator[tuple[int, Bgp4mpMessage | Bgp4mpStateChange]],
    ) -> Iterator[MoasAlert]:
        """Lazily process a (timestamp, update-or-state-change) stream."""
        for timestamp, message in messages:
            if isinstance(message, Bgp4mpStateChange):
                yield from self.process_state_change(message, timestamp)
            else:
                yield from self.process_update(message, timestamp)

    # -- direct route feeding ----------------------------------------------

    def announce_route(
        self, peer: int, prefix: Prefix, path: ASPath, timestamp: int = 0
    ) -> list[MoasAlert]:
        """Apply one announcement without wrapping it in a BGP4MP record.

        The single-route equivalent of :meth:`process_update`, for
        callers that already hold decoded routing state (the serve
        daemon's day-snapshot bridge, tests, notebooks).  Semantics are
        identical: AS_SET-terminated paths count as withdrawals, an
        origin change swaps atomically.
        """
        return self._announce(peer, prefix, path, timestamp)

    def withdraw_route(
        self, peer: int, prefix: Prefix, timestamp: int = 0
    ) -> list[MoasAlert]:
        """Apply one withdrawal without wrapping it in a BGP4MP record."""
        return self._withdraw(peer, prefix, timestamp)

    # -- internals ---------------------------------------------------------------

    def _announce(
        self, peer: int, prefix: Prefix, path: ASPath, timestamp: int
    ) -> list[MoasAlert]:
        origin = path.origin()
        if not isinstance(origin, int):
            # AS_SET tails are excluded, matching the offline detector;
            # treat as a withdrawal of this peer's previous route.
            return self._withdraw(peer, prefix, timestamp)
        key = (peer, prefix)
        old_origin = self._announced.get(key)
        if old_origin == origin:
            return []  # refresh with no origin change
        before = self.origins_of(prefix)
        # Swap the peer's route atomically so an origin change emits
        # one coherent transition instead of ENDED + STARTED churn.
        if old_origin is not None:
            self._decrement(prefix, old_origin)
        self._announced[key] = origin
        counts = self._origin_counts.setdefault(prefix, {})
        counts[origin] = counts.get(origin, 0) + 1
        return self._transition_alerts(
            prefix, before, timestamp, changed=origin
        )

    def _withdraw(
        self, peer: int, prefix: Prefix, timestamp: int
    ) -> list[MoasAlert]:
        origin = self._announced.pop((peer, prefix), None)
        if origin is None:
            return []
        before = self.origins_of(prefix)
        self._decrement(prefix, origin)
        return self._transition_alerts(
            prefix, before, timestamp, changed=origin
        )

    def _decrement(self, prefix: Prefix, origin: int) -> None:
        counts = self._origin_counts[prefix]
        counts[origin] -= 1
        if counts[origin] == 0:
            del counts[origin]
        if not counts:
            del self._origin_counts[prefix]

    def _transition_alerts(
        self,
        prefix: Prefix,
        before: frozenset[int],
        timestamp: int,
        *,
        changed: int,
    ) -> list[MoasAlert]:
        after = self.origins_of(prefix)
        if after == before:
            return []
        kind: AlertKind | None = None
        if len(before) < 2 and len(after) >= 2:
            kind = AlertKind.MOAS_STARTED
        elif len(before) >= 2 and len(after) >= 2:
            # Still in MOAS but the set changed: the stream stays
            # loss-free by reporting the origin that moved.  A single
            # update shifts at most one origin in and one out; a swap
            # reports the arrival (the departure stays visible in
            # previous_origins).
            arrived = after - before
            departed = before - after
            if arrived:
                kind = AlertKind.MOAS_ORIGIN_ADDED
                changed = next(iter(arrived))
            elif departed:
                kind = AlertKind.MOAS_ORIGIN_REMOVED
                changed = next(iter(departed))
        elif len(before) >= 2 and len(after) < 2:
            kind = AlertKind.MOAS_ENDED
        if kind is None:
            return []
        return [
            MoasAlert(
                timestamp=timestamp,
                prefix=prefix,
                kind=kind,
                origins=after,
                previous_origins=before,
                changed_origin=changed,
            )
        ]


class DaySnapshotAlerter:
    """Day-granularity :class:`MoasAlert` stream from daily detections.

    The serve daemon's ingestion loop folds one
    :class:`~repro.core.detector.DayDetection` at a time — a daily
    origin-set snapshot, not an update stream.  This bridge turns
    successive snapshots into the update-level alert vocabulary by
    driving a real :class:`StreamingMoasDetector`: each conflict origin
    is modeled as a peer announcing the prefix itself (path
    ``[origin]``), origins that disappear withdraw, and a prefix that
    leaves the day's conflict set withdraws every synthetic route.

    The derived stream is deterministic (origins are applied in sorted
    order, prefixes in detection order) and loss-free at day
    granularity: every origin-set transition between consecutive days
    surfaces as one or more alerts, covering all four
    :class:`AlertKind` values.  Timestamps are UTC midnight of the
    observation day (:func:`day_timestamp`).
    """

    __slots__ = ("_detector", "_current", "_alerts_emitted")

    def __init__(self) -> None:
        self._detector = StreamingMoasDetector()
        #: prefix -> origin set announced into the detector.
        self._current: dict[Prefix, frozenset[int]] = {}
        self._alerts_emitted = 0

    @property
    def alerts_emitted(self) -> int:
        """Total alerts derived so far."""
        return self._alerts_emitted

    def current_conflicts(self) -> list[Prefix]:
        """Prefixes in MOAS as of the last fed day, sorted."""
        return self._detector.current_conflicts()

    def feed_day(self, detection: DayDetection) -> list[MoasAlert]:
        """Fold one day's detection; returns the alerts it triggered."""
        timestamp = day_timestamp(detection.day)
        detector = self._detector
        alerts: list[MoasAlert] = []
        seen: set[Prefix] = set()
        for conflict in detection.conflicts:
            prefix = conflict.prefix
            seen.add(prefix)
            new = frozenset(conflict.origins)
            old = self._current.get(prefix, frozenset())
            if new == old:
                continue
            for origin in sorted(new - old):
                alerts.extend(
                    detector.announce_route(
                        origin,
                        prefix,
                        ASPath.from_sequence((origin,)),
                        timestamp,
                    )
                )
            for origin in sorted(old - new):
                alerts.extend(
                    detector.withdraw_route(origin, prefix, timestamp)
                )
            self._current[prefix] = new
        departed = [
            prefix for prefix in self._current if prefix not in seen
        ]
        for prefix in departed:
            for origin in sorted(self._current.pop(prefix)):
                alerts.extend(
                    detector.withdraw_route(origin, prefix, timestamp)
                )
        self._alerts_emitted += len(alerts)
        return alerts
