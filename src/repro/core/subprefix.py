"""Sub-prefix anomaly detection — beyond same-prefix MOAS.

The paper's Section VI-E discusses two fault shapes that same-prefix
MOAS detection cannot see alone:

- **de-aggregation** (the 1997 AS 7007 incident): a faulty AS announces
  *more-specific* fragments of other organizations' blocks.  There is
  no same-prefix conflict — the fragments are new prefixes — yet
  longest-prefix-match forwarding drags all traffic to the faulty AS;
- **faulty aggregation**: an AS announces a covering aggregate for
  space it cannot fully reach.

This module detects both from a snapshot, using the radix trie to
relate every announced prefix to the announced space that covers it.
Modern systems (ARTEMIS) call the first shape a "sub-prefix hijack";
implementing it here completes the fault taxonomy the paper opens.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.core.detector import DayDetection
from repro.netbase.prefix import Prefix
from repro.netbase.rib import RibSnapshot
from repro.netbase.trie import PrefixTrie


@dataclass(frozen=True, slots=True)
class SubPrefixAnomaly:
    """A more-specific announcement with origins foreign to its cover."""

    prefix: Prefix  # the more-specific announcement
    covering: Prefix  # the closest covering announcement
    origins: frozenset[int]  # origins of the more-specific
    covering_origins: frozenset[int]  # origins of the cover

    @property
    def is_disjoint(self) -> bool:
        """True when no origin is shared — the hijack-like shape."""
        return not (self.origins & self.covering_origins)


@dataclass(frozen=True, slots=True)
class SubPrefixReport:
    """All sub-prefix anomalies of one day's table."""

    day: datetime.date
    anomalies: tuple[SubPrefixAnomaly, ...]

    def disjoint_anomalies(self) -> tuple[SubPrefixAnomaly, ...]:
        """Anomalies with completely foreign origins (likely faults)."""
        return tuple(a for a in self.anomalies if a.is_disjoint)

    def by_origin(self, asn: int) -> tuple[SubPrefixAnomaly, ...]:
        """Anomalies where ``asn`` originates the more-specific."""
        return tuple(a for a in self.anomalies if asn in a.origins)


def _origin_table(snapshot: RibSnapshot) -> PrefixTrie[frozenset[int]]:
    trie: PrefixTrie[frozenset[int]] = PrefixTrie()
    for prefix in snapshot.prefixes():
        origins = snapshot.origins_of(prefix)
        if origins:
            trie[prefix] = frozenset(origins)
    return trie


def detect_subprefix_anomalies(snapshot: RibSnapshot) -> SubPrefixReport:
    """Find more-specific announcements with foreign origin sets.

    For every announced prefix, the closest *covering* announcement is
    located; when the more-specific's origin set is not a subset of the
    cover's, the pair is reported.  Legitimate traffic engineering
    (an org splitting its own block) shares origins and is not flagged.
    """
    trie = _origin_table(snapshot)
    anomalies: list[SubPrefixAnomaly] = []
    for prefix, origins in trie.items():
        if prefix.length == 0:
            continue
        cover = None
        for candidate, candidate_origins in trie.covering(prefix):
            if candidate != prefix:
                cover = (candidate, candidate_origins)  # keep most specific
        if cover is None:
            continue
        covering_prefix, covering_origins = cover
        if not origins <= covering_origins:
            anomalies.append(
                SubPrefixAnomaly(
                    prefix=prefix,
                    covering=covering_prefix,
                    origins=origins,
                    covering_origins=covering_origins,
                )
            )
    return SubPrefixReport(
        day=snapshot.day,
        anomalies=tuple(
            sorted(anomalies, key=lambda a: a.prefix.sort_key())
        ),
    )


def combined_fault_surface(
    detection: DayDetection, report: SubPrefixReport
) -> dict[str, int]:
    """One-day fault summary across both detectors.

    Returns counts of same-prefix MOAS conflicts, sub-prefix anomalies
    and the disjoint (hijack-like) subset — the complete picture a
    1997-2001 operator would have wanted.
    """
    return {
        "moas_conflicts": detection.num_conflicts,
        "subprefix_anomalies": len(report.anomalies),
        "disjoint_subprefix_anomalies": len(report.disjoint_anomalies()),
    }
