"""The compact daily-snapshot (CDS) archive format.

The real study consumed ~1279 daily MRT table dumps.  Storing full
per-peer tables for a multi-year synthetic study would be billions of
rows, nearly all of them single-origin prefixes every peer agrees on.
The CDS format stores exactly the information content of those dumps in
a sparse form:

- a **prefix registry** (``registry.bin``): every prefix ever announced,
  with its owner AS and creation day — the owner is what every peer's
  table shows for a prefix on days when no event touches it;
- a **path table** (``paths.bin``): interned AS paths;
- **day chunks** (``days.bin``): per observed day, the alive-prefix
  count, the active collector peers, and one row per (event-touched
  prefix x peer) giving that peer's chosen origin and path.

The analysis pipeline treats this as its raw input and never sees the
generator's event bookkeeping; ``ground_truth.json`` (written beside the
archive for benchmark validation) is consumed only by benches.
:mod:`repro.mrt` export of individual days provides the bridge to real
MRT tooling.
"""

from __future__ import annotations

import datetime
import json
import struct
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path as FsPath

from repro.netbase.prefix import Prefix

MAGIC = b"CDS1"

_REGISTRY_ROW = struct.Struct("<IBIHB")  # network, length, owner, day, flags
_DAY_HEADER = struct.Struct("<IIHI")  # day_index, alive, n_peers, n_rows
_ROW = struct.Struct("<IIII")  # prefix_id, peer_asn, origin, path_id
_U32 = struct.Struct("<I")

FLAG_AS_SET_TAIL = 0x01
FLAG_EXCHANGE_POINT = 0x02


@dataclass(frozen=True)
class PeerRow:
    """One peer's table entry for an event-touched prefix on one day."""

    prefix_id: int
    peer_asn: int
    origin: int
    path_id: int


@dataclass(frozen=True)
class DayRecord:
    """Everything the collector archived for one observed day."""

    day: datetime.date
    day_index: int
    alive_count: int  # prefixes with id < alive_count are announced
    active_peers: tuple[int, ...]
    rows: tuple[PeerRow, ...]


@dataclass(frozen=True)
class RegistryEntry:
    """One prefix's registry row."""

    prefix: Prefix
    owner: int
    created_day: int
    flags: int

    @property
    def as_set_tail(self) -> bool:
        return bool(self.flags & FLAG_AS_SET_TAIL)

    @property
    def exchange_point(self) -> bool:
        return bool(self.flags & FLAG_EXCHANGE_POINT)


class ArchiveWriter:
    """Builds a CDS archive directory incrementally."""

    def __init__(self, directory: FsPath | str) -> None:
        self.directory = FsPath(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._registry: list[RegistryEntry] = []
        self._prefix_ids: dict[Prefix, int] = {}
        self._paths: list[tuple[int, ...]] = []
        self._path_ids: dict[tuple[int, ...], int] = {}
        self._days_file = open(self.directory / "days.bin", "wb")
        self._days_file.write(MAGIC)
        self._num_days = 0
        self._finalized = False

    # -- registry -------------------------------------------------------

    def register_prefix(
        self,
        prefix: Prefix,
        owner: int,
        created_day: int,
        *,
        flags: int = 0,
    ) -> int:
        """Add a prefix to the registry; returns its dense id.

        Ids are assigned in creation order, so "alive on day d" is the
        id range ``[0, alive_count_d)``.
        """
        if prefix in self._prefix_ids:
            raise ValueError(f"{prefix} already registered")
        prefix_id = len(self._registry)
        self._registry.append(
            RegistryEntry(prefix, owner, created_day, flags)
        )
        self._prefix_ids[prefix] = prefix_id
        return prefix_id

    def prefix_id(self, prefix: Prefix) -> int:
        """The dense id assigned to ``prefix`` at registration."""
        return self._prefix_ids[prefix]

    def has_prefix(self, prefix: Prefix) -> bool:
        """True if ``prefix`` is already registered."""
        return prefix in self._prefix_ids

    @property
    def num_registered(self) -> int:
        """Prefixes registered so far (ids are creation-ordered)."""
        return len(self._registry)

    def registry_entry(self, prefix_id: int) -> RegistryEntry:
        """The registry row for ``prefix_id``."""
        return self._registry[prefix_id]

    def path_by_id(self, path_id: int) -> tuple[int, ...]:
        """The interned AS path for ``path_id``."""
        return self._paths[path_id]

    def intern_path(self, path: tuple[int, ...]) -> int:
        """Deduplicate an AS path; returns its table id."""
        if path in self._path_ids:
            return self._path_ids[path]
        path_id = len(self._paths)
        self._paths.append(path)
        self._path_ids[path] = path_id
        return path_id

    # -- day chunks -------------------------------------------------------

    def write_day(self, record: DayRecord) -> None:
        """Append one observed day's chunk to the archive."""
        if self._finalized:
            raise RuntimeError("archive already finalized")
        if record.alive_count > len(self._registry):
            raise ValueError(
                f"alive_count {record.alive_count} exceeds registry size "
                f"{len(self._registry)}"
            )
        out = self._days_file
        out.write(
            _DAY_HEADER.pack(
                record.day_index,
                record.alive_count,
                len(record.active_peers),
                len(record.rows),
            )
        )
        for peer in record.active_peers:
            out.write(_U32.pack(peer))
        for row in record.rows:
            out.write(
                _ROW.pack(row.prefix_id, row.peer_asn, row.origin, row.path_id)
            )
        self._num_days += 1

    # -- finalization -----------------------------------------------------

    def finalize(self, manifest_extra: dict | None = None) -> None:
        """Write registry, paths and manifest; close the day stream."""
        if self._finalized:
            return
        self._days_file.close()
        with open(self.directory / "registry.bin", "wb") as registry:
            registry.write(MAGIC)
            for entry in self._registry:
                registry.write(
                    _REGISTRY_ROW.pack(
                        entry.prefix.network,
                        entry.prefix.length,
                        entry.owner,
                        entry.created_day,
                        entry.flags,
                    )
                )
        with open(self.directory / "paths.bin", "wb") as paths:
            paths.write(MAGIC)
            for path in self._paths:
                paths.write(struct.pack("<B", len(path)))
                for asn in path:
                    paths.write(_U32.pack(asn))
        manifest = {
            "format": "cds-1",
            "num_prefixes": len(self._registry),
            "num_paths": len(self._paths),
            "num_days": self._num_days,
        }
        manifest.update(manifest_extra or {})
        with open(self.directory / "manifest.json", "w") as handle:
            json.dump(manifest, handle, indent=2, default=str)
        self._finalized = True

    def write_ground_truth(self, events: list[dict]) -> None:
        """Persist generator bookkeeping for benchmark validation only."""
        with open(self.directory / "ground_truth.json", "w") as handle:
            json.dump(events, handle, default=str)

    def write_incidents(self, labels: list[dict]) -> None:
        """Persist injected-incident ground truth (the answer key).

        Unlike ``ground_truth.json`` this file is a first-class study
        input: ``repro evaluate`` scores verdicts against it.
        """
        with open(self.directory / "incidents.json", "w") as handle:
            json.dump(labels, handle, default=str)


class ArchiveReader:
    """Streams a CDS archive back as :class:`DayRecord` objects."""

    def __init__(self, directory: FsPath | str) -> None:
        self.directory = FsPath(directory)
        with open(self.directory / "manifest.json") as handle:
            self.manifest = json.load(handle)
        self.registry = self._load_registry()
        self.paths = self._load_paths()
        start = self.manifest.get("calendar_start")
        self._calendar_start = (
            datetime.date.fromisoformat(start) if start else None
        )
        #: Cached per-shard cumulative registry profiles (see
        #: :meth:`shard_profile`), keyed by the shard spec (None = all).
        self._shard_profiles: dict[object, tuple[list[int], list[int]]] = {}

    def _load_registry(self) -> list[RegistryEntry]:
        entries: list[RegistryEntry] = []
        raw = (self.directory / "registry.bin").read_bytes()
        if raw[:4] != MAGIC:
            raise ValueError("bad registry magic")
        for network, length, owner, day, flags in _REGISTRY_ROW.iter_unpack(
            raw[4:]
        ):
            entries.append(
                RegistryEntry(
                    Prefix(network, length, strict=False), owner, day, flags
                )
            )
        return entries

    def _load_paths(self) -> list[tuple[int, ...]]:
        paths: list[tuple[int, ...]] = []
        raw = (self.directory / "paths.bin").read_bytes()
        if raw[:4] != MAGIC:
            raise ValueError("bad paths magic")
        offset = 4
        while offset < len(raw):
            count = raw[offset]
            offset += 1
            asns = struct.unpack_from(f"<{count}I", raw, offset)
            offset += 4 * count
            paths.append(tuple(asns))
        return paths

    @property
    def num_days(self) -> int:
        return int(self.manifest["num_days"])

    @property
    def num_prefixes(self) -> int:
        return len(self.registry)

    def prefix(self, prefix_id: int) -> Prefix:
        """The prefix registered under ``prefix_id``."""
        return self.registry[prefix_id].prefix

    def path(self, path_id: int) -> tuple[int, ...]:
        """The interned AS path stored under ``path_id``."""
        return self.paths[path_id]

    def date_of_index(self, day_index: int) -> datetime.date:
        """Calendar date of a day index (needs manifest calendar_start)."""
        if self._calendar_start is None:
            raise ValueError("archive manifest lacks calendar_start")
        return self._calendar_start + datetime.timedelta(days=day_index)

    def iter_days(
        self, start: int = 0, stop: int | None = None
    ) -> Iterator[DayRecord]:
        """Stream day records in chronological order.

        ``start``/``stop`` select a half-open range of *observed-day
        ordinals* (not calendar day indices): record number ``start``
        up to but excluding ``stop``.  Skipped records are seeked over
        without parsing their peer/row payloads, which is what lets
        parallel workers each decode only their own chunk of the
        archive.
        """
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        with open(self.directory / "days.bin", "rb") as handle:
            if handle.read(4) != MAGIC:
                raise ValueError("bad days magic")
            ordinal = 0
            while stop is None or ordinal < stop:
                header = handle.read(_DAY_HEADER.size)
                if not header:
                    return
                day_index, alive, n_peers, n_rows = _DAY_HEADER.unpack(header)
                payload = 4 * n_peers + _ROW.size * n_rows
                if ordinal < start:
                    handle.seek(payload, 1)
                    ordinal += 1
                    continue
                peers = struct.unpack(
                    f"<{n_peers}I", handle.read(4 * n_peers)
                )
                rows_raw = handle.read(_ROW.size * n_rows)
                rows = tuple(
                    PeerRow(*fields) for fields in _ROW.iter_unpack(rows_raw)
                )
                ordinal += 1
                yield DayRecord(
                    day=self.date_of_index(day_index),
                    day_index=day_index,
                    alive_count=alive,
                    active_peers=peers,
                    rows=rows,
                )

    def shard_profile(self, shard=None) -> tuple[list[int], list[int]]:
        """Cumulative registry counts for one shard (or the whole space).

        Returns ``(scanned, as_set)`` lists of length ``num_prefixes + 1``
        where ``scanned[a]`` is the number of registry prefixes with id
        below ``a`` that belong to ``shard`` and ``as_set[a]`` counts the
        AS_SET-flagged ones among them.  Because ids are creation-ordered
        and a day's alive set is exactly ``[0, alive_count)``, indexing
        these with a day's ``alive_count`` answers "how many (excluded)
        prefixes would a scan of this shard visit today" in O(1).

        Computed once per ``(reader, shard)`` and cached; ``shard=None``
        profiles the full registry.
        """
        cached = self._shard_profiles.get(shard)
        if cached is not None:
            return cached
        scanned = [0] * (len(self.registry) + 1)
        as_set = [0] * (len(self.registry) + 1)
        in_shard = 0
        flagged = 0
        for position, entry in enumerate(self.registry):
            if shard is None or shard.contains(entry.prefix):
                in_shard += 1
                if entry.flags & FLAG_AS_SET_TAIL:
                    flagged += 1
            scanned[position + 1] = in_shard
            as_set[position + 1] = flagged
        profile = (scanned, as_set)
        self._shard_profiles[shard] = profile
        return profile

    def ground_truth(self) -> list[dict]:
        """Generator bookkeeping (benchmark validation only)."""
        with open(self.directory / "ground_truth.json") as handle:
            return json.load(handle)

    def has_incidents(self) -> bool:
        """True when the archive carries injected-incident labels."""
        return (self.directory / "incidents.json").is_file()

    def incident_labels(self) -> list[dict]:
        """Injected-incident ground truth rows (see ``write_incidents``)."""
        with open(self.directory / "incidents.json") as handle:
            return json.load(handle)
