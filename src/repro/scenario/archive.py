"""The compact daily-snapshot (CDS) archive format, versions 1 and 2.

The real study consumed ~1279 daily MRT table dumps.  Storing full
per-peer tables for a multi-year synthetic study would be billions of
rows, nearly all of them single-origin prefixes every peer agrees on.
The CDS format stores exactly the information content of those dumps in
a sparse form:

- a **prefix registry** (``registry.bin``): every prefix ever announced,
  with its owner AS and creation day — the owner is what every peer's
  table shows for a prefix on days when no event touches it;
- a **path table** (``paths.bin``): interned AS paths;
- **day chunks** (``days.bin``): per observed day, the alive-prefix
  count, the active collector peers, and one row per (event-touched
  prefix x peer) giving that peer's chosen origin and path.

Two day-store encodings coexist behind one reader/writer API,
auto-detected by the magic bytes at the head of ``days.bin``:

- **v1** (magic ``CDS1``): fixed-width struct rows, streamed head to
  tail.  Positioning ``iter_days(start, ...)`` scans and seeks over
  every earlier chunk.  v1 stays readable forever.
- **v2** (magic ``CDS2``): per-day *framed* records — length-prefixed,
  CRC-checked frame bodies holding varint-encoded day metadata plus
  references into interned tables (ASNs, active-peer sets, and
  row *groups*: the per-prefix row runs that repeat day after day
  while an event is live) — followed by a footer holding those tables,
  a fixed-width day → byte-offset index, and a checksummed trailer.
  The reader maps the file with :mod:`mmap`; ``iter_days(start, stop)``
  is O(1) to position and each interned row group is decoded exactly
  once per reader, which is what makes the v2 full-study read path
  several times faster than v1 (see ``benchmarks/bench_archive.py``).

``registry.bin`` and ``paths.bin`` are byte-identical across formats;
:func:`convert_archive` migrates whole archives either way, atomically.

The analysis pipeline treats this as its raw input and never sees the
generator's event bookkeeping; ``ground_truth.json`` (written beside the
archive for benchmark validation) is consumed only by benches.
:mod:`repro.mrt` export of individual days provides the bridge to real
MRT tooling.
"""

from __future__ import annotations

import bisect
import datetime
import itertools
import json
import mmap
import os
import shutil
import struct
import sys
import zlib
from array import array
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from pathlib import Path as FsPath

from repro.netbase.prefix import Prefix
from repro.util.varint import append_uvarint, decode_uvarint

MAGIC = b"CDS1"
MAGIC_V2 = b"CDS2"

#: Trailer at the very end of a v2 ``days.bin``: footer start, index
#: start, day count, CRC-32 of everything between footer start and the
#: trailer, and the end magic proving the file was finalized.
_TRAILER = struct.Struct("<QQII8s")
_END_MAGIC = b"CDS2.IDX"

#: v2 frame header: body length, CRC-32 of the body.
_FRAME_HEADER = struct.Struct("<II")

_REGISTRY_ROW = struct.Struct("<IBIHB")  # network, length, owner, day, flags
_DAY_HEADER = struct.Struct("<IIHI")  # day_index, alive, n_peers, n_rows
_ROW = struct.Struct("<IIII")  # prefix_id, peer_asn, origin, path_id
_U32 = struct.Struct("<I")

FLAG_AS_SET_TAIL = 0x01
FLAG_EXCHANGE_POINT = 0x02

#: ``manifest.json`` format names, by writer format axis.
_FORMAT_NAMES = {"v1": "cds-1", "v2": "cds-2"}

#: AS paths are interned behind a one-byte length in both formats.
MAX_PATH_LENGTH = 255


class ArchiveError(ValueError):
    """A CDS archive is corrupt, truncated, or not an archive at all.

    Subclasses :class:`ValueError` so pre-existing callers (and the
    CLI's error handling) keep working; every decode-path failure —
    bad magic, torn frame, checksum mismatch, index pointing outside
    the file — raises this instead of crashing with a low-level
    ``struct.error`` / ``IndexError`` or silently returning partial
    data.
    """


@dataclass(frozen=True, slots=True)
class PeerRow:
    """One peer's table entry for an event-touched prefix on one day."""

    prefix_id: int
    peer_asn: int
    origin: int
    path_id: int


class DayRecord:
    """Everything the collector archived for one observed day.

    Behaves like the frozen dataclass it used to be (keyword
    construction, value equality, hashing, repr), but ``rows`` can be
    supplied lazily via ``rows_factory``: the reader passes a thunk and
    the per-row :class:`PeerRow` tuple only materializes if someone
    actually touches ``.rows`` — columnar consumers never pay for it.
    """

    __slots__ = (
        "day",
        "day_index",
        "alive_count",
        "active_peers",
        "_rows",
        "_rows_factory",
    )

    def __init__(
        self,
        *,
        day: datetime.date,
        day_index: int,
        alive_count: int,  # prefixes with id < alive_count are announced
        active_peers: tuple[int, ...],
        rows: tuple[PeerRow, ...] | None = None,
        rows_factory: Callable[[], tuple[PeerRow, ...]] | None = None,
    ) -> None:
        if rows is None and rows_factory is None:
            rows = ()
        self.day = day
        self.day_index = day_index
        self.alive_count = alive_count
        self.active_peers = active_peers
        self._rows = rows
        self._rows_factory = rows_factory

    @property
    def rows(self) -> tuple[PeerRow, ...]:
        rows = self._rows
        if rows is None:
            rows = self._rows = tuple(self._rows_factory())
            self._rows_factory = None
        return rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DayRecord):
            return NotImplemented
        return (
            self.day == other.day
            and self.day_index == other.day_index
            and self.alive_count == other.alive_count
            and self.active_peers == other.active_peers
            and self.rows == other.rows
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.day,
                self.day_index,
                self.alive_count,
                self.active_peers,
                self.rows,
            )
        )

    def __repr__(self) -> str:
        return (
            f"DayRecord(day={self.day!r}, day_index={self.day_index!r}, "
            f"alive_count={self.alive_count!r}, "
            f"active_peers={self.active_peers!r}, rows={self.rows!r})"
        )

    def __getstate__(self) -> tuple:
        # Materialize before pickling: a lazy factory closes over the
        # reader's mmap state, which must not cross process boundaries.
        return (
            self.day,
            self.day_index,
            self.alive_count,
            self.active_peers,
            self.rows,
        )

    def __setstate__(self, state: tuple) -> None:
        (
            self.day,
            self.day_index,
            self.alive_count,
            self.active_peers,
            self._rows,
        ) = state
        self._rows_factory = None


class DayColumns:
    """One observed day as flat parallel columns (the batch decode API).

    The row-oriented twin of :class:`DayRecord`: the same day payload,
    but held as four parallel ``array('I')`` columns plus a run index
    instead of per-row Python objects.  Row ``i`` is
    ``(prefix_ids[i], peer_asns[i], origins[i], path_ids[i])``; rows
    arrive in archive order, so rows of one event-touched prefix form
    contiguous *runs* described by ``run_starts`` / ``run_pids``.

    ``run_single[r]`` is 1 when run ``r`` provably carries a single
    distinct origin (the detector's fast path skips it without looking
    at the rows).  ``run_keys[r]`` is a reader-stable cache key for the
    run (the v2 interned group id when the run is exactly one group) or
    ``-1`` when the run has no stable identity; v1 stores carry no
    interning, so their ``run_keys`` is ``None``.

    On a v2 store the flat columns are *lazy*: the decoder hands over
    zero-copy references to the per-group columns it already holds
    (``segments``), and the concatenated arrays materialize only if
    something actually reads them — the detector scans the segments in
    place, so on the hot path nothing does.
    """

    __slots__ = (
        "day",
        "day_index",
        "alive_count",
        "active_peers",
        "_prefix_ids",
        "_peer_asns",
        "_origins",
        "_path_ids",
        "_run_starts",
        "_run_pids",
        "_run_single",
        "_run_keys",
        "_segments",
    )

    def __init__(
        self,
        *,
        day: datetime.date,
        day_index: int,
        alive_count: int,
        active_peers: tuple[int, ...],
        prefix_ids: array | None = None,
        peer_asns: array | None = None,
        origins: array | None = None,
        path_ids: array | None = None,
        run_starts: array | None = None,
        run_pids: array | None = None,
        run_single: bytearray | None = None,
        run_keys: list[int] | None = None,
        segments: list[tuple] | None = None,
    ) -> None:
        self.day = day
        self.day_index = day_index
        self.alive_count = alive_count
        self.active_peers = active_peers
        self._segments = segments
        if segments is None:
            self._prefix_ids = prefix_ids
            self._peer_asns = peer_asns
            self._origins = origins
            self._path_ids = path_ids
            self._run_starts = run_starts
            self._run_pids = run_pids
            self._run_single = run_single
            self._run_keys = run_keys

    def _materialize(self) -> None:
        """Flatten pending per-group segments into the flat columns."""
        segments = self._segments
        if len(segments) == 1:
            # Zero-copy: a one-group day *is* its group's columns.
            group_id, (g_prefix, g_peer, g_origin, g_path), (
                g_starts,
                g_pids,
                g_single,
            ) = segments[0]
            self._prefix_ids = g_prefix
            self._peer_asns = g_peer
            self._origins = g_origin
            self._path_ids = g_path
            self._run_starts = g_starts
            self._run_pids = g_pids
            self._run_single = g_single
            self._run_keys = (
                [group_id] if len(g_pids) == 1 else [-1] * len(g_pids)
            )
            self._segments = None
            return
        prefix_ids = array("I")
        peer_asns = array("I")
        origins = array("I")
        path_ids = array("I")
        run_starts = array("I")
        run_pids = array("I")
        run_single = bytearray()
        run_keys: list[int] = []
        base = 0
        for group_id, (g_prefix, g_peer, g_origin, g_path), (
            g_starts,
            g_pids,
            g_single,
        ) in segments:
            if base:
                for start in g_starts:
                    run_starts.append(base + start)
            else:
                run_starts.extend(g_starts)
            run_pids.extend(g_pids)
            run_single.extend(g_single)
            if len(g_pids) == 1:
                # The common case: one interned group == one prefix run,
                # so the group id is a stable identity for the run's
                # row content across days (and readers of this store).
                run_keys.append(group_id)
            else:
                run_keys.extend([-1] * len(g_pids))
            prefix_ids.extend(g_prefix)
            peer_asns.extend(g_peer)
            origins.extend(g_origin)
            path_ids.extend(g_path)
            base += len(g_prefix)
        self._prefix_ids = prefix_ids
        self._peer_asns = peer_asns
        self._origins = origins
        self._path_ids = path_ids
        self._run_starts = run_starts
        self._run_pids = run_pids
        self._run_single = run_single
        self._run_keys = run_keys
        self._segments = None

    @property
    def prefix_ids(self) -> array:
        if self._segments is not None:
            self._materialize()
        return self._prefix_ids

    @property
    def peer_asns(self) -> array:
        if self._segments is not None:
            self._materialize()
        return self._peer_asns

    @property
    def origins(self) -> array:
        if self._segments is not None:
            self._materialize()
        return self._origins

    @property
    def path_ids(self) -> array:
        if self._segments is not None:
            self._materialize()
        return self._path_ids

    @property
    def run_starts(self) -> array:
        if self._segments is not None:
            self._materialize()
        return self._run_starts

    @property
    def run_pids(self) -> array:
        if self._segments is not None:
            self._materialize()
        return self._run_pids

    @property
    def run_single(self) -> bytearray:
        if self._segments is not None:
            self._materialize()
        return self._run_single

    @property
    def run_keys(self) -> list[int] | None:
        if self._segments is not None:
            self._materialize()
        return self._run_keys

    @property
    def segments(self) -> list[tuple] | None:
        """Pending zero-copy ``(group_id, columns, runs)`` segments.

        ``columns`` is the group's ``(prefix_ids, peer_asns, origins,
        path_ids)`` arrays and ``runs`` its ``(run_starts, run_pids,
        run_single)`` index.  ``None`` once the flat columns exist (v1
        and eager construction, or after any flat accessor materialized
        them).  The detector scans segments in place when they are
        available, which is what keeps the common day
        concatenation-free.
        """
        return self._segments

    @property
    def num_rows(self) -> int:
        if self._segments is not None:
            return sum(
                len(segment[1][0]) for segment in self._segments
            )
        return len(self._prefix_ids)

    @property
    def num_runs(self) -> int:
        if self._segments is not None:
            return sum(
                len(segment[2][1]) for segment in self._segments
            )
        return len(self._run_pids)

    def to_record(self) -> DayRecord:
        """Materialize the equivalent object-API :class:`DayRecord`."""
        return DayRecord(
            day=self.day,
            day_index=self.day_index,
            alive_count=self.alive_count,
            active_peers=self.active_peers,
            rows=tuple(
                PeerRow(*fields)
                for fields in zip(
                    self.prefix_ids,
                    self.peer_asns,
                    self.origins,
                    self.path_ids,
                )
            ),
        )


def _run_index(
    prefix_ids: array, origins: array
) -> tuple[array, array, bytearray]:
    """Run boundaries over a prefix-id column.

    Returns ``(run_starts, run_pids, run_single)`` — one entry per
    maximal contiguous stretch of equal prefix ids, with ``run_single``
    set from a min==max sweep over each run's origins (C-level over
    array slices, no per-row Python objects).
    """
    run_starts = array("I")
    run_pids = array("I")
    previous = -1
    for index, pid in enumerate(prefix_ids):
        if pid != previous:
            run_starts.append(index)
            run_pids.append(pid)
            previous = pid
    run_single = bytearray(len(run_pids))
    total = len(prefix_ids)
    for run, start in enumerate(run_starts):
        stop = run_starts[run + 1] if run + 1 < len(run_starts) else total
        if stop - start == 1:
            run_single[run] = 1
        else:
            segment = origins[start:stop]
            run_single[run] = min(segment) == max(segment)
    return run_starts, run_pids, run_single


@dataclass(frozen=True, slots=True)
class RegistryEntry:
    """One prefix's registry row."""

    prefix: Prefix
    owner: int
    created_day: int
    flags: int

    @property
    def as_set_tail(self) -> bool:
        return bool(self.flags & FLAG_AS_SET_TAIL)

    @property
    def exchange_point(self) -> bool:
        return bool(self.flags & FLAG_EXCHANGE_POINT)


class ArchiveWriter:
    """Builds a CDS archive directory incrementally.

    ``format`` selects the day-store encoding: ``"v1"`` (the original
    fixed-width stream, the default for compatibility) or ``"v2"`` (the
    indexed, interned, framed store).  The registry/path-table API and
    the resulting ``registry.bin`` / ``paths.bin`` bytes are identical
    either way.
    """

    __slots__ = (
        "directory",
        "format",
        "_registry",
        "_prefix_ids",
        "_paths",
        "_path_ids",
        "_days_file",
        "_num_days",
        "_finalized",
        "_day_offsets",
        "_peersets",
        "_peerset_ids",
        "_groups",
        "_group_ids",
    )

    def __init__(self, directory: FsPath | str, *, format: str = "v1") -> None:
        if format not in _FORMAT_NAMES:
            raise ValueError(
                f"unknown archive format {format!r}; expected 'v1' or 'v2'"
            )
        self.directory = FsPath(directory)
        self.format = format
        self.directory.mkdir(parents=True, exist_ok=True)
        self._registry: list[RegistryEntry] = []
        self._prefix_ids: dict[Prefix, int] = {}
        self._paths: list[tuple[int, ...]] = []
        self._path_ids: dict[tuple[int, ...], int] = {}
        self._days_file = open(self.directory / "days.bin", "wb")
        self._days_file.write(MAGIC if format == "v1" else MAGIC_V2)
        self._num_days = 0
        self._finalized = False
        # v2 intern state: frames reference these tables by id; the
        # tables themselves land in the footer at finalize time.
        self._day_offsets: list[int] = []
        self._peersets: list[tuple[int, ...]] = []
        self._peerset_ids: dict[tuple[int, ...], int] = {}
        self._groups: list[tuple[PeerRow, ...]] = []
        self._group_ids: dict[tuple[PeerRow, ...], int] = {}

    # -- registry -------------------------------------------------------

    def register_prefix(
        self,
        prefix: Prefix,
        owner: int,
        created_day: int,
        *,
        flags: int = 0,
    ) -> int:
        """Add a prefix to the registry; returns its dense id.

        Ids are assigned in creation order, so "alive on day d" is the
        id range ``[0, alive_count_d)``.
        """
        if prefix in self._prefix_ids:
            raise ValueError(f"{prefix} already registered")
        prefix_id = len(self._registry)
        self._registry.append(
            RegistryEntry(prefix, owner, created_day, flags)
        )
        self._prefix_ids[prefix] = prefix_id
        return prefix_id

    def prefix_id(self, prefix: Prefix) -> int:
        """The dense id assigned to ``prefix`` at registration."""
        return self._prefix_ids[prefix]

    def has_prefix(self, prefix: Prefix) -> bool:
        """True if ``prefix`` is already registered."""
        return prefix in self._prefix_ids

    @property
    def num_registered(self) -> int:
        """Prefixes registered so far (ids are creation-ordered)."""
        return len(self._registry)

    def registry_entry(self, prefix_id: int) -> RegistryEntry:
        """The registry row for ``prefix_id``."""
        return self._registry[prefix_id]

    def path_by_id(self, path_id: int) -> tuple[int, ...]:
        """The interned AS path for ``path_id``."""
        return self._paths[path_id]

    def intern_path(self, path: tuple[int, ...]) -> int:
        """Deduplicate an AS path; returns its table id."""
        existing = self._path_ids.get(path)
        if existing is not None:
            return existing
        if len(path) > MAX_PATH_LENGTH:
            raise ValueError(
                f"AS path of length {len(path)} exceeds the table "
                f"maximum of {MAX_PATH_LENGTH}"
            )
        path_id = len(self._paths)
        self._paths.append(path)
        self._path_ids[path] = path_id
        return path_id

    # -- day chunks -------------------------------------------------------

    def write_day(self, record: DayRecord) -> None:
        """Append one observed day's chunk to the archive."""
        if self._finalized:
            raise RuntimeError("archive already finalized")
        if record.alive_count > len(self._registry):
            raise ValueError(
                f"alive_count {record.alive_count} exceeds registry size "
                f"{len(self._registry)}"
            )
        if self.format == "v2":
            self._write_day_v2(record)
        else:
            self._write_day_v1(record)
        self._num_days += 1

    def _write_day_v1(self, record: DayRecord) -> None:
        out = self._days_file
        out.write(
            _DAY_HEADER.pack(
                record.day_index,
                record.alive_count,
                len(record.active_peers),
                len(record.rows),
            )
        )
        for peer in record.active_peers:
            out.write(_U32.pack(peer))
        for row in record.rows:
            out.write(
                _ROW.pack(row.prefix_id, row.peer_asn, row.origin, row.path_id)
            )

    def _write_day_v2(self, record: DayRecord) -> None:
        body = bytearray()
        append_uvarint(body, record.day_index)
        append_uvarint(body, record.alive_count)
        append_uvarint(body, self._intern_peerset(tuple(record.active_peers)))
        group_ids = self._intern_row_groups(record.rows)
        append_uvarint(body, len(group_ids))
        for group_id in group_ids:
            append_uvarint(body, group_id)
        out = self._days_file
        self._day_offsets.append(out.tell())
        out.write(_FRAME_HEADER.pack(len(body), zlib.crc32(body)))
        out.write(body)

    def _intern_peerset(self, peers: tuple[int, ...]) -> int:
        existing = self._peerset_ids.get(peers)
        if existing is not None:
            return existing
        peerset_id = len(self._peersets)
        self._peersets.append(peers)
        self._peerset_ids[peers] = peerset_id
        return peerset_id

    def _intern_row_groups(
        self, rows: tuple[PeerRow, ...]
    ) -> list[int]:
        """Split ``rows`` into per-prefix runs and intern each run.

        Rows for one event-touched prefix are contiguous, and the same
        run recurs on every day the event stays live with the same peer
        set — so interning runs stores (and later decodes) each one
        exactly once no matter how many days reference it.
        """
        group_ids: list[int] = []
        index = 0
        total = len(rows)
        while index < total:
            stop = index + 1
            prefix_id = rows[index].prefix_id
            while stop < total and rows[stop].prefix_id == prefix_id:
                stop += 1
            run = tuple(rows[index:stop])
            group_id = self._group_ids.get(run)
            if group_id is None:
                group_id = len(self._groups)
                self._groups.append(run)
                self._group_ids[run] = group_id
            group_ids.append(group_id)
            index = stop
        return group_ids

    # -- finalization -----------------------------------------------------

    def finalize(self, manifest_extra: dict | None = None) -> None:
        """Write registry, paths and manifest; close the day stream."""
        if self._finalized:
            return
        if self.format == "v2":
            self._finalize_days_v2()
        self._days_file.close()
        with open(self.directory / "registry.bin", "wb") as registry:
            registry.write(MAGIC)
            for entry in self._registry:
                registry.write(
                    _REGISTRY_ROW.pack(
                        entry.prefix.network,
                        entry.prefix.length,
                        entry.owner,
                        entry.created_day,
                        entry.flags,
                    )
                )
        with open(self.directory / "paths.bin", "wb") as paths:
            paths.write(MAGIC)
            for path in self._paths:
                paths.write(struct.pack("<B", len(path)))
                for asn in path:
                    paths.write(_U32.pack(asn))
        manifest = {
            "format": _FORMAT_NAMES[self.format],
            "num_prefixes": len(self._registry),
            "num_paths": len(self._paths),
            "num_days": self._num_days,
        }
        manifest.update(manifest_extra or {})
        with open(self.directory / "manifest.json", "w") as handle:
            json.dump(manifest, handle, indent=2, default=str)
        self._finalized = True

    def _finalize_days_v2(self) -> None:
        """Append the v2 footer: interned tables, day index, trailer."""
        out = self._days_file
        footer_start = out.tell()

        asns: list[int] = []
        asn_ids: dict[int, int] = {}

        def intern_asn(asn: int) -> int:
            existing = asn_ids.get(asn)
            if existing is not None:
                return existing
            asn_id = len(asns)
            asns.append(asn)
            asn_ids[asn] = asn_id
            return asn_id

        blob = bytearray()
        # The ASN table is referenced by both the peer sets and the row
        # groups, so assign ids in one deterministic sweep first.
        for peers in self._peersets:
            for asn in peers:
                intern_asn(asn)
        for group in self._groups:
            for row in group:
                intern_asn(row.peer_asn)
                intern_asn(row.origin)
        append_uvarint(blob, len(asns))
        for asn in asns:
            append_uvarint(blob, asn)
        append_uvarint(blob, len(self._peersets))
        for peers in self._peersets:
            append_uvarint(blob, len(peers))
            for asn in peers:
                append_uvarint(blob, asn_ids[asn])
        append_uvarint(blob, len(self._groups))
        for group in self._groups:
            append_uvarint(blob, len(group))
            for row in group:
                append_uvarint(blob, row.prefix_id)
                append_uvarint(blob, asn_ids[row.peer_asn])
                append_uvarint(blob, asn_ids[row.origin])
                append_uvarint(blob, row.path_id)
        out.write(blob)

        index_start = footer_start + len(blob)
        index = struct.pack(
            f"<{len(self._day_offsets)}Q", *self._day_offsets
        )
        out.write(index)
        footer_crc = zlib.crc32(index, zlib.crc32(blob))
        out.write(
            _TRAILER.pack(
                footer_start,
                index_start,
                len(self._day_offsets),
                footer_crc,
                _END_MAGIC,
            )
        )

    def write_ground_truth(self, events: list[dict]) -> None:
        """Persist generator bookkeeping for benchmark validation only."""
        with open(self.directory / "ground_truth.json", "w") as handle:
            json.dump(events, handle, default=str)

    def write_incidents(self, labels: list[dict]) -> None:
        """Persist injected-incident ground truth (the answer key).

        Unlike ``ground_truth.json`` this file is a first-class study
        input: ``repro evaluate`` scores verdicts against it.
        """
        with open(self.directory / "incidents.json", "w") as handle:
            json.dump(labels, handle, default=str)

    def write_roas(self, roas: list[dict]) -> None:
        """Persist the world's ROA database beside the archive.

        One :meth:`~repro.netbase.rpki.Roa.to_dict` row per
        authorization; ``repro analyze --rpki`` and ``repro evaluate``
        validate origins against it.
        """
        with open(self.directory / "roas.json", "w") as handle:
            json.dump(roas, handle, indent=2, default=str)


def _parse_trailer(raw_trailer: bytes, size: int) -> tuple[int, int, int, int]:
    """Validate a v2 trailer; returns (footer, index, days, crc).

    ``size`` is the whole day store's byte length.  Shared by the mmap
    reader and :func:`read_day_index` so the coordinator and the
    workers can never disagree about what a well-formed trailer is.
    """
    (
        footer_start,
        index_start,
        num_days,
        footer_crc,
        end_magic,
    ) = _TRAILER.unpack(raw_trailer)
    if end_magic != _END_MAGIC:
        raise ArchiveError(
            "v2 day store footer missing or truncated (bad end magic)"
        )
    trailer_start = size - _TRAILER.size
    if not 4 <= footer_start <= index_start <= trailer_start:
        raise ArchiveError("v2 footer bounds are out of order")
    if index_start + 8 * num_days != trailer_start:
        raise ArchiveError(
            f"v2 day index truncated: {num_days} days do not fit "
            f"between index start and trailer"
        )
    return footer_start, index_start, num_days, footer_crc


class _V2DayStore:
    """mmap-backed decoder for a v2 ``days.bin``.

    Parses the trailer, validates the footer checksum, and decodes the
    interned ASN / peer-set / row-group tables once up front; frames
    are then decoded on demand by byte offset, so positioning anywhere
    in the archive is O(1) and row groups shared across days cost one
    decode total.
    """

    __slots__ = (
        "_reader",
        "_file",
        "_map",
        "frames_end",
        "num_days",
        "offsets",
        "_peersets",
        "_group_columns",
        "_group_runs",
        "_group_rows",
    )

    def __init__(self, path: FsPath, reader: "ArchiveReader") -> None:
        self._reader = reader
        self._file = open(path, "rb")
        try:
            self._map = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except (OSError, ValueError) as error:
            self._file.close()
            raise ArchiveError(f"cannot map v2 day store: {error}") from error
        try:
            self._parse_footer()
        except ArchiveError:
            self.close()
            raise

    def close(self) -> None:
        try:
            self._map.close()
        except BufferError:
            # A traceback in flight can still hold a memoryview into
            # the map (e.g. the frame that failed its checksum); the
            # mapping is released when that last view is collected.
            pass
        self._file.close()

    # -- footer -----------------------------------------------------------

    def _parse_footer(self) -> None:
        buf = self._map
        size = len(buf)
        if size < len(MAGIC_V2) + _TRAILER.size:
            raise ArchiveError(
                "v2 day store truncated: no room for the footer trailer"
            )
        trailer_start = size - _TRAILER.size
        footer_start, index_start, num_days, footer_crc = _parse_trailer(
            buf[trailer_start:], size
        )
        if zlib.crc32(memoryview(buf)[footer_start:trailer_start]) != (
            footer_crc
        ):
            raise ArchiveError("v2 footer checksum mismatch")
        self.frames_end = footer_start
        self.num_days = num_days
        self.offsets: list[int] = list(
            struct.unpack_from(f"<{num_days}Q", buf, index_start)
        )
        try:
            self._decode_tables(
                memoryview(buf)[footer_start:index_start]
            )
        except (ValueError, IndexError, OverflowError) as error:
            if isinstance(error, ArchiveError):
                raise
            raise ArchiveError(
                f"v2 footer tables are corrupt: {error}"
            ) from error

    def _decode_tables(self, blob: memoryview) -> None:
        # The group table carries four varints per archived row — the
        # whole footer is hundreds of thousands of values at scale —
        # so the varint decode is inlined here (byte fetch + shift)
        # rather than paying a function call per field, mirroring the
        # other hot-loop inlines in this codebase.  Truncation shows
        # up as IndexError, which the caller maps to ArchiveError.
        data = bytes(blob)
        pos = 0

        def read_count() -> int:
            nonlocal pos
            value, pos = decode_uvarint(data, pos)
            return value

        asns: list[int] = []
        for _ in range(read_count()):
            byte = data[pos]
            pos += 1
            if byte < 0x80:
                value = byte
            else:
                value = byte & 0x7F
                shift = 7
                while True:
                    byte = data[pos]
                    pos += 1
                    value |= (byte & 0x7F) << shift
                    if byte < 0x80:
                        break
                    shift += 7
                    if shift > 63:  # decode_uvarint's overlong cap
                        raise ValueError("overlong varint")
            asns.append(value)
        self._peersets: list[tuple[int, ...]] = []
        for _ in range(read_count()):
            width = read_count()
            peers = []
            for _ in range(width):
                asn_id, pos = decode_uvarint(data, pos)
                peers.append(asns[asn_id])
            self._peersets.append(tuple(peers))
        # Groups decode straight into parallel array('I') columns — the
        # batch-decode representation — exactly once per reader.  The
        # object-API PeerRow tuples are derived lazily per group (see
        # _group_rows_of), so columnar consumers never build them.
        group_columns: list[tuple[array, array, array, array]] = []
        group_runs: list[tuple[array, array, bytearray]] = []
        for _ in range(read_count()):
            width = read_count()
            prefix_ids = array("I")
            peer_asns = array("I")
            origin_col = array("I")
            path_ids = array("I")
            fields = [0, 0, 0, 0]
            for _ in range(width):
                for slot in range(4):
                    byte = data[pos]
                    pos += 1
                    if byte < 0x80:
                        fields[slot] = byte
                        continue
                    value = byte & 0x7F
                    shift = 7
                    while True:
                        byte = data[pos]
                        pos += 1
                        value |= (byte & 0x7F) << shift
                        if byte < 0x80:
                            break
                        shift += 7
                        if shift > 63:  # decode_uvarint's overlong cap
                            raise ValueError("overlong varint")
                    fields[slot] = value
                prefix_ids.append(fields[0])
                peer_asns.append(asns[fields[1]])
                origin_col.append(asns[fields[2]])
                path_ids.append(fields[3])
            group_columns.append(
                (prefix_ids, peer_asns, origin_col, path_ids)
            )
            group_runs.append(_run_index(prefix_ids, origin_col))
        self._group_columns = group_columns
        self._group_runs = group_runs
        self._group_rows: list[tuple[PeerRow, ...] | None] = (
            [None] * len(group_columns)
        )
        if pos != len(data):
            raise ArchiveError(
                f"v2 footer has {len(data) - pos} trailing bytes"
            )

    def _group_rows_of(self, group_id: int) -> tuple[PeerRow, ...]:
        """The object-API rows of one interned group (decoded once)."""
        rows = self._group_rows[group_id]
        if rows is None:
            rows = self._group_rows[group_id] = tuple(
                PeerRow(*fields)
                for fields in zip(*self._group_columns[group_id])
            )
        return rows

    # -- frames -----------------------------------------------------------

    def _parse_frame(
        self, ordinal: int
    ) -> tuple[int, int, int, list[int]]:
        """Validate frame ``ordinal``; returns its decoded references.

        The CRC check and body parse shared by the object and columnar
        decoders: ``(day_index, alive_count, peerset_id, group_ids)``.
        """
        offset = self.offsets[ordinal]
        buf = self._map
        if offset < 4 or offset + _FRAME_HEADER.size > self.frames_end:
            raise ArchiveError(
                f"day {ordinal}: index offset {offset} points outside "
                f"the day store"
            )
        body_len, body_crc = _FRAME_HEADER.unpack_from(buf, offset)
        body_start = offset + _FRAME_HEADER.size
        body_end = body_start + body_len
        if body_end > self.frames_end:
            raise ArchiveError(
                f"day {ordinal}: frame overruns the day store"
            )
        body = buf[body_start:body_end]  # mmap slice -> bytes
        if zlib.crc32(body) != body_crc:
            raise ArchiveError(
                f"day {ordinal}: frame checksum mismatch (corrupt frame)"
            )
        try:
            pos = 0
            day_index, pos = decode_uvarint(body, pos)
            alive, pos = decode_uvarint(body, pos)
            peerset_id, pos = decode_uvarint(body, pos)
            n_groups, pos = decode_uvarint(body, pos)
            num_known = len(self._group_columns)
            group_ids: list[int] = []
            # Group ids are the bulk of every frame; decode them with
            # the varint loop inlined (the same hot-loop treatment as
            # the footer tables).
            for _ in range(n_groups):
                byte = body[pos]
                pos += 1
                if byte < 0x80:
                    group_id = byte
                else:
                    group_id = byte & 0x7F
                    shift = 7
                    while True:
                        byte = body[pos]
                        pos += 1
                        group_id |= (byte & 0x7F) << shift
                        if byte < 0x80:
                            break
                        shift += 7
                        if shift > 63:  # decode_uvarint's cap
                            raise ValueError("overlong varint")
                if group_id >= num_known:
                    raise ValueError(f"unknown row group {group_id}")
                group_ids.append(group_id)
            if peerset_id >= len(self._peersets):
                raise ValueError(f"unknown peer set {peerset_id}")
        except (ValueError, IndexError) as error:
            raise ArchiveError(
                f"day {ordinal}: frame body is corrupt: {error}"
            ) from error
        if pos != body_len:
            raise ArchiveError(
                f"day {ordinal}: frame body has {body_len - pos} "
                f"trailing bytes"
            )
        return day_index, alive, peerset_id, group_ids

    def decode_frame(self, ordinal: int) -> DayRecord:
        day_index, alive, peerset_id, group_ids = self._parse_frame(ordinal)
        if not group_ids:
            rows_factory = None
            rows: tuple[PeerRow, ...] | None = ()
        elif len(group_ids) == 1:
            rows = None
            group_id = group_ids[0]
            rows_factory = lambda: self._group_rows_of(group_id)  # noqa: E731
        else:
            rows = None
            rows_factory = lambda: tuple(  # noqa: E731
                itertools.chain.from_iterable(
                    self._group_rows_of(group_id) for group_id in group_ids
                )
            )
        return DayRecord(
            day=self._reader.date_of_index(day_index),
            day_index=day_index,
            alive_count=alive,
            active_peers=self._peersets[peerset_id],
            rows=rows,
            rows_factory=rows_factory,
        )

    def decode_frame_columns(self, ordinal: int) -> DayColumns:
        """Decode frame ``ordinal`` into :class:`DayColumns`.

        Per-group columns and run indexes are decoded once per reader
        (in :meth:`_decode_tables`); assembling a day is a list of
        zero-copy references to them — the flat concatenated columns
        materialize lazily, and only if something reads them (the
        detector scans the segments in place, so usually nothing does).
        """
        day_index, alive, peerset_id, group_ids = self._parse_frame(ordinal)
        columns = self._group_columns
        runs = self._group_runs
        return DayColumns(
            day=self._reader.date_of_index(day_index),
            day_index=day_index,
            alive_count=alive,
            active_peers=self._peersets[peerset_id],
            segments=[
                (group_id, columns[group_id], runs[group_id])
                for group_id in group_ids
            ],
        )

    def iter_days(
        self, start: int, stop: int | None
    ) -> Iterator[DayRecord]:
        stop = self.num_days if stop is None else min(stop, self.num_days)
        for ordinal in range(start, stop):
            yield self.decode_frame(ordinal)

    def iter_days_at(
        self, start_offset: int, stop_offset: int
    ) -> Iterator[DayRecord]:
        """Decode the frames whose offsets lie in ``[start, stop)``."""
        first = bisect.bisect_left(self.offsets, start_offset)
        for ordinal in range(first, self.num_days):
            if self.offsets[ordinal] >= stop_offset:
                return
            yield self.decode_frame(ordinal)

    def iter_day_columns(
        self, start: int, stop: int | None
    ) -> Iterator[DayColumns]:
        stop = self.num_days if stop is None else min(stop, self.num_days)
        for ordinal in range(start, stop):
            yield self.decode_frame_columns(ordinal)

    def iter_day_columns_at(
        self, start_offset: int, stop_offset: int
    ) -> Iterator[DayColumns]:
        """Columnar twin of :meth:`iter_days_at`."""
        first = bisect.bisect_left(self.offsets, start_offset)
        for ordinal in range(first, self.num_days):
            if self.offsets[ordinal] >= stop_offset:
                return
            yield self.decode_frame_columns(ordinal)


class ArchiveReader:
    """Streams a CDS archive back as :class:`DayRecord` objects.

    The day-store format (v1 or v2) is auto-detected from the magic
    bytes of ``days.bin``; everything downstream — ``iter_days``,
    detection, parallel workers, checkpoints — behaves identically on
    both.
    """

    # "__weakref__" stays in the slot list: the detector's per-reader
    # template/outcome caches key WeakKeyDictionaries by reader.
    __slots__ = (
        "directory",
        "manifest",
        "registry",
        "paths",
        "_calendar_start",
        "_shard_profiles",
        "_as_set_mask",
        "_shard_masks",
        "_days_path",
        "_days_magic",
        "_v2",
        "__weakref__",
    )

    def __init__(self, directory: FsPath | str) -> None:
        self.directory = FsPath(directory)
        with open(self.directory / "manifest.json") as handle:
            self.manifest = json.load(handle)
        self.registry = self._load_registry()
        self.paths = self._load_paths()
        start = self.manifest.get("calendar_start")
        self._calendar_start = (
            datetime.date.fromisoformat(start) if start else None
        )
        #: Cached per-shard cumulative registry profiles (see
        #: :meth:`shard_profile`), keyed by the shard spec (None = all).
        self._shard_profiles: dict[object, tuple[list[int], list[int]]] = {}
        #: Cached per-registry-id flag/membership masks (see
        #: :meth:`as_set_mask` / :meth:`shard_mask`).
        self._as_set_mask: bytes | None = None
        self._shard_masks: dict[object, bytes] = {}
        self._days_path = self.directory / "days.bin"
        with open(self._days_path, "rb") as handle:
            self._days_magic = handle.read(len(MAGIC))
        # Unknown magic defers to iter_days so a reader over a corrupt
        # archive can still serve registry/path lookups (v1 behavior).
        self._v2: _V2DayStore | None = None
        if self._days_magic == MAGIC_V2:
            self._v2 = _V2DayStore(self._days_path, self)
            if self._v2.num_days != self.num_days:
                count = self._v2.num_days
                self._v2.close()
                self._v2 = None
                raise ArchiveError(
                    f"day store holds {count} day(s); "
                    f"manifest says {self.num_days}"
                )

    @property
    def format(self) -> str:
        """The day-store format behind this reader: ``"v1"``/``"v2"``."""
        return "v2" if self._v2 is not None else "v1"

    def close(self) -> None:
        """Release the v2 day-store mapping (no-op for v1 readers)."""
        if self._v2 is not None:
            self._v2.close()
            self._v2 = None
            self._days_magic = b""

    def _load_registry(self) -> list[RegistryEntry]:
        entries: list[RegistryEntry] = []
        raw = (self.directory / "registry.bin").read_bytes()
        if raw[:4] != MAGIC:
            raise ArchiveError("bad registry magic")
        if (len(raw) - 4) % _REGISTRY_ROW.size:
            raise ArchiveError("registry is truncated mid-row")
        for network, length, owner, day, flags in _REGISTRY_ROW.iter_unpack(
            raw[4:]
        ):
            entries.append(
                RegistryEntry(
                    Prefix(network, length, strict=False), owner, day, flags
                )
            )
        return entries

    def _load_paths(self) -> list[tuple[int, ...]]:
        paths: list[tuple[int, ...]] = []
        raw = (self.directory / "paths.bin").read_bytes()
        if raw[:4] != MAGIC:
            raise ArchiveError("bad paths magic")
        offset = 4
        while offset < len(raw):
            count = raw[offset]
            offset += 1
            if offset + 4 * count > len(raw):
                raise ArchiveError("path table is truncated mid-path")
            asns = struct.unpack_from(f"<{count}I", raw, offset)
            offset += 4 * count
            paths.append(tuple(asns))
        return paths

    @property
    def num_days(self) -> int:
        return int(self.manifest["num_days"])

    @property
    def num_prefixes(self) -> int:
        return len(self.registry)

    def prefix(self, prefix_id: int) -> Prefix:
        """The prefix registered under ``prefix_id``."""
        return self.registry[prefix_id].prefix

    def path(self, path_id: int) -> tuple[int, ...]:
        """The interned AS path stored under ``path_id``."""
        return self.paths[path_id]

    def date_of_index(self, day_index: int) -> datetime.date:
        """Calendar date of a day index (needs manifest calendar_start)."""
        if self._calendar_start is None:
            raise ValueError("archive manifest lacks calendar_start")
        return self._calendar_start + datetime.timedelta(days=day_index)

    def iter_days(
        self, start: int = 0, stop: int | None = None
    ) -> Iterator[DayRecord]:
        """Stream day records in chronological order.

        ``start``/``stop`` select a half-open range of *observed-day
        ordinals* (not calendar day indices): record number ``start``
        up to but excluding ``stop``.  On a v1 store skipped records
        are seeked over without parsing their peer/row payloads; on a
        v2 store the footer index positions the cursor directly —
        O(1) — which is what lets parallel workers each decode only
        their own chunk of the archive.
        """
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        if self._v2 is not None:
            yield from self._v2.iter_days(start, stop)
            return
        yield from self._iter_days_v1(start, stop)

    def iter_day_columns(
        self, start: int = 0, stop: int | None = None
    ) -> Iterator[DayColumns]:
        """Stream days as flat :class:`DayColumns` batches, in order.

        The columnar twin of :meth:`iter_days`: same range semantics,
        same days, but each one arrives as parallel ``array`` columns
        plus a run index instead of :class:`PeerRow` objects — the
        representation :func:`~repro.core.detector.detect_day_columns`
        scans without per-row Python work.  On a v2 store each interned
        row group's columns are decoded once per reader and days are
        assembled by array concatenation; on v1 the fixed-width row
        block is split into columns with strided array slices.
        """
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        if self._v2 is not None:
            yield from self._v2.iter_day_columns(start, stop)
            return
        yield from self._iter_days_v1(start, stop, columnar=True)

    def _columns_from_v1(
        self,
        day_index: int,
        alive: int,
        peers: tuple[int, ...],
        rows_raw: bytes,
    ) -> DayColumns:
        flat = array("I")
        flat.frombytes(rows_raw)
        if sys.byteorder != "little":
            flat.byteswap()  # rows are stored little-endian
        prefix_ids = flat[0::4]
        origins = flat[2::4]
        run_starts, run_pids, run_single = _run_index(prefix_ids, origins)
        return DayColumns(
            day=self.date_of_index(day_index),
            day_index=day_index,
            alive_count=alive,
            active_peers=peers,
            prefix_ids=prefix_ids,
            peer_asns=flat[1::4],
            origins=origins,
            path_ids=flat[3::4],
            run_starts=run_starts,
            run_pids=run_pids,
            run_single=run_single,
            run_keys=None,  # v1 has no interned groups to key on
        )

    def _iter_days_v1(
        self, start: int, stop: int | None, *, columnar: bool = False
    ) -> Iterator[DayRecord | DayColumns]:
        expected_days = self.num_days
        with open(self._days_path, "rb") as handle:
            if handle.read(4) != MAGIC:
                raise ArchiveError("bad days magic")
            ordinal = 0
            while stop is None or ordinal < stop:
                header = handle.read(_DAY_HEADER.size)
                if not header:
                    # Clean EOF is only the end of the archive when the
                    # manifest agrees; a store truncated exactly at a
                    # record boundary must not pass for a shorter one.
                    if ordinal < expected_days:
                        raise ArchiveError(
                            f"day store ends after {ordinal} record(s); "
                            f"manifest says {expected_days}"
                        )
                    return
                if len(header) < _DAY_HEADER.size:
                    raise ArchiveError(
                        f"day {ordinal}: truncated day header"
                    )
                day_index, alive, n_peers, n_rows = _DAY_HEADER.unpack(header)
                payload = 4 * n_peers + _ROW.size * n_rows
                if ordinal < start:
                    handle.seek(payload, 1)
                    ordinal += 1
                    continue
                peers_raw = handle.read(4 * n_peers)
                if len(peers_raw) < 4 * n_peers:
                    raise ArchiveError(
                        f"day {ordinal}: truncated peer list"
                    )
                peers = struct.unpack(f"<{n_peers}I", peers_raw)
                rows_raw = handle.read(_ROW.size * n_rows)
                if len(rows_raw) < _ROW.size * n_rows:
                    raise ArchiveError(
                        f"day {ordinal}: truncated row block"
                    )
                ordinal += 1
                if columnar:
                    yield self._columns_from_v1(
                        day_index, alive, peers, rows_raw
                    )
                    continue
                yield DayRecord(
                    day=self.date_of_index(day_index),
                    day_index=day_index,
                    alive_count=alive,
                    active_peers=peers,
                    rows_factory=lambda raw=rows_raw: tuple(
                        PeerRow(*fields)
                        for fields in _ROW.iter_unpack(raw)
                    ),
                )

    def iter_days_at(
        self, start_offset: int, stop_offset: int
    ) -> Iterator[DayRecord]:
        """Decode the v2 frames in byte range ``[start, stop)``.

        The offset-range flavor of :meth:`iter_days`, consumed by the
        parallel executor's work units (offsets come from
        :func:`read_day_index`).  v1 stores have no byte index —
        :class:`ArchiveError`.
        """
        if self._v2 is None:
            raise ArchiveError(
                "byte-offset iteration requires a v2 day store"
            )
        return self._v2.iter_days_at(start_offset, stop_offset)

    def iter_day_columns_at(
        self, start_offset: int, stop_offset: int
    ) -> Iterator[DayColumns]:
        """Columnar twin of :meth:`iter_days_at` (v2 stores only)."""
        if self._v2 is None:
            raise ArchiveError(
                "byte-offset iteration requires a v2 day store"
            )
        return self._v2.iter_day_columns_at(start_offset, stop_offset)

    def day_offsets(self) -> tuple[int, ...]:
        """Byte offset of every day frame in a v2 store (index order)."""
        if self._v2 is None:
            raise ArchiveError("day offsets require a v2 day store")
        return tuple(self._v2.offsets)

    def shard_profile(self, shard=None) -> tuple[list[int], list[int]]:
        """Cumulative registry counts for one shard (or the whole space).

        Returns ``(scanned, as_set)`` lists of length ``num_prefixes + 1``
        where ``scanned[a]`` is the number of registry prefixes with id
        below ``a`` that belong to ``shard`` and ``as_set[a]`` counts the
        AS_SET-flagged ones among them.  Because ids are creation-ordered
        and a day's alive set is exactly ``[0, alive_count)``, indexing
        these with a day's ``alive_count`` answers "how many (excluded)
        prefixes would a scan of this shard visit today" in O(1).

        Computed once per ``(reader, shard)`` and cached; ``shard=None``
        profiles the full registry.
        """
        cached = self._shard_profiles.get(shard)
        if cached is not None:
            return cached
        scanned = [0] * (len(self.registry) + 1)
        as_set = [0] * (len(self.registry) + 1)
        in_shard = 0
        flagged = 0
        for position, entry in enumerate(self.registry):
            if shard is None or shard.contains(entry.prefix):
                in_shard += 1
                if entry.flags & FLAG_AS_SET_TAIL:
                    flagged += 1
            scanned[position + 1] = in_shard
            as_set[position + 1] = flagged
        profile = (scanned, as_set)
        self._shard_profiles[shard] = profile
        return profile

    def as_set_mask(self) -> bytes:
        """Per-registry-id AS_SET flag mask (1 = excluded prefix).

        ``mask[prefix_id]`` is 1 exactly when that registry entry is
        AS_SET-terminated — the columnar detector's O(1) replacement
        for an attribute lookup on :class:`RegistryEntry`.  Computed
        once per reader.
        """
        mask = self._as_set_mask
        if mask is None:
            mask = self._as_set_mask = bytes(
                1 if entry.flags & FLAG_AS_SET_TAIL else 0
                for entry in self.registry
            )
        return mask

    def shard_mask(self, shard) -> bytes | None:
        """Per-registry-id shard membership mask (None = whole space).

        ``mask[prefix_id]`` is 1 exactly when the prefix belongs to
        ``shard`` — precomputed once per ``(reader, shard)`` so the
        columnar scan filters by indexing instead of re-hashing every
        conflicting prefix's network bits.
        """
        if shard is None:
            return None
        mask = self._shard_masks.get(shard)
        if mask is None:
            contains = shard.contains
            mask = self._shard_masks[shard] = bytes(
                1 if contains(entry.prefix) else 0
                for entry in self.registry
            )
        return mask

    def ground_truth(self) -> list[dict]:
        """Generator bookkeeping (benchmark validation only)."""
        with open(self.directory / "ground_truth.json") as handle:
            return json.load(handle)

    def has_incidents(self) -> bool:
        """True when the archive carries injected-incident labels."""
        return (self.directory / "incidents.json").is_file()

    def has_episode_index(self) -> bool:
        """True when the archive carries an episode query index.

        The index (``episodes.idx``, see :mod:`repro.analysis.index`)
        is a by-product of ``repro analyze --index``; it answers
        ``repro query`` and the serve daemon's history route without
        re-folding the study.
        """
        return (self.directory / "episodes.idx").is_file()

    def incident_labels(self) -> list[dict]:
        """Injected-incident ground truth rows (see ``write_incidents``).

        An archive generated without incidents simply has no labels:
        the answer key is empty, not an error.
        """
        path = self.directory / "incidents.json"
        if not path.is_file():
            return []
        with open(path) as handle:
            return json.load(handle)

    def has_roas(self) -> bool:
        """True when the archive carries a ROA database."""
        return (self.directory / "roas.json").is_file()

    def roas(self) -> list[dict]:
        """ROA rows written by :meth:`ArchiveWriter.write_roas`.

        Empty when the world was generated without an RPKI layer —
        feed the rows to :meth:`repro.netbase.rpki.RoaTable.from_rows`.
        """
        path = self.directory / "roas.json"
        if not path.is_file():
            return []
        with open(path) as handle:
            return json.load(handle)


def read_day_index(directory: FsPath | str) -> tuple[list[int], int]:
    """The v2 day index of an archive: ``(frame offsets, frames end)``.

    Reads only the trailer and the fixed-width index — not the interned
    tables, not the frames — so task partitioning can hand workers
    byte-offset ranges without the coordinator decoding anything.
    Frame ``k`` occupies ``[offsets[k], offsets[k+1])`` (the last one
    ends at ``frames_end``); workers re-validate frame checksums when
    they decode.  :class:`ArchiveError` if the store is not v2 or its
    index is damaged.
    """
    path = FsPath(directory) / "days.bin"
    with open(path, "rb") as handle:
        if handle.read(len(MAGIC_V2)) != MAGIC_V2:
            raise ArchiveError(f"{path} is not a v2 day store")
        size = handle.seek(0, os.SEEK_END)
        if size < len(MAGIC_V2) + _TRAILER.size:
            raise ArchiveError(
                "v2 day store truncated: no room for the footer trailer"
            )
        trailer_start = size - _TRAILER.size
        handle.seek(trailer_start)
        footer_start, index_start, num_days, _footer_crc = _parse_trailer(
            handle.read(_TRAILER.size), size
        )
        handle.seek(index_start)
        raw = handle.read(8 * num_days)
        if len(raw) < 8 * num_days:
            raise ArchiveError("v2 day index truncated")
        offsets = list(struct.unpack(f"<{num_days}Q", raw))
    return offsets, footer_start


#: Manifest keys recomputed by every writer; everything else is carried
#: over verbatim when converting between formats.
_WRITER_MANIFEST_KEYS = ("format", "num_prefixes", "num_paths", "num_days")

#: Side files copied verbatim by :func:`convert_archive`: ground truth
#: plus the episode query index, which is format-independent (it
#: describes the study's episodes, not the day-store encoding).
_SIDE_FILES = (
    "ground_truth.json",
    "incidents.json",
    "roas.json",
    "episodes.idx",
)


def reencode_archive(
    reader: ArchiveReader,
    writer: ArchiveWriter,
    records=None,
) -> None:
    """Stream ``reader``'s whole world into ``writer`` and finalize it.

    Registry ids, path-table ids, day records and manifest extras are
    preserved exactly; the writer's ``format`` decides the day-store
    encoding.  ``records`` optionally supplies pre-materialized day
    records (the benchmarks use this to time pure writes).  Shared by
    :func:`convert_archive` and ``benchmarks/bench_archive.py`` so the
    two can never drift on what "the same archive" means.
    """
    for entry in reader.registry:
        writer.register_prefix(
            entry.prefix,
            entry.owner,
            entry.created_day,
            flags=entry.flags,
        )
    for path in reader.paths:
        writer.intern_path(path)
    for record in reader.iter_days() if records is None else records:
        writer.write_day(record)
    extras = {
        key: value
        for key, value in reader.manifest.items()
        if key not in _WRITER_MANIFEST_KEYS
    }
    writer.finalize(extras)


def convert_archive(
    source: FsPath | str,
    destination: FsPath | str,
    *,
    format: str = "v2",
) -> dict:
    """Re-encode a CDS archive into ``format`` (``"v1"`` or ``"v2"``).

    Reads every day record from ``source`` and writes an equivalent
    archive at ``destination``: registry, path table, manifest extras,
    the ground-truth side files and any exported ``mrt/`` day dumps
    carry over unchanged (a ``v1`` → ``v1`` conversion is
    byte-identical), only the day-store encoding differs.  The conversion is **atomic**: everything is built in a
    hidden temporary directory beside the destination and renamed into
    place only once complete, so a corrupt source — or a crash mid-way
    — can never leave a half-written archive behind.

    Returns a summary dict (source/target formats and counts).
    Raises :class:`ArchiveError` on corrupt input,
    :class:`FileExistsError` if ``destination`` already exists.
    """
    if format not in _FORMAT_NAMES:
        raise ValueError(
            f"unknown archive format {format!r}; expected 'v1' or 'v2'"
        )
    source = FsPath(source)
    destination = FsPath(destination)
    if destination.exists():
        raise FileExistsError(
            f"destination {destination} already exists; refusing to "
            f"overwrite an archive"
        )
    reader = ArchiveReader(source)
    source_format = reader.format
    destination.parent.mkdir(parents=True, exist_ok=True)
    staging = destination.parent / (
        f".{destination.name}.converting-{os.getpid()}"
    )
    if staging.exists():
        shutil.rmtree(staging)
    try:
        writer = ArchiveWriter(staging, format=format)
        reencode_archive(reader, writer)
        for name in _SIDE_FILES:
            if (source / name).is_file():
                shutil.copyfile(source / name, staging / name)
        if (source / "mrt").is_dir():
            # Exported MRT day dumps ride along with the archive.
            shutil.copytree(source / "mrt", staging / "mrt")
        os.rename(staging, destination)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    finally:
        reader.close()
    return {
        "source": str(source),
        "destination": str(destination),
        "source_format": source_format,
        "target_format": format,
        "num_days": reader.num_days,
        "num_prefixes": reader.num_prefixes,
    }
