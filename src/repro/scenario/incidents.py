"""Fault-injection: scripted, labeled incidents for generated worlds.

The paper's Section VI attributes conflicts to causes but concedes its
valid/invalid heuristic is imperfect; measuring *how* imperfect needs
workloads where the truth is known.  This module provides them: a
composable library of incident scripts injected into a
:class:`~repro.scenario.world.ScenarioWorld` run, each emitting
machine-readable ground-truth labels (prefix, days, perpetrator, kind)
written beside the archive as ``incidents.json``.

Seven incident kinds cover the fault taxonomy the paper opens plus the
benign look-alikes follow-up work identified:

- ``EXACT_HIJACK`` — an unrelated AS co-originates an existing prefix
  for a few days (the classic origin hijack / fat-finger misconfig);
- ``SUBPREFIX_HIJACK`` — AS7007-style de-aggregation: the perpetrator
  announces new more-specific fragments of other organizations' blocks
  (no same-prefix MOAS at all — only sub-prefix analysis sees it);
- ``FAULTY_AGGREGATION`` — the perpetrator announces a covering
  aggregate over address space it does not own;
- ``PRIVATE_LEAK`` — an upstream leaks a private ASN into origin
  position (Section VI-C gone wrong);
- ``ANYCAST`` — a legitimate, stable, wide MOAS: many origins announce
  the prefix for most of the remaining study ("Live Long and Prosper");
- ``IXP_CONFLICT`` — a new exchange-point fabric prefix co-originated
  by its members (Section VI-A);
- ``FLAPPING_FAULT`` — a short-lived fault that keeps coming back:
  the conflict flickers on and off across a few weeks.

Scripts are immutable and composable: :meth:`IncidentScript.add`
returns a new script, :meth:`IncidentScript.canned` builds the standard
evaluation suite scaled to any study length, and scripts round-trip
through JSON for the ``repro simulate --incidents`` CLI.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, replace
from pathlib import Path as FsPath

from repro.netbase.asn import PRIVATE_AS_MIN
from repro.netbase.prefix import Prefix
from repro.scenario.events import Cause, ConflictEvent
from repro.topology.ixp import IXP_BLOCK
from repro.topology.model import Tier

#: Candidate draws before giving up on realizing one incident.
_MAX_ATTEMPTS = 32


class IncidentKind(enum.Enum):
    """The injectable incident taxonomy."""

    EXACT_HIJACK = "exact_hijack"
    SUBPREFIX_HIJACK = "subprefix_hijack"
    FAULTY_AGGREGATION = "faulty_aggregation"
    PRIVATE_LEAK = "private_leak"
    ANYCAST = "anycast"
    IXP_CONFLICT = "ixp_conflict"
    FLAPPING_FAULT = "flapping_fault"

    @property
    def is_malicious(self) -> bool:
        """True for incidents an operator would want paged about."""
        return self not in (IncidentKind.ANYCAST, IncidentKind.IXP_CONFLICT)


#: Default duration (days) per kind; ``None`` means "until study end"
#: (registry-shaped incidents cannot be withdrawn from a CDS archive,
#: and anycast / IXP conflicts are standing arrangements).
_DEFAULT_DURATION: dict[IncidentKind, int | None] = {
    IncidentKind.EXACT_HIJACK: 3,
    IncidentKind.SUBPREFIX_HIJACK: None,
    IncidentKind.FAULTY_AGGREGATION: None,
    IncidentKind.PRIVATE_LEAK: 60,
    IncidentKind.ANYCAST: None,
    IncidentKind.IXP_CONFLICT: None,
    IncidentKind.FLAPPING_FAULT: 28,
}


@dataclass(frozen=True)
class IncidentSpec:
    """One scripted incident: what to inject, when, and how big.

    ``perpetrator`` and target prefixes are drawn deterministically from
    the world when left unset, so a spec stays valid across scales.
    """

    kind: IncidentKind
    start_index: int
    duration: int | None = None  # None = kind default
    perpetrator: int | None = None
    count: int = 1  # fragments for SUBPREFIX_HIJACK
    origin_count: int = 5  # target origin-set width for ANYCAST
    duty_cycle: float = 0.4  # FLAPPING_FAULT presence fraction

    def __post_init__(self) -> None:
        if self.start_index < 0:
            raise ValueError(
                f"incident start_index must be >= 0, got {self.start_index}"
            )
        if self.duration is not None and self.duration < 1:
            raise ValueError(
                f"incident duration must be >= 1, got {self.duration}"
            )
        if self.count < 1:
            raise ValueError(f"incident count must be >= 1, got {self.count}")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError(
                f"duty cycle {self.duty_cycle} outside (0, 1]"
            )

    def resolved_duration(self, num_days: int) -> int:
        """Concrete duration inside a ``num_days`` study."""
        duration = self.duration
        if duration is None:
            duration = _DEFAULT_DURATION[self.kind]
        if duration is None:
            duration = num_days - self.start_index
        return max(1, min(duration, num_days - self.start_index))

    def to_dict(self) -> dict:
        """JSON-serializable form (the script-file row)."""
        return {
            "kind": self.kind.value,
            "start_index": self.start_index,
            "duration": self.duration,
            "perpetrator": self.perpetrator,
            "count": self.count,
            "origin_count": self.origin_count,
            "duty_cycle": self.duty_cycle,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "IncidentSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Unknown keys raise :class:`ValueError` (not a bare TypeError),
        so a mistyped script file — or an ``incidents.json`` *label*
        file passed where a script belongs — fails with a clean
        message.
        """
        known = dict(payload)
        if "kind" not in known:
            raise ValueError("incident spec is missing its 'kind' field")
        kind = IncidentKind(known.pop("kind"))
        allowed = {
            "start_index",
            "duration",
            "perpetrator",
            "count",
            "origin_count",
            "duty_cycle",
        }
        unexpected = sorted(set(known) - allowed)
        if unexpected:
            raise ValueError(
                "incident spec has unexpected fields "
                f"{', '.join(unexpected)} (is this a ground-truth label "
                f"file rather than a script?)"
            )
        try:
            return cls(kind=kind, **known)
        except TypeError as error:
            # e.g. a string where a number belongs: keep the clean
            # ValueError contract for script files.
            raise ValueError(f"invalid incident spec: {error}") from None


@dataclass(frozen=True)
class IncidentLabel:
    """Ground truth for one injected prefix: the answer key row."""

    kind: IncidentKind
    prefix: Prefix
    start_index: int
    end_index: int
    perpetrator: int | None
    origins: tuple[int, ...]

    @property
    def duration_days(self) -> int:
        return self.end_index - self.start_index + 1

    def to_dict(self) -> dict:
        """The ``incidents.json`` row for this label."""
        return {
            "kind": self.kind.value,
            "prefix": str(self.prefix),
            "start_index": self.start_index,
            "end_index": self.end_index,
            "perpetrator": self.perpetrator,
            "origins": list(self.origins),
            "malicious": self.kind.is_malicious,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "IncidentLabel":
        return cls(
            kind=IncidentKind(payload["kind"]),
            prefix=Prefix.parse(payload["prefix"]),
            start_index=payload["start_index"],
            end_index=payload["end_index"],
            perpetrator=payload["perpetrator"],
            origins=tuple(payload["origins"]),
        )


@dataclass(frozen=True)
class IncidentScript:
    """An immutable, composable sequence of incident specs."""

    specs: tuple[IncidentSpec, ...] = ()

    def add(self, kind: IncidentKind | str, start_index: int, **options) -> "IncidentScript":
        """A new script with one more incident appended."""
        if isinstance(kind, str):
            kind = IncidentKind(kind)
        spec = IncidentSpec(kind=kind, start_index=start_index, **options)
        return IncidentScript(specs=self.specs + (spec,))

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @classmethod
    def canned(cls, num_days: int) -> "IncidentScript":
        """The standard evaluation suite: one incident of every kind.

        Placement scales with the study length so the same suite runs
        against a 100-day test window or the full 1279-day campaign.
        The benchmark F1 floor and the CI smoke job pin against this.
        """
        if num_days < 20:
            raise ValueError(
                f"canned suite needs a >= 20 day study, got {num_days}"
            )

        def day(fraction: float) -> int:
            return max(1, min(num_days - 2, int(num_days * fraction)))

        return (
            cls()
            .add(IncidentKind.ANYCAST, day(0.10))
            .add(IncidentKind.IXP_CONFLICT, day(0.15))
            .add(IncidentKind.PRIVATE_LEAK, day(0.25))
            .add(IncidentKind.EXACT_HIJACK, day(0.30), duration=3)
            .add(IncidentKind.SUBPREFIX_HIJACK, day(0.35), count=3)
            .add(IncidentKind.FAULTY_AGGREGATION, day(0.40))
            .add(
                IncidentKind.FLAPPING_FAULT,
                day(0.50),
                duration=min(28, max(10, num_days // 4)),
            )
            .add(IncidentKind.EXACT_HIJACK, day(0.70), duration=4)
        )

    # -- (de)serialization -------------------------------------------------

    def to_json(self) -> str:
        """The script as a JSON document (``--incidents`` file format)."""
        return json.dumps(
            {"incidents": [spec.to_dict() for spec in self.specs]},
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "IncidentScript":
        """Parse a :meth:`to_json` document.

        Malformed documents raise :class:`ValueError` with a usable
        message — including the easy mistake of handing over an
        ``incidents.json`` ground-truth *label* file (a JSON list)
        instead of a script (an object with an ``incidents`` array).
        """
        payload = json.loads(text)
        if not isinstance(payload, dict) or "incidents" not in payload:
            raise ValueError(
                "an incident script is a JSON object with an "
                "'incidents' array (a bare list is a ground-truth "
                "label file, not a script)"
            )
        rows = payload["incidents"]
        if not isinstance(rows, list) or not all(
            isinstance(row, dict) for row in rows
        ):
            raise ValueError(
                "'incidents' must be an array of incident-spec objects"
            )
        return cls(
            specs=tuple(IncidentSpec.from_dict(row) for row in rows)
        )

    @classmethod
    def from_spec(cls, spec: str, *, num_days: int) -> "IncidentScript":
        """Resolve a CLI ``--incidents`` value: ``canned`` or a file."""
        if spec.strip().lower() == "canned":
            return cls.canned(num_days)
        path = FsPath(spec)
        if not path.is_file():
            raise FileNotFoundError(
                f"no incident script at {spec!r} (and it is not 'canned')"
            )
        return cls.from_json(path.read_text())


class IncidentInjector:
    """Realizes a script against a live :class:`ScenarioWorld` run.

    The injector owns its own RNG stream (derived from the world seed
    under the ``"incidents"`` name), so incident target selection is
    deterministic per ``(seed, script)`` and independent of the organic
    generator's draw sequence.
    """

    def __init__(
        self,
        script: IncidentScript,
        *,
        model,
        routing,
        streams,
        num_days: int,
        is_conflicted,
    ) -> None:
        self.script = script
        self.model = model
        self.routing = routing
        self.num_days = num_days
        self._is_conflicted = is_conflicted
        self._rng = streams.python("incidents")
        self._pending: dict[int, list[IncidentSpec]] = {}
        self.unrealized: list[IncidentSpec] = []
        for spec in script:
            if spec.start_index >= num_days:
                # Scheduled past the study window: report it instead of
                # silently dropping a labeled workload.
                self.unrealized.append(spec)
            else:
                self._pending.setdefault(spec.start_index, []).append(spec)
        self.labels: list[IncidentLabel] = []
        #: Prefixes any incident already touched (labels stay unique).
        self._touched: set[Prefix] = set()
        self._ixp_counter = 0
        self._population_cache: list[Prefix] = []
        self._as_population_cache: list[int] = []

    def touched(self, prefix: Prefix) -> bool:
        """Whether any incident has claimed ``prefix``.

        The world keeps organic events off touched prefixes for the
        rest of the study, so every label stays the sole cause of its
        prefix's episode.
        """
        return prefix in self._touched

    # -- the per-day hook ---------------------------------------------------

    def inject_day(
        self, day_index: int, active_peers: list[int], writer
    ) -> list[ConflictEvent]:
        """Realize every incident scripted for ``day_index``.

        Returns conflict events for the world to admit; registry-shaped
        incidents (sub-prefix fragments, aggregates, IXP fabrics) are
        registered on ``writer`` directly.  Ground truth accumulates in
        :attr:`labels`; incidents that found no viable target after
        bounded retries land in :attr:`unrealized` instead of raising —
        a scripted world must keep running.
        """
        events: list[ConflictEvent] = []
        for spec in self._pending.pop(day_index, []):
            realize = getattr(self, f"_realize_{spec.kind.value}")
            realized = realize(spec, day_index, active_peers, writer)
            if realized is None:
                self.unrealized.append(spec)
            else:
                events.extend(realized)
        return events

    # -- per-kind realization ----------------------------------------------

    def _realize_exact_hijack(
        self, spec, day_index, active_peers, writer
    ) -> list[ConflictEvent] | None:
        picked = self._pick_victim(exclude_owner=spec.perpetrator)
        if picked is None:
            return None
        prefix, owner = picked
        perpetrator = spec.perpetrator
        for _ in range(_MAX_ATTEMPTS):
            if perpetrator is None:
                perpetrator = self._random_as(exclude={owner})
            if perpetrator is None or perpetrator == owner:
                perpetrator = None
                continue
            if self.routing.conflict_visible(
                [owner, perpetrator], active_peers
            ):
                break
            if spec.perpetrator is not None:
                # A pinned but invisible perpetrator: try other victims.
                picked = self._pick_victim(exclude_owner=perpetrator)
                if picked is None:
                    return None
                prefix, owner = picked
                continue
            perpetrator = None
        else:
            return None
        end = day_index + spec.resolved_duration(self.num_days) - 1
        event = ConflictEvent(
            prefix=prefix,
            origins=(owner, perpetrator),
            cause=Cause.MISCONFIG,
            start_index=day_index,
            end_index=end,
        )
        self._label(spec.kind, prefix, day_index, end, perpetrator, event.origins)
        return [event]

    def _realize_flapping_fault(
        self, spec, day_index, active_peers, writer
    ) -> list[ConflictEvent] | None:
        realized = self._realize_exact_hijack(
            replace(spec, kind=IncidentKind.EXACT_HIJACK),
            day_index,
            active_peers,
            writer,
        )
        if realized is None:
            return None
        (event,) = realized
        # Re-shape the hijack into an intermittent one and re-label it.
        flickering = ConflictEvent(
            prefix=event.prefix,
            origins=event.origins,
            cause=event.cause,
            start_index=event.start_index,
            end_index=event.end_index,
            duty_cycle=spec.duty_cycle,
            flicker_seed=len(self.labels),
        )
        self.labels[-1] = replace(
            self.labels[-1], kind=IncidentKind.FLAPPING_FAULT
        )
        return [flickering]

    def _realize_private_leak(
        self, spec, day_index, active_peers, writer
    ) -> list[ConflictEvent] | None:
        for _ in range(_MAX_ATTEMPTS):
            picked = self._pick_victim()
            if picked is None:
                return None
            prefix, owner = picked
            providers = self.model.graph.providers_of(owner)
            if not providers:
                continue
            # Two upstreams front the customer; one forgot to strip the
            # private ASN, so it surfaces in origin position behind that
            # provider — the same shape the organic PRIVATE_AS process
            # uses for a leak (a leaf customer joining the graph).
            if len(providers) >= 2:
                clean, leaky = self._rng.sample(providers, k=2)
            else:
                clean = providers[0]
                others = [
                    asn
                    for asn in self.model.ases_in_tier(Tier.TRANSIT)
                    if asn not in (owner, clean)
                ]
                if not others:
                    continue
                leaky = self._rng.choice(others)
            leaked = self._fresh_private_asn()
            self.model.graph.add_as(leaked)
            self.model.graph.add_customer(leaky, leaked)
            if not self.routing.conflict_visible(
                [clean, leaked], active_peers
            ):
                continue
            end = day_index + spec.resolved_duration(self.num_days) - 1
            event = ConflictEvent(
                prefix=prefix,
                origins=tuple(sorted((clean, leaked))),
                cause=Cause.PRIVATE_AS,
                start_index=day_index,
                end_index=end,
            )
            self._label(spec.kind, prefix, day_index, end, leaked, event.origins)
            return [event]
        return None

    def _realize_anycast(
        self, spec, day_index, active_peers, writer
    ) -> list[ConflictEvent] | None:
        want = max(4, spec.origin_count)
        transits = self.model.ases_in_tier(Tier.TRANSIT)
        best: tuple[Prefix, tuple[int, ...]] | None = None
        for _ in range(_MAX_ATTEMPTS):
            picked = self._pick_victim()
            if picked is None:
                return None
            prefix, owner = picked
            pool = [asn for asn in transits if asn != owner]
            if len(pool) < want:
                return None
            candidates = [
                owner,
                *self._rng.sample(pool, k=min(len(pool), want + 2)),
            ]
            # Keep exactly the origins that win at some peer: the event
            # then *is* the wide stable conflict anycast looks like.
            winners = tuple(
                sorted(
                    self.routing.visible_origins(candidates, active_peers)
                )
            )
            if len(winners) >= want:
                best = (prefix, winners[:want] if len(winners) > want else winners)
                break
            if len(winners) >= 2 and best is None:
                best = (prefix, winners)
        if best is None:
            return None
        prefix, origins = best
        end = day_index + spec.resolved_duration(self.num_days) - 1
        event = ConflictEvent(
            prefix=prefix,
            origins=origins,
            cause=Cause.ANYCAST,
            start_index=day_index,
            end_index=end,
        )
        self._label(spec.kind, prefix, day_index, end, None, origins)
        return [event]

    def _realize_ixp_conflict(
        self, spec, day_index, active_peers, writer
    ) -> list[ConflictEvent] | None:
        transits = self.model.ases_in_tier(Tier.TRANSIT)
        if len(transits) < 2:
            return None
        for _ in range(_MAX_ATTEMPTS):
            members = tuple(
                sorted(self._rng.sample(transits, k=min(4, len(transits))))
            )
            if len(self.routing.visible_origins(list(members), active_peers)) >= 2:
                break
        else:
            return None
        # A fresh fabric /24 from the top of the held-out IXP block,
        # clear of the organically generated exchange points.
        from repro.topology.ixp import ixp_prefix

        while True:
            index = 255 - self._ixp_counter
            self._ixp_counter += 1
            if index < 0:
                return None
            prefix = ixp_prefix(index)
            if not writer.has_prefix(prefix):
                break
        from repro.scenario.archive import FLAG_EXCHANGE_POINT

        writer.register_prefix(
            prefix, members[0], day_index, flags=FLAG_EXCHANGE_POINT
        )
        end = day_index + spec.resolved_duration(self.num_days) - 1
        event = ConflictEvent(
            prefix=prefix,
            origins=members,
            cause=Cause.EXCHANGE_POINT,
            start_index=day_index,
            end_index=end,
        )
        self._label(spec.kind, prefix, day_index, end, None, members)
        return [event]

    def _realize_subprefix_hijack(
        self, spec, day_index, active_peers, writer
    ) -> list[ConflictEvent] | None:
        perpetrator = spec.perpetrator or self._random_as(exclude=set())
        if perpetrator is None:
            return None
        end = self.num_days - 1
        # All-or-nothing: collect every fragment before registering any,
        # so a partially-realizable incident reports as unrealized
        # instead of silently shrinking the labeled workload.
        fragments: list[Prefix] = []
        for _ in range(_MAX_ATTEMPTS * spec.count):
            if len(fragments) >= spec.count:
                break
            picked = self._pick_victim(exclude_owner=perpetrator)
            if picked is None:
                break
            victim, _owner = picked
            if victim.length > 22:
                continue
            fragment = Prefix(victim.network, victim.length + 2, strict=False)
            if (
                writer.has_prefix(fragment)
                or fragment in self._touched
                or fragment in fragments
            ):
                continue
            fragments.append(fragment)
        if len(fragments) < spec.count:
            return None
        for fragment in fragments:
            writer.register_prefix(fragment, perpetrator, day_index)
            self._label(
                spec.kind, fragment, day_index, end, perpetrator,
                (perpetrator,),
            )
        return []

    def _realize_faulty_aggregation(
        self, spec, day_index, active_peers, writer
    ) -> list[ConflictEvent] | None:
        perpetrator = spec.perpetrator or self._random_as(exclude=set())
        if perpetrator is None:
            return None
        for _ in range(_MAX_ATTEMPTS):
            picked = self._pick_victim(exclude_owner=perpetrator)
            if picked is None:
                return None
            victim, owner = picked
            if victim.length < 18:
                continue
            aggregate = Prefix(
                victim.network, victim.length - 2, strict=False
            )
            if writer.has_prefix(aggregate) or aggregate in self._touched:
                continue
            writer.register_prefix(aggregate, perpetrator, day_index)
            end = self.num_days - 1
            self._label(
                spec.kind, aggregate, day_index, end, perpetrator,
                (perpetrator,),
            )
            return []
        return None

    # -- draw helpers -------------------------------------------------------

    def _label(
        self, kind, prefix, start, end, perpetrator, origins
    ) -> None:
        self.labels.append(
            IncidentLabel(
                kind=kind,
                prefix=prefix,
                start_index=start,
                end_index=min(end, self.num_days - 1),
                perpetrator=perpetrator,
                origins=tuple(origins),
            )
        )
        self._touched.add(prefix)

    def _pick_victim(
        self, exclude_owner: int | None = None
    ) -> tuple[Prefix, int] | None:
        # Growth adds prefixes daily; rebuild the cached list only when
        # the table size changed (same pattern as the event generator).
        if len(self._population_cache) != len(self.model.prefix_owner):
            self._population_cache = list(self.model.prefix_owner)
        population = self._population_cache
        for _ in range(_MAX_ATTEMPTS):
            prefix = self._rng.choice(population)
            owner = self.model.prefix_owner[prefix]
            if (
                prefix in self._touched
                or self._is_conflicted(prefix)
                or owner == exclude_owner
                or IXP_BLOCK.contains(prefix)
            ):
                continue
            return prefix, owner
        return None

    def _random_as(self, exclude: set[int]) -> int | None:
        if len(self._as_population_cache) != len(self.model.as_info):
            self._as_population_cache = list(self.model.as_info)
        for _ in range(_MAX_ATTEMPTS):
            asn = self._rng.choice(self._as_population_cache)
            if asn not in exclude:
                return asn
        return None

    def _fresh_private_asn(self) -> int:
        while True:
            candidate = PRIVATE_AS_MIN + self._rng.randrange(1022)
            if candidate not in self.model.graph:
                return candidate
