"""Replaying a CDS archive as a live BGP update stream.

The archive stores daily table snapshots; real collectors also log the
*updates* between them (the BGP4MP files Route Views keeps alongside
RIB dumps).  This module reconstructs that update stream: diffing
consecutive day records per (peer, prefix) yields the announcements and
withdrawals that must have happened in between, emitted as genuine
:class:`~repro.mrt.records.Bgp4mpMessage` objects.

This is what feeds the streaming detector
(:mod:`repro.core.realtime`) with archive-faithful workloads — the
bridge between the paper's offline methodology and the real-time
systems its conclusion anticipates.
"""

from __future__ import annotations

import datetime
from collections.abc import Iterator

from repro.mrt.attributes import PathAttributes
from repro.mrt.records import Bgp4mpMessage
from repro.netbase.aspath import ASPath
from repro.netbase.prefix import Prefix
from repro.scenario.archive import ArchiveReader, DayRecord

#: Synthetic collector-side address used in generated messages.
_COLLECTOR_ADDRESS = 0xC6336401  # 198.51.100.1
_COLLECTOR_ASN = 6447


def _timestamp(day: datetime.date, offset_seconds: int = 0) -> int:
    midnight = datetime.datetime.combine(
        day, datetime.time(0, 0), tzinfo=datetime.timezone.utc
    )
    return int(midnight.timestamp()) + offset_seconds


def _route_map(
    record: DayRecord, reader: ArchiveReader
) -> dict[tuple[int, int], tuple[int, ...]]:
    """(peer, prefix_id) -> AS path for all event-touched rows."""
    return {
        (row.peer_asn, row.prefix_id): reader.path(row.path_id)
        for row in record.rows
    }


def diff_days(
    previous: DayRecord,
    current: DayRecord,
    reader: ArchiveReader,
) -> Iterator[tuple[int, Bgp4mpMessage]]:
    """Updates that transform ``previous`` into ``current``.

    Only event-touched rows change between snapshots (base-table growth
    is announced too: new prefixes appear as announcements from every
    active peer).  Yields ``(timestamp, message)`` pairs ordered by
    peer then prefix, spread across the day for realism.
    """
    before = _route_map(previous, reader)
    after = _route_map(current, reader)

    changes: list[tuple[int, Prefix, tuple[int, ...] | None]] = []
    for key, path in after.items():
        if before.get(key) != path:
            peer, prefix_id = key
            changes.append((peer, reader.prefix(prefix_id), path))
    for key in before:
        if key not in after:
            peer, prefix_id = key
            changes.append((peer, reader.prefix(prefix_id), None))
    # New base-table prefixes (growth) announce from every active peer.
    for prefix_id in range(previous.alive_count, current.alive_count):
        entry = reader.registry[prefix_id]
        if any(key[1] == prefix_id for key in after):
            continue  # already covered by event rows
        for peer in current.active_peers:
            changes.append(
                (peer, entry.prefix, (peer, entry.owner))
            )

    changes.sort(key=lambda item: (item[0], item[1].sort_key()))
    spread = max(1, 86_000 // max(len(changes), 1))
    for index, (peer, prefix, path) in enumerate(changes):
        timestamp = _timestamp(current.day, index * spread % 86_000)
        if path is None:
            message = Bgp4mpMessage(
                peer_asn=peer,
                local_asn=_COLLECTOR_ASN,
                interface_index=0,
                peer_address=_COLLECTOR_ADDRESS,
                local_address=_COLLECTOR_ADDRESS,
                withdrawn=(prefix,),
            )
        else:
            message = Bgp4mpMessage(
                peer_asn=peer,
                local_asn=_COLLECTOR_ASN,
                interface_index=0,
                peer_address=_COLLECTOR_ADDRESS,
                local_address=_COLLECTOR_ADDRESS,
                attributes=PathAttributes(
                    as_path=ASPath.from_sequence(path)
                ),
                announced=(prefix,),
            )
        yield (timestamp, message)


def replay_archive(
    archive_dir,
    *,
    include_initial_table: bool = False,
) -> Iterator[tuple[int, Bgp4mpMessage]]:
    """The archive's full life as a (timestamp, update) stream.

    With ``include_initial_table`` the first snapshot is emitted as a
    burst of announcements (a session reset / initial table transfer);
    otherwise the stream starts with the first day-to-day diff.
    """
    reader = ArchiveReader(archive_dir)
    previous: DayRecord | None = None
    for record in reader.iter_days():
        if previous is None:
            if include_initial_table:
                for row in record.rows:
                    yield (
                        _timestamp(record.day),
                        Bgp4mpMessage(
                            peer_asn=row.peer_asn,
                            local_asn=_COLLECTOR_ASN,
                            interface_index=0,
                            peer_address=_COLLECTOR_ADDRESS,
                            local_address=_COLLECTOR_ADDRESS,
                            attributes=PathAttributes(
                                as_path=ASPath.from_sequence(
                                    reader.path(row.path_id)
                                )
                            ),
                            announced=(reader.prefix(row.prefix_id),),
                        ),
                    )
        else:
            yield from diff_days(previous, record, reader)
        previous = record
