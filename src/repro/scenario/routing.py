"""Collector-side routing: what each peer's table says about an origin.

Wraps the Gao-Rexford oracle but keeps only the collector peers' rows,
so memory stays bounded while the study touches thousands of origins.
The topology is append-only (see :mod:`repro.topology.growth`), so a
peer view computed once stays valid for the rest of the study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.oracle import GaoRexfordOracle
from repro.bgp.policy import RouteType
from repro.bgp.relationships import ASGraph


@dataclass(frozen=True)
class PeerView:
    """One collector peer's converged route towards one origin AS."""

    route_type: RouteType
    length: int
    path: tuple[int, ...]  # starts at the peer, ends at the origin

    def preference_key(self) -> tuple[int, int]:
        """Sort key: better routes compare greater."""
        return (int(self.route_type), -self.length)


class CollectorRouting:
    """Per-origin peer views with bounded caching."""

    def __init__(self, graph: ASGraph, peer_asns: list[int]) -> None:
        self.graph = graph
        self.peer_asns = list(peer_asns)
        self._oracle = GaoRexfordOracle(graph)
        self._views: dict[int, dict[int, PeerView]] = {}

    def peer_views(self, origin: int) -> dict[int, PeerView]:
        """Each peer's route to ``origin`` (peers without a route omitted)."""
        if origin in self._views:
            return self._views[origin]
        views: dict[int, PeerView] = {}
        routes = self._oracle.routes_to(origin)
        for peer in self.peer_asns:
            route = routes.get(peer)
            if route is None:
                continue
            path = self._oracle.path(peer, origin)
            assert path is not None
            views[peer] = PeerView(
                route_type=route.route_type, length=route.length, path=path
            )
        # Evict the oracle's full per-AS table: only peer rows are
        # needed again, and the full tables are what would blow memory.
        self._oracle._cache.pop(origin, None)
        self._views[origin] = views
        return views

    def choose_origins(
        self, origins: list[int], active_peers: list[int]
    ) -> dict[int, tuple[int, PeerView]]:
        """Decision process across a MOAS conflict, per active peer.

        Each peer picks its best route among ``origins`` (customer >
        peer > provider, then shortest, then lowest origin ASN).
        Returns ``{peer: (chosen origin, view)}``; peers that reach no
        origin are omitted.
        """
        views_by_origin = {
            origin: self.peer_views(origin) for origin in origins
        }
        chosen: dict[int, tuple[int, PeerView]] = {}
        for peer in active_peers:
            best: tuple[tuple[int, int, int], int, PeerView] | None = None
            for origin in origins:
                view = views_by_origin[origin].get(peer)
                if view is None:
                    continue
                key = view.preference_key() + (-origin,)
                if best is None or key > best[0]:
                    best = (key, origin, view)
            if best is not None:
                chosen[peer] = (best[1], best[2])
        return chosen

    def pivot_views(
        self,
        pivot: int,
        origins: tuple[int, ...],
        active_peers: list[int],
    ) -> dict[int, tuple[int, PeerView]]:
        """Views when ``pivot`` exports different routes to different peers.

        This realizes the paper's OrigTranAS and SplitView patterns: a
        single AS announces, for the same prefix, alternatives ending at
        different origins.  Which alternative reaches which collector
        peer depends on the pivot's per-neighbor export choices; we
        partition peers deterministically (round-robin in ASN order),
        guaranteeing both alternatives stay visible whenever at least
        two peers can reach the pivot.

        Peers' paths run to the pivot as usual; alternatives whose
        origin is not the pivot extend the path one hop beyond it.
        """
        base = self.peer_views(pivot)
        reachable = [peer for peer in sorted(active_peers) if peer in base]
        result: dict[int, tuple[int, PeerView]] = {}
        for index, peer in enumerate(reachable):
            origin = origins[index % len(origins)]
            view = base[peer]
            if origin != pivot:
                view = PeerView(
                    route_type=view.route_type,
                    length=view.length + 1,
                    path=view.path + (origin,),
                )
            result[peer] = (origin, view)
        return result

    def pivot_reachable_peers(
        self, pivot: int, active_peers: list[int]
    ) -> int:
        """How many active peers have a route to ``pivot``."""
        base = self.peer_views(pivot)
        return sum(1 for peer in active_peers if peer in base)

    def visible_origins(
        self, origins: list[int], active_peers: list[int]
    ) -> set[int]:
        """Origins that appear in at least one active peer's table."""
        return {
            origin for origin, _view in
            self.choose_origins(origins, active_peers).values()
        }

    def conflict_visible(
        self, origins: list[int], active_peers: list[int]
    ) -> bool:
        """Whether the collector would record a MOAS conflict.

        True iff at least two distinct origins win somewhere among the
        active peers — the collector-side analogue of the paper's
        observation that single-ISP views see far fewer conflicts.
        """
        seen: set[int] = set()
        for origin, _view in self.choose_origins(
            origins, active_peers
        ).values():
            seen.add(origin)
            if len(seen) >= 2:
                return True
        return False
