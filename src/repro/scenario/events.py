"""MOAS cause processes.

Every cause the paper discusses in Section VI is a first-class event
type here, with origin-selection logic that reproduces the *path
structure* each cause creates (which is what the figure-6 classifier
sees):

- ``EXCHANGE_POINT`` — IXP members all originate the fabric prefix;
  valid, lasts essentially the whole study (VI-A).
- ``STATIC_MULTIHOMING`` — multi-homing without BGP (VI-B): either a
  provider originates its customer's prefix alongside the customer
  (creating OrigTranAS-shaped path pairs) or two providers front a
  BGP-silent customer.
- ``PRIVATE_AS`` — ASE multi-homing (VI-C): observationally identical
  to the hidden-customer case, with a small chance of leaking the
  private ASN into origin position.
- ``TRAFFIC_ENGINEERING`` — multi-path announcement practices (V):
  dual-site organizations behind a shared upstream (SplitView-shaped)
  or provider+customer co-origination (OrigTranAS-shaped).
- ``PROVIDER_TRANSITION`` — both old and new provider originate during
  a customer's move (VI-F); short-lived and valid.
- ``MISCONFIG`` — an unrelated AS falsely originates the prefix (VI-E);
  short-lived and invalid.
- ``FAULT_MASS_ORIGINATION`` — the scripted historical incidents
  (AS 8584 on 1998-04-07, AS 15412 via AS 3561 starting 2001-04-06).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.netbase.asn import PRIVATE_AS_MIN
from repro.netbase.prefix import Prefix
from repro.util.rng import derive_seed


class Cause(enum.Enum):
    """Why a prefix has multiple origins."""

    EXCHANGE_POINT = "exchange_point"
    STATIC_MULTIHOMING = "static_multihoming"
    PRIVATE_AS = "private_as"
    TRAFFIC_ENGINEERING = "traffic_engineering"
    PROVIDER_TRANSITION = "provider_transition"
    MISCONFIG = "misconfig"
    FAULT_MASS_ORIGINATION = "fault_mass_origination"
    #: Stable wide multi-origin service (injected incidents only; the
    #: paper found none, so the organic generator never draws it).
    ANYCAST = "anycast"

    @property
    def is_valid(self) -> bool:
        """True for operationally-intended conflicts (paper VI-A..D, F)."""
        return self not in (Cause.MISCONFIG, Cause.FAULT_MASS_ORIGINATION)


@dataclass(frozen=True)
class ConflictEvent:
    """One cause instance making ``prefix`` multi-origin for a while.

    ``start_index``/``end_index`` are calendar day indices (inclusive);
    ``start_index`` may be negative for conflicts already in progress
    when the study window opens.  Intermittent events (duty cycle < 1)
    flicker deterministically: the paper's duration metric counts total
    days present "regardless of whether the conflict was continuous".
    """

    prefix: Prefix
    origins: tuple[int, ...]
    cause: Cause
    start_index: int
    end_index: int
    duty_cycle: float = 1.0
    flicker_seed: int = 0
    #: For OrigTranAS / SplitView shaped conflicts: the AS announcing
    #: *different* routes for the prefix to different neighbors
    #: (Section V).  Collector peers then see the pivot's alternatives
    #: rather than choosing among independent origin trees.  The pivot
    #: may itself be one of the origins (provider co-origination).
    pivot: int | None = None

    def __post_init__(self) -> None:
        if len(self.origins) < 2:
            raise ValueError(
                f"conflict event needs >= 2 origins, got {self.origins}"
            )
        if self.end_index < self.start_index:
            raise ValueError(
                f"event ends ({self.end_index}) before it starts "
                f"({self.start_index})"
            )
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError(f"duty cycle {self.duty_cycle} outside (0, 1]")
        if self.pivot is not None and len(self.origins) != 2:
            raise ValueError("pivot events must have exactly two origins")

    def active_on(self, day_index: int) -> bool:
        """Whether the conflict is visible on ``day_index``."""
        if not self.start_index <= day_index <= self.end_index:
            return False
        if self.duty_cycle >= 1.0:
            return True
        # First and last days always show, so recorded durations span
        # the event's true extent.
        if day_index in (self.start_index, self.end_index):
            return True
        draw = derive_seed(self.flicker_seed, str(day_index)) % 10_000
        return draw < self.duty_cycle * 10_000

    def uses_private_asn(self) -> bool:
        """True if a private ASN leaked into origin position."""
        return any(origin >= PRIVATE_AS_MIN for origin in self.origins)
