"""End-to-end study simulation: topology + events + collector + archive.

:func:`simulate_study` is the library's "generate the raw data" entry
point: it replays the full 1997-2001 measurement campaign (scaled) and
leaves behind a CDS archive that :mod:`repro.analysis` consumes exactly
as the paper consumed the NLANR/PCH archives.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from pathlib import Path as FsPath

from repro.netbase.prefix import Prefix
from repro.scenario.archive import (
    ArchiveWriter,
    DayRecord,
    FLAG_AS_SET_TAIL,
    FLAG_EXCHANGE_POINT,
    PeerRow,
)
from repro.scenario.calibration import (
    Calibration,
    DEFAULT_CALIBRATION,
    PAPER,
)
from repro.scenario.collector import CollectorConfig
from repro.scenario.events import ConflictEvent
from repro.scenario.generator import EventGenerator
from repro.scenario.incidents import IncidentInjector
from repro.scenario.routing import CollectorRouting
from repro.scenario.rpki import issue_roas
from repro.scenario.timeline import StudyTimeline
from repro.topology.generator import TopologyConfig, build_initial_model
from repro.topology.growth import GrowthModel
from repro.util.dates import PAPER_CALENDAR, StudyCalendar
from repro.util.rng import RngStreams


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything that defines one synthetic study run."""

    scale: float = 0.125
    seed: int = 20011108
    calendar: StudyCalendar = PAPER_CALENDAR
    #: Reproduce the ~70 missing-archive days of the real study.
    paper_archive_gaps: bool = True
    num_peers: int = 12
    initial_peers: int = 5
    calibration: Calibration = field(default_factory=lambda: DEFAULT_CALIBRATION)
    #: Prefixes whose routes end in AS sets (excluded by the paper).
    as_set_prefix_count: int = PAPER.as_set_prefixes
    #: Scripted, labeled incidents injected on top of the organic
    #: event processes (see :mod:`repro.scenario.incidents`); their
    #: ground truth is written beside the archive as ``incidents.json``.
    incidents: "IncidentScript | None" = None
    #: ROA issuance over the generated world (see
    #: :mod:`repro.scenario.rpki`); the resulting database is written
    #: beside the archive as ``roas.json`` with day-stamped validity
    #: windows.  ``None`` (the default) issues no ROAs.
    rpki: "RpkiConfig | None" = None
    #: Day-store encoding written by the collector: ``"v1"`` (the
    #: original stream, default) or ``"v2"`` (indexed/framed; see
    #: :mod:`repro.scenario.archive`).  The decoded records — and
    #: therefore every study result — are identical either way.
    archive_format: str = "v1"

    def topology_config(self) -> TopologyConfig:
        """The topology configuration at this scenario's scale."""
        return TopologyConfig(scale=self.scale)

    def scaled(self, value: int | float) -> int:
        """``value`` scaled down, never below 1."""
        return max(1, round(value * self.scale))


class ScenarioWorld:
    """Mutable simulation state across the study window."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self.streams = RngStreams(config.seed)
        self.calendar = config.calendar
        if config.paper_archive_gaps and config.calendar == PAPER_CALENDAR:
            self.timeline = StudyTimeline.paper_timeline(self.streams)
        else:
            self.timeline = StudyTimeline.fully_observed(config.calendar)

        topo_config = config.topology_config()
        self.model, self._plan, self._asn_factory = build_initial_model(
            topo_config, self.streams
        )
        self.growth = GrowthModel(
            self.model,
            self._plan,
            self._asn_factory,
            topo_config,
            self.streams,
            num_days=self.calendar.num_days,
        )
        self.collector = CollectorConfig.default_for_model(
            self.model,
            self.streams,
            num_days=self.calendar.num_days,
            num_peers=config.num_peers,
            initial_peers=config.initial_peers,
        )
        self.routing = CollectorRouting(
            self.model.graph, list(self.collector.all_peer_asns)
        )
        self.active_events: dict[Prefix, ConflictEvent] = {}
        self.event_log: list[dict] = []
        #: Prefixes any event ever conflicted (injected incidents avoid
        #: them so episode-level ground truth stays unambiguous).
        self._conflicted_ever: set[Prefix] = set()
        #: Per-conflicted-prefix cached day rows: prefix -> (n_peers, rows).
        self._row_cache: dict[Prefix, tuple[int, tuple[PeerRow, ...]]] = {}
        self.generator = EventGenerator(
            self.model,
            self.routing,
            config.calibration,
            self.streams,
            num_days=self.calendar.num_days,
            scale=config.scale,
            is_conflicted=self._organic_blocked,
        )
        self.incident_injector: IncidentInjector | None = None
        if config.incidents is not None:
            self.incident_injector = IncidentInjector(
                config.incidents,
                model=self.model,
                routing=self.routing,
                streams=self.streams,
                num_days=self.calendar.num_days,
                is_conflicted=lambda prefix: (
                    prefix in self.active_events
                    or prefix in self._conflicted_ever
                ),
            )

    def _organic_blocked(self, prefix: Prefix) -> bool:
        """Whether the organic generator must avoid ``prefix``.

        Actively conflicted prefixes are always off limits; prefixes an
        injected incident ever touched stay off limits for the rest of
        the study, so each incident label remains the sole explanation
        of its prefix's episode.  Without incidents this is exactly the
        pre-incident behavior (organic conflicts may recur).
        """
        if prefix in self.active_events:
            return True
        injector = self.incident_injector
        return injector is not None and injector.touched(prefix)

    # -- scripted incidents ------------------------------------------------

    def _scripted_events(
        self, day: datetime.date, day_index: int, active_peers: list[int]
    ) -> list[ConflictEvent]:
        config = self.config
        calibration = config.calibration
        if day == PAPER.spike_1998_date:
            count = config.scaled(calibration.spike_1998_conflicts)
            return self.generator.mass_origination(
                faulty_asn=PAPER.spike_1998_faulty_asn,
                day_index=day_index,
                durations=[1] * count,
                active_peers=active_peers,
            )
        if day == PAPER.spike_2001_start:
            durations = _decay_durations(
                [config.scaled(n) for n in calibration.spike_2001_daily]
            )
            return self.generator.mass_origination(
                faulty_asn=PAPER.spike_2001_faulty_asn,
                day_index=day_index,
                durations=durations,
                active_peers=active_peers,
            )
        return []

    # -- the main loop --------------------------------------------------------

    def run(
        self,
        archive_dir: FsPath | str,
        *,
        mrt_export_days: set[datetime.date] | None = None,
        workers: int = 1,
    ) -> dict:
        """Simulate the whole window and write the archive.

        ``mrt_export_days`` additionally dumps those days as genuine
        binary MRT TABLE_DUMP_V2 files under ``<archive_dir>/mrt/`` —
        the bridge to standard MRT tooling and the integration tests'
        proof that the compact archive and a full table dump agree.

        World evolution is a sequential stochastic process and always
        runs serially, but with ``workers > 1`` the MRT day dumps are
        encoded and written on a process pool, overlapping export I/O
        with the simulation itself (``0`` auto-detects the CPU count;
        ``1``, the default, never spawns a process).  The archive and
        dump bytes are identical either way.

        Returns a summary dict (also stored in the archive manifest).
        """
        from repro.util.workers import resolve_workers

        mrt_export_days = mrt_export_days or set()
        workers = resolve_workers(workers)
        writer = ArchiveWriter(
            archive_dir, format=self.config.archive_format
        )
        self._register_initial_prefixes(writer)

        first_peers = list(self.collector.active_peers(0))
        for event in self.generator.initial_events(first_peers):
            self._admit_event(event)

        export_pool = None
        export_futures = []
        if workers > 1 and mrt_export_days:
            from concurrent.futures import ProcessPoolExecutor

            export_pool = ProcessPoolExecutor(
                max_workers=min(workers, len(mrt_export_days))
            )
        try:
            observed_days = 0
            for day_index, day in enumerate(self.calendar):
                new_asns, new_prefixes = self.growth.grow_one_day(day_index)
                for prefix in new_prefixes:
                    writer.register_prefix(
                        prefix, self.model.prefix_owner[prefix], day_index
                    )
                active_peers = list(self.collector.active_peers(day_index))
                self._expire_events(day_index)
                for event in self.generator.births(day_index, active_peers):
                    self._admit_event(event)
                for event in self._scripted_events(
                    day, day_index, active_peers
                ):
                    self._admit_event(event)
                if self.incident_injector is not None:
                    for event in self.incident_injector.inject_day(
                        day_index, active_peers, writer
                    ):
                        self._admit_event(event)
                if self.timeline.is_observed(day):
                    record = self._day_record(
                        writer, day, day_index, active_peers
                    )
                    writer.write_day(record)
                    observed_days += 1
                    if day in mrt_export_days:
                        export_futures.append(
                            self._export_mrt_day(
                                FsPath(archive_dir),
                                writer,
                                record,
                                pool=export_pool,
                            )
                        )
            for future in export_futures:
                if hasattr(future, "result"):
                    future.result()
        finally:
            if export_pool is not None:
                export_pool.shutdown()

        summary = {
            "calendar_start": self.calendar.start.isoformat(),
            "calendar_end": self.calendar.end.isoformat(),
            "observed_days": observed_days,
            "scale": self.config.scale,
            "seed": self.config.seed,
            "num_ases_final": self.model.num_ases(),
            "num_prefixes_final": self.model.num_prefixes(),
            "events_total": len(self.event_log),
            "invisible_births": self.generator.invisible_births,
            "peers": [
                {"asn": asn, "join_day": join_day}
                for asn, join_day in self.collector.peer_schedule
            ],
        }
        if self.incident_injector is not None:
            summary["incidents_injected"] = len(
                self.incident_injector.labels
            )
            summary["incidents_unrealized"] = len(
                self.incident_injector.unrealized
            )
        roa_rows: list[dict] | None = None
        if self.config.rpki is not None:
            roa_rows = self._issue_roas(writer)
            summary["rpki"] = self.config.rpki.to_dict()
            summary["roas_issued"] = len(roa_rows)
        writer.finalize(summary)
        writer.write_ground_truth(self.event_log)
        if self.incident_injector is not None:
            writer.write_incidents(
                [label.to_dict() for label in self.incident_injector.labels]
            )
        if roa_rows is not None:
            writer.write_roas(roa_rows)
        return summary

    def _issue_roas(self, writer: ArchiveWriter) -> list[dict]:
        """The world's ROA database as canonical ``roas.json`` rows.

        Issued once the study has fully run, from the final registry
        and incident ground truth (see :mod:`repro.scenario.rpki`);
        draws come from the dedicated ``"rpki"`` RNG stream, so the
        database is deterministic per (seed, config, script).
        """
        from repro.netbase.rpki import RoaTable

        labels = (
            self.incident_injector.labels
            if self.incident_injector is not None
            else []
        )
        table = RoaTable(
            issue_roas(
                [
                    writer.registry_entry(prefix_id)
                    for prefix_id in range(writer.num_registered)
                ],
                labels,
                config=self.config.rpki,
                asns=sorted(self.model.as_info),
                rng=self.streams.python("rpki"),
                date_of_index=self.calendar.date_of,
                organic_events=self.event_log,
            )
        )
        return [roa.to_dict() for roa in table]

    # -- internals --------------------------------------------------------

    def _register_initial_prefixes(self, writer: ArchiveWriter) -> None:
        for prefix in sorted(
            self.model.prefix_owner, key=lambda p: p.sort_key()
        ):
            writer.register_prefix(
                prefix, self.model.prefix_owner[prefix], 0
            )
        for ixp in self.model.ixps:
            writer.register_prefix(
                ixp.prefix,
                ixp.members[0],
                0,
                flags=FLAG_EXCHANGE_POINT,
            )
        # AS-set-terminated aggregates: stable, excluded by the paper's
        # methodology; flagged so the detector can exclude and count.
        rng = self.streams.python("as-set-prefixes")
        count = max(2, round(self.config.as_set_prefix_count * self.config.scale))
        population = sorted(
            self.model.prefix_owner, key=lambda p: p.sort_key()
        )
        self._as_set_prefixes = rng.sample(population, k=count)
        for prefix in self._as_set_prefixes:
            # A covering aggregate whose route carries an AS_SET tail.
            aggregate = Prefix(
                prefix.network, max(8, prefix.length - 2), strict=False
            )
            if writer.has_prefix(aggregate):
                continue
            writer.register_prefix(
                aggregate,
                self.model.prefix_owner[prefix],
                0,
                flags=FLAG_AS_SET_TAIL,
            )

    def _admit_event(self, event: ConflictEvent) -> None:
        if event.prefix in self.active_events:
            return
        self.active_events[event.prefix] = event
        self._conflicted_ever.add(event.prefix)
        self.event_log.append(
            {
                "prefix": str(event.prefix),
                "origins": list(event.origins),
                "cause": event.cause.value,
                "valid": event.cause.is_valid,
                "start_index": event.start_index,
                "end_index": event.end_index,
                "duty_cycle": event.duty_cycle,
            }
        )

    def _expire_events(self, day_index: int) -> None:
        expired = [
            prefix
            for prefix, event in self.active_events.items()
            if event.end_index < day_index
        ]
        for prefix in expired:
            del self.active_events[prefix]
            self._row_cache.pop(prefix, None)

    def _day_record(
        self,
        writer: ArchiveWriter,
        day: datetime.date,
        day_index: int,
        active_peers: list[int],
    ) -> DayRecord:
        rows: list[PeerRow] = []
        for prefix, event in self.active_events.items():
            if not event.active_on(day_index):
                continue
            rows.extend(
                self._rows_for_event(writer, event, active_peers)
            )
        alive = writer.num_registered
        return DayRecord(
            day=day,
            day_index=day_index,
            alive_count=alive,
            active_peers=tuple(active_peers),
            rows=tuple(rows),
        )

    def _rows_for_event(
        self,
        writer: ArchiveWriter,
        event: ConflictEvent,
        active_peers: list[int],
    ) -> tuple[PeerRow, ...]:
        cached = self._row_cache.get(event.prefix)
        if cached is not None and cached[0] == len(active_peers):
            return cached[1]
        prefix_id = writer.prefix_id(event.prefix)
        if event.pivot is not None:
            chosen = self.routing.pivot_views(
                event.pivot, event.origins, active_peers
            )
        else:
            chosen = self.routing.choose_origins(
                list(event.origins), active_peers
            )
        rows = tuple(
            PeerRow(
                prefix_id=prefix_id,
                peer_asn=peer,
                origin=origin,
                path_id=writer.intern_path(view.path),
            )
            for peer, (origin, view) in sorted(chosen.items())
        )
        self._row_cache[event.prefix] = (len(active_peers), rows)
        return rows

    def _export_mrt_day(
        self,
        archive_dir: FsPath,
        writer: ArchiveWriter,
        record: DayRecord,
        *,
        pool=None,
    ):
        """Dump one day as a full MRT TABLE_DUMP_V2 file.

        The table holds every alive prefix for every active peer:
        non-conflicted prefixes carry the peer's converged path to the
        owner, event-touched prefixes carry exactly the day-record
        rows, and AS_SET-flagged aggregates end in a genuine AS_SET.

        The snapshot is always assembled inline (it reads live world
        state); with ``pool`` the encode-and-write step is submitted to
        the pool and its future returned instead of the output path,
        overlapping MRT serialization with the ongoing simulation.
        """
        from repro.mrt.writer import write_rib_snapshot
        from repro.netbase.aspath import ASPath
        from repro.netbase.rib import PeerId, RibSnapshot, Route

        overridden: dict[int, list[PeerRow]] = {}
        for row in record.rows:
            overridden.setdefault(row.prefix_id, []).append(row)

        snapshot = RibSnapshot(record.day)
        path_of: dict[int, tuple[int, ...]] = {}
        for prefix_id in range(record.alive_count):
            entry = writer.registry_entry(prefix_id)
            rows = overridden.get(prefix_id)
            if rows is not None:
                for row in rows:
                    snapshot.add(
                        Route(
                            entry.prefix,
                            ASPath.from_sequence(
                                writer.path_by_id(row.path_id)
                            ),
                            PeerId(asn=row.peer_asn),
                        )
                    )
                continue
            views = self.routing.peer_views(entry.owner)
            for peer in record.active_peers:
                view = views.get(peer)
                if view is None:
                    continue
                path = ASPath.from_sequence(view.path)
                if entry.flags & FLAG_AS_SET_TAIL:
                    # Aggregates announced with an AS_SET tail: the
                    # owner plus a neighbor form the set, as proxy
                    # aggregation produces.
                    base = view.path[:-1] or (peer,)
                    path = ASPath.from_sequence(base).with_set_tail(
                        (entry.owner, entry.owner + 1)
                    )
                snapshot.add(Route(entry.prefix, path, PeerId(asn=peer)))

        mrt_dir = archive_dir / "mrt"
        mrt_dir.mkdir(parents=True, exist_ok=True)
        out = mrt_dir / f"rib.{record.day.isoformat()}.mrt"
        if pool is not None:
            return pool.submit(
                write_rib_snapshot, out, snapshot, dump_format="table_dump_v2"
            )
        write_rib_snapshot(out, snapshot, dump_format="table_dump_v2")
        return out


def simulate_study(
    archive_dir: FsPath | str,
    config: ScenarioConfig | None = None,
    *,
    mrt_export_days: set[datetime.date] | None = None,
    workers: int = 1,
) -> dict:
    """Run a full study simulation and write its archive.

    Convenience wrapper over :class:`ScenarioWorld`; returns the run
    summary (also persisted in the archive manifest).  ``workers``
    parallelizes the optional MRT day dumps (see
    :meth:`ScenarioWorld.run`).
    """
    world = ScenarioWorld(config or ScenarioConfig())
    return world.run(
        archive_dir, mrt_export_days=mrt_export_days, workers=workers
    )


def _decay_durations(daily_alive: list[int]) -> list[int]:
    """Convert an alive-count profile into per-event durations.

    ``daily_alive[k]`` conflicts must still be active ``k`` days after
    the start, so ``daily_alive[k] - daily_alive[k+1]`` events last
    exactly ``k+1`` days.
    """
    durations: list[int] = []
    padded = list(daily_alive) + [0]
    for day, (now, later) in enumerate(zip(padded, padded[1:])):
        lasting = now - later
        if lasting < 0:
            raise ValueError(
                "alive-count profile must be non-increasing, got "
                f"{daily_alive}"
            )
        durations.extend([day + 1] * lasting)
    return durations
