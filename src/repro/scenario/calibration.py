"""Calibration constants, with the paper value recorded beside each rate.

Everything the generator aims for is expressed *per prefix-day* or as a
scale-free proportion, so a study at ``scale=0.125`` produces the same
medians, duration expectations and class mixes as a full-size run, with
absolute totals scaled linearly.

Sources for every target are the paper's Section IV-VI numbers:

- 38 225 total conflicted prefixes over 1279 observed days,
- 13 730 one-observation conflicts, 11 358 of them from the 1998-04-07
  AS 8584 incident (11 842 conflicts that day, 11 357 involving 8584),
- the 2001-04 incident: peak 10 226 on 04-06; (3561, 15412) involved in
  5 532 of 6 627 conflicts on 04-10,
- yearly medians 683 / 810.5 / 951 / 1294,
- duration expectations 30.9 / 47.7 / 107.5 / 175.3 / 281.8 days for
  minimum-duration filters >0/>1/>9/>29/>89,
- 1 002 conflicts longer than 300 days, max duration 1 246, about 1 326
  conflicts ongoing at study end,
- 30 identified exchange-point prefixes, all long-lived,
- ~12 prefixes with AS_SET-terminated paths, excluded from analysis,
- figure 6: DistinctPaths dominant (≈2 000+/day) over OrigTranAS and
  SplitView (each a few hundred) in mid-2001.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field


@dataclass(frozen=True)
class PaperTargets:
    """Verbatim numbers from the paper, unscaled."""

    total_conflicts: int = 38_225
    observation_days: int = 1_279
    one_day_conflicts: int = 13_730
    one_day_from_1998_fault: int = 11_358
    spike_1998_date: datetime.date = datetime.date(1998, 4, 7)
    spike_1998_total: int = 11_842
    spike_1998_faulty_asn: int = 8584
    spike_1998_involving_fault: int = 11_357
    spike_2001_start: datetime.date = datetime.date(2001, 4, 6)
    spike_2001_peak: int = 10_226
    spike_2001_faulty_asn: int = 15_412
    spike_2001_upstream_asn: int = 3_561
    spike_2001_apr10_involving: int = 5_532
    spike_2001_apr10_total: int = 6_627
    yearly_medians: dict[int, float] = field(
        default_factory=lambda: {
            1998: 683.0,
            1999: 810.5,
            2000: 951.0,
            2001: 1294.0,
        }
    )
    duration_expectations: dict[int, float] = field(
        default_factory=lambda: {
            0: 30.9,
            1: 47.7,
            9: 107.5,
            29: 175.3,
            89: 281.8,
        }
    )
    conflicts_over_300_days: int = 1_002
    max_duration_days: int = 1_246
    ongoing_at_end: int = 1_326
    exchange_point_prefixes: int = 30
    as_set_prefixes: int = 12


PAPER = PaperTargets()


@dataclass(frozen=True)
class Calibration:
    """Generator rates tuned so the analysis recovers the paper's shape.

    Birth rates are *visible conflicts born per day at scale=1.0 at
    study start*; they ramp linearly with the table-size factor (the
    table doubles over the window, and so did Huston's daily conflict
    counts, roughly).  Durations are in observed days.
    """

    # -- standing population (long-lived causes) -----------------------
    #: Multi-homing without BGP (Section VI-B): the dominant long-lived
    #: cause.  Pre-seeded standing count at day 0, plus daily births.
    initial_static_multihoming: int = 600
    static_multihoming_births_per_day: float = 1.6
    #: Mean duration (days) for long-lived policy conflicts.
    static_multihoming_mean_duration: float = 330.0
    #: Fraction where the provider co-originates alongside the customer
    #: (OrigTranAS-shaped); the rest front a BGP-silent customer.
    static_multihoming_cooriginate_fraction: float = 0.08

    #: Private-AS substitution (Section VI-C): "not widely used".
    initial_private_as: int = 28
    private_as_births_per_day: float = 0.09
    private_as_mean_duration: float = 300.0
    #: Probability an upstream fails to strip the private ASN (leak).
    private_as_leak_probability: float = 0.02

    #: Traffic engineering (OrigTranAS / SplitView sources).
    initial_traffic_engineering: int = 160
    traffic_engineering_births_per_day: float = 2.5
    traffic_engineering_mean_duration: float = 55.0
    #: Fraction shaped as SplitView (shared upstream, two sites).
    traffic_engineering_splitview_fraction: float = 0.72

    # -- short-lived causes ---------------------------------------------
    #: Provider-transition conflicts (Section VI-F): days-long.
    provider_transition_births_per_day: float = 4.0
    provider_transition_mean_duration: float = 6.5

    #: Small-scale misconfigurations: the organic one-timers.
    misconfig_births_per_day: float = 4.6
    misconfig_mean_duration: float = 1.3

    # -- visibility-pattern knobs ----------------------------------------
    #: Fraction of long-lived conflicts that flicker (visible subset of
    #: days) — the paper counts total days "regardless of whether the
    #: conflict was continuous".
    intermittent_fraction: float = 0.35
    intermittent_duty_cycle: float = 0.75

    # -- scripted faults (scaled at generation time) ---------------------
    spike_1998_conflicts: int = 11_357
    #: Daily event sizes for 2001-04-06 .. 2001-04-11 (the component
    #: attributable to AS 15412; background conflicts add the rest).
    spike_2001_daily: tuple[int, ...] = (9_300, 8_400, 7_400, 6_500, 5_532, 2_300)

    #: Growth of the daily birth rates across the window, matching the
    #: table-size doubling (end rate = start rate * ramp_factor).
    ramp_factor: float = 2.0

    def ramp(self, day_index: int, num_days: int) -> float:
        """Linear birth-rate multiplier for ``day_index``."""
        if num_days <= 1:
            return 1.0
        fraction = day_index / (num_days - 1)
        return 1.0 + (self.ramp_factor - 1.0) * fraction


DEFAULT_CALIBRATION = Calibration()
