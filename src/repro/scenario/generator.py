"""Stochastic birth of MOAS cause events, calibrated to the paper.

The generator owns all randomness behind conflict creation: which
prefixes become multi-origin, why, with which partner ASes, and for how
long.  Visibility at the collector is checked at birth — events no peer
divergence would reveal are recorded as invisible ground truth, exactly
mirroring the paper's caveat that even Route Views undercounts.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from repro.netbase.asn import PRIVATE_AS_MIN
from repro.netbase.prefix import Prefix
from repro.scenario.calibration import Calibration
from repro.scenario.events import Cause, ConflictEvent
from repro.scenario.routing import CollectorRouting
from repro.topology.model import InternetModel, Tier
from repro.util.rng import RngStreams

#: How many candidate draws to make before giving up on producing a
#: visible event of some cause on some day.
_MAX_ATTEMPTS = 8


class EventGenerator:
    """Draws cause events against the current world state."""

    def __init__(
        self,
        model: InternetModel,
        routing: CollectorRouting,
        calibration: Calibration,
        streams: RngStreams,
        *,
        num_days: int,
        scale: float,
        is_conflicted: Callable[[Prefix], bool],
    ) -> None:
        self.model = model
        self.routing = routing
        self.calibration = calibration
        self.num_days = num_days
        self.scale = scale
        self._is_conflicted = is_conflicted
        self._rng = streams.python("events")
        self._poisson = streams.numpy("event-counts")
        self._flicker_counter = 0
        self._population_cache: list[Prefix] = []
        self.invisible_births = 0

    # -- public API -------------------------------------------------------

    def initial_events(self, active_peers: list[int]) -> list[ConflictEvent]:
        """The standing population already conflicting at day 0.

        Long-lived causes pre-date the study window: each event gets a
        full lifetime plus a uniformly-drawn elapsed portion, so day 0
        sees a stationary mix of young and old conflicts.
        """
        events: list[ConflictEvent] = []
        taken: set[Prefix] = set()
        seeds = (
            (
                Cause.STATIC_MULTIHOMING,
                self._scaled(self.calibration.initial_static_multihoming),
            ),
            (Cause.PRIVATE_AS, self._scaled(self.calibration.initial_private_as)),
            (
                Cause.TRAFFIC_ENGINEERING,
                self._scaled(self.calibration.initial_traffic_engineering),
            ),
        )
        for cause, count in seeds:
            for _ in range(count):
                event = self._try_birth(
                    cause, day_index=0, active_peers=active_peers,
                    taken=taken, pre_window=True,
                )
                if event is not None:
                    events.append(event)
                    taken.add(event.prefix)
        events.extend(self._exchange_point_events())
        return events

    def births(
        self, day_index: int, active_peers: list[int]
    ) -> list[ConflictEvent]:
        """Organic events born on ``day_index`` (scripted faults excluded)."""
        ramp = self.calibration.ramp(day_index, self.num_days)
        events: list[ConflictEvent] = []
        taken: set[Prefix] = set()
        rates = (
            (
                Cause.STATIC_MULTIHOMING,
                self.calibration.static_multihoming_births_per_day,
            ),
            (Cause.PRIVATE_AS, self.calibration.private_as_births_per_day),
            (
                Cause.TRAFFIC_ENGINEERING,
                self.calibration.traffic_engineering_births_per_day,
            ),
            (
                Cause.PROVIDER_TRANSITION,
                self.calibration.provider_transition_births_per_day,
            ),
            (Cause.MISCONFIG, self.calibration.misconfig_births_per_day),
        )
        for cause, rate in rates:
            count = int(self._poisson.poisson(rate * ramp * self.scale))
            for _ in range(count):
                event = self._try_birth(
                    cause,
                    day_index=day_index,
                    active_peers=active_peers,
                    taken=taken,
                )
                if event is not None:
                    events.append(event)
                    taken.add(event.prefix)
        return events

    def mass_origination(
        self,
        *,
        faulty_asn: int,
        day_index: int,
        durations: list[int],
        active_peers: list[int],
    ) -> list[ConflictEvent]:
        """A scripted fault: ``faulty_asn`` falsely originates many prefixes.

        ``durations`` holds one entry per conflict to create (in days);
        the 1998 incident is ~11.3k one-day entries, the 2001 incident a
        decaying multi-day profile.  Prefixes are sampled from the whole
        table, exactly how a leaked full-table misconfiguration behaves.
        """
        events: list[ConflictEvent] = []
        taken: set[Prefix] = set()
        attempts = 0
        # Visibility at the collector filters heavily (many peers agree
        # on the legitimate origin); oversample until the historical
        # visible count is reached.
        budget = len(durations) * 16
        prefixes = self._prefix_population()
        wanted = iter(durations)
        current = next(wanted, None)
        while current is not None and attempts < budget:
            attempts += 1
            prefix = self._rng.choice(prefixes)
            owner = self.model.prefix_owner[prefix]
            if (
                owner == faulty_asn
                or prefix in taken
                or self._is_conflicted(prefix)
            ):
                continue
            origins = [owner, faulty_asn]
            if not self.routing.conflict_visible(origins, active_peers):
                self.invisible_births += 1
                continue
            events.append(
                ConflictEvent(
                    prefix=prefix,
                    origins=tuple(origins),
                    cause=Cause.FAULT_MASS_ORIGINATION,
                    start_index=day_index,
                    end_index=day_index + current - 1,
                )
            )
            taken.add(prefix)
            current = next(wanted, None)
        return events

    # -- cause-specific construction ---------------------------------------

    def _try_birth(
        self,
        cause: Cause,
        *,
        day_index: int,
        active_peers: list[int],
        taken: set[Prefix],
        pre_window: bool = False,
    ) -> ConflictEvent | None:
        for _ in range(_MAX_ATTEMPTS):
            candidate = self._draw_candidate(cause, day_index, pre_window)
            if candidate is None:
                continue
            prefix, origins, duration, pivot = candidate
            if prefix in taken or self._is_conflicted(prefix):
                continue
            if pivot is not None:
                # Pivot conflicts are visible as long as two peers can
                # reach the inconsistently-announcing AS.
                if (
                    self.routing.pivot_reachable_peers(pivot, active_peers)
                    < 2
                ):
                    self.invisible_births += 1
                    continue
            elif not self.routing.conflict_visible(
                list(origins), active_peers
            ):
                self.invisible_births += 1
                continue
            start = day_index
            if pre_window:
                elapsed = self._rng.randrange(max(1, duration))
                start = day_index - elapsed
            duty_cycle = 1.0
            flicker_seed = 0
            if (
                duration > 30
                and self._rng.random()
                < self.calibration.intermittent_fraction
            ):
                duty_cycle = self.calibration.intermittent_duty_cycle
                self._flicker_counter += 1
                flicker_seed = self._flicker_counter
            return ConflictEvent(
                prefix=prefix,
                origins=origins,
                cause=cause,
                start_index=start,
                end_index=start + duration - 1,
                duty_cycle=duty_cycle,
                flicker_seed=flicker_seed,
                pivot=pivot,
            )
        return None

    def _draw_candidate(
        self, cause: Cause, day_index: int, pre_window: bool
    ) -> tuple[Prefix, tuple[int, ...], int, int | None] | None:
        calibration = self.calibration
        rng = self._rng
        if cause is Cause.STATIC_MULTIHOMING:
            picked = self._pick_prefix_with_provider()
            if picked is None:
                return None
            prefix, owner, providers = picked
            duration = self._long_duration(
                calibration.static_multihoming_mean_duration
            )
            if (
                rng.random()
                < calibration.static_multihoming_cooriginate_fraction
            ):
                # Provider statically co-originates the customer route
                # while also transiting the customer's own announcement:
                # it exports its origination to some neighbors and the
                # customer route to others (OrigTranAS-shaped, pivot).
                provider = rng.choice(providers)
                return prefix, (owner, provider), duration, provider
            # BGP-silent customer fronted by two upstreams.
            if len(providers) >= 2:
                chosen = rng.sample(providers, k=2)
            else:
                other = self._random_transit(exclude={owner, providers[0]})
                if other is None:
                    return None
                chosen = [providers[0], other]
            return prefix, tuple(sorted(chosen)), duration, None

        if cause is Cause.PRIVATE_AS:
            picked = self._pick_prefix_with_provider()
            if picked is None:
                return None
            prefix, owner, providers = picked
            duration = self._long_duration(calibration.private_as_mean_duration)
            if len(providers) >= 2:
                chosen = rng.sample(providers, k=2)
            else:
                other = self._random_transit(exclude={owner, providers[0]})
                if other is None:
                    return None
                chosen = [providers[0], other]
            if rng.random() < calibration.private_as_leak_probability:
                # One upstream forgot to strip the private ASN: the
                # private AS becomes visible behind that provider, so it
                # joins the graph as a (leaf) customer there.
                leaked = self._fresh_private_asn()
                self.model.graph.add_as(leaked)
                self.model.graph.add_customer(chosen[1], leaked)
                chosen[1] = leaked
            return prefix, tuple(sorted(chosen)), duration, None

        if cause is Cause.TRAFFIC_ENGINEERING:
            duration = self._long_duration(
                calibration.traffic_engineering_mean_duration
            )
            if (
                rng.random()
                < calibration.traffic_engineering_splitview_fraction
            ):
                # Two sites of one organization behind a shared
                # upstream, which announces site A's route to some
                # neighbors and site B's to others: peers' paths share
                # the upstream but end at different origin ASes
                # (SplitView-shaped, pivot = the upstream).
                upstream = self._random_transit(exclude=set())
                if upstream is None:
                    return None
                customers = self.model.graph.customers_of(upstream)
                if len(customers) < 2:
                    return None
                site_a, site_b = rng.sample(customers, k=2)
                prefix = self._random_prefix_of(site_a)
                if prefix is None:
                    return None
                return (
                    prefix,
                    tuple(sorted((site_a, site_b))),
                    duration,
                    upstream,
                )
            picked = self._pick_prefix_with_provider()
            if picked is None:
                return None
            prefix, owner, providers = picked
            provider = rng.choice(providers)
            return prefix, (owner, provider), duration, provider

        if cause is Cause.PROVIDER_TRANSITION:
            picked = self._pick_prefix_with_provider()
            if picked is None:
                return None
            prefix, owner, providers = picked
            new_provider = self._random_transit(
                exclude={owner, *providers}
            )
            if new_provider is None:
                return None
            duration = self._short_duration(
                calibration.provider_transition_mean_duration, minimum=2
            )
            return (
                prefix,
                tuple(sorted((providers[0], new_provider))),
                duration,
                None,
            )

        if cause is Cause.MISCONFIG:
            prefix = self._rng.choice(self._prefix_population())
            owner = self.model.prefix_owner[prefix]
            culprit = self._random_any_as(exclude={owner})
            if culprit is None:
                return None
            duration = self._short_duration(
                calibration.misconfig_mean_duration, minimum=1
            )
            return prefix, (owner, culprit), duration, None

        raise ValueError(f"unsupported cause {cause}")

    def _exchange_point_events(self) -> list[ConflictEvent]:
        """IXP fabric prefixes: conflicted for (almost) the whole study."""
        events: list[ConflictEvent] = []
        for ixp in self.model.ixps:
            self._flicker_counter += 1
            events.append(
                ConflictEvent(
                    prefix=ixp.prefix,
                    origins=ixp.members,
                    cause=Cause.EXCHANGE_POINT,
                    start_index=0,
                    end_index=self.num_days - 1,
                    # Near-total presence: the paper's IXP conflicts
                    # lasted "most or all" of the observation period.
                    duty_cycle=0.98,
                    flicker_seed=self._flicker_counter,
                )
            )
        return events

    # -- draw helpers -------------------------------------------------------

    def _scaled(self, count: int) -> int:
        return max(1, round(count * self.scale))

    def _prefix_population(self) -> list[Prefix]:
        # Growth adds prefixes daily; rebuild the cached list only when
        # the table size changed to avoid quadratic copying.
        if len(self._population_cache) != len(self.model.prefix_owner):
            self._population_cache = list(self.model.prefix_owner)
        return self._population_cache

    def _pick_prefix_with_provider(
        self,
    ) -> tuple[Prefix, int, list[int]] | None:
        for _ in range(_MAX_ATTEMPTS):
            prefix = self._rng.choice(self._prefix_population())
            owner = self.model.prefix_owner[prefix]
            providers = self.model.graph.providers_of(owner)
            if providers:
                return prefix, owner, providers
        return None

    def _random_prefix_of(self, asn: int) -> Prefix | None:
        prefixes = self.model.prefixes_of(asn)
        if not prefixes:
            return None
        return self._rng.choice(prefixes)

    def _random_transit(self, exclude: set[int]) -> int | None:
        transits = [
            asn
            for asn in self.model.ases_in_tier(Tier.TRANSIT)
            if asn not in exclude
        ]
        if not transits:
            return None
        return self._rng.choice(transits)

    def _fresh_private_asn(self) -> int:
        while True:
            candidate = PRIVATE_AS_MIN + self._rng.randrange(1022)
            if candidate not in self.model.graph:
                return candidate

    def _random_any_as(self, exclude: set[int]) -> int | None:
        for _ in range(_MAX_ATTEMPTS):
            asn = self._rng.choice(list(self.model.as_info))
            if asn not in exclude:
                return asn
        return None

    def _long_duration(self, mean: float) -> int:
        """Heavy-tailed duration for policy-driven conflicts."""
        sigma = 1.0
        mu = math.log(mean) - sigma * sigma / 2.0
        value = self._rng.lognormvariate(mu, sigma)
        return max(7, min(int(value), self.num_days * 2))

    def _short_duration(self, mean: float, *, minimum: int) -> int:
        value = self._rng.expovariate(1.0 / mean)
        return max(minimum, int(round(value)))
