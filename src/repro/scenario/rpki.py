"""Scenario-world ROA issuance: giving a synthetic study an RPKI shadow.

A generated world knows the truth — who owns every prefix, which
incidents were injected — so it can issue the Route Origin
Authorizations a contemporary RPKI deployment would hold over that
world, faults included.  :func:`issue_roas` builds the database that
:meth:`~repro.scenario.world.ScenarioWorld.run` writes beside the
archive as ``roas.json`` (day-stamped validity windows, one row per
:meth:`~repro.netbase.rpki.Roa.to_dict`).

Issuance is two layers:

- **incident shadows** — every injected incident gets the RPKI record
  real operators would have left behind: hijack and leak victims hold a
  correct ROA (so the perpetrator's announcement validates *invalid*),
  anycast deployments hold one ROA per legitimate origin (so the wide
  stable conflict stays *valid*), sub-prefix hijack fragments are
  covered only by the victim's ROA (invalid), and IXP fabric prefixes —
  like much exchange-point space in practice — carry no ROA at all
  (*not-found*).  Perpetrator-registered prefixes never get their own
  authorization.
- **organic coverage** — a ``coverage`` fraction of the remaining
  registry gets a ROA for its owner (max-length slack included), issued
  the day the prefix was registered; organizations that run a
  *legitimate* multi-origin arrangement (multi-homing, traffic
  engineering, anycast — the generator's valid-cause events) keep
  their RPKI records current, so their secondary origins are
  authorized too ("Live Long and Prosper"'s finding that long-lived
  MOAS is largely RPKI-consistent).  ``stale_fraction`` of covered
  prefixes model the stale-after-ownership-transfer failure (the ROA
  still names a previous holder, so the *current* owner validates
  invalid) and ``misissue_fraction`` add a misissued authorization for
  an unrelated AS on top of the correct one (the noise signal of
  arXiv:2502.03378 — a hijack by that AS would validate *valid*).

Everything draws from one named RNG stream, so the database is a pure
function of ``(seed, world, script)`` — byte-identical across runs,
like every other archive artifact.
"""

from __future__ import annotations

import datetime
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.netbase.prefix import Prefix
from repro.netbase.rpki import Roa
from repro.netbase.trie import PrefixTrie
from repro.scenario.incidents import IncidentKind, IncidentLabel


@dataclass(frozen=True)
class RpkiConfig:
    """Knobs for the world's ROA issuance process."""

    #: Fraction of eligible registry prefixes that get a ROA.
    coverage: float = 0.9
    #: ``max_length`` slack over the registered length (0 = exact).
    max_length_slack: int = 1
    #: Fraction of covered prefixes whose ROA is stale — it still names
    #: a previous holder, so the current owner validates invalid.
    stale_fraction: float = 0.02
    #: Fraction of covered prefixes that additionally carry a misissued
    #: ROA authorizing an unrelated AS.
    misissue_fraction: float = 0.01

    def __post_init__(self) -> None:
        for name in ("coverage", "stale_fraction", "misissue_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} {value} outside 0..1")
        if self.max_length_slack < 0:
            raise ValueError(
                f"max_length_slack must be >= 0, got {self.max_length_slack}"
            )

    def to_dict(self) -> dict:
        """JSON-serializable form (recorded in the archive manifest)."""
        return {
            "coverage": self.coverage,
            "max_length_slack": self.max_length_slack,
            "stale_fraction": self.stale_fraction,
            "misissue_fraction": self.misissue_fraction,
        }


def _max_length(prefix: Prefix, slack: int) -> int:
    return min(32, prefix.length + slack)


def issue_roas(
    registry,
    labels: Sequence[IncidentLabel],
    *,
    config: RpkiConfig,
    asns: Sequence[int],
    rng,
    date_of_index: Callable[[int], datetime.date],
    organic_events: Sequence[dict] = (),
) -> list[Roa]:
    """The world's ROA database: incident shadows + organic coverage.

    ``registry`` is the archive's registration rows
    (:class:`~repro.scenario.archive.RegistryEntry`), ``labels`` the
    injected-incident ground truth, ``asns`` the AS population for
    wrong-origin draws, ``rng`` a dedicated :mod:`random` stream,
    ``date_of_index`` maps archive day indices to calendar dates (the
    validity-window stamps), and ``organic_events`` are the generator's
    ground-truth rows — covered prefixes running a valid-cause
    multi-origin arrangement get their secondary origins authorized
    from the day the arrangement started.
    """
    slack = config.max_length_slack
    owners = {entry.prefix: entry for entry in registry}
    roas: list[Roa] = []
    shadowed: set[Prefix] = set()
    perpetrator_registered: set[Prefix] = set()

    # prefix -> {origin: first day a valid-cause event used it}.
    legitimate: dict[Prefix, dict[int, int]] = {}
    for event in organic_events:
        if not event.get("valid"):
            continue
        prefix = Prefix.parse(event["prefix"])
        starts = legitimate.setdefault(prefix, {})
        for origin in event["origins"]:
            start = event["start_index"]
            if origin not in starts or start < starts[origin]:
                starts[origin] = start

    trie: PrefixTrie = PrefixTrie()
    for entry in registry:
        trie[entry.prefix] = entry

    for label in labels:
        prefix = label.prefix
        kind = label.kind
        if kind is IncidentKind.ANYCAST:
            # A covering multi-origin ROA set: every legitimate origin
            # authorized from the day the deployment went live.
            start = date_of_index(label.start_index)
            for origin in label.origins:
                roas.append(
                    Roa(prefix, _max_length(prefix, slack), origin,
                        valid_from=start)
                )
            shadowed.add(prefix)
        elif kind in (
            IncidentKind.EXACT_HIJACK,
            IncidentKind.FLAPPING_FAULT,
            IncidentKind.PRIVATE_LEAK,
        ):
            # The victim holds a correct ROA, so the perpetrator's (or
            # the leaked private ASN's) announcement validates invalid.
            entry = owners[prefix]
            roas.append(
                Roa(
                    prefix,
                    _max_length(prefix, slack),
                    entry.owner,
                    valid_from=date_of_index(entry.created_day),
                )
            )
            shadowed.add(prefix)
        elif kind is IncidentKind.SUBPREFIX_HIJACK:
            # The fragment is registered to the perpetrator and must
            # never be authorized; the *victim's* covering registration
            # gets the correct ROA, leaving the fragment covered but
            # unauthorized (invalid).
            perpetrator_registered.add(prefix)
            victim = None
            for covering, entry in trie.covering(prefix):
                if covering != prefix and entry.prefix not in (
                    perpetrator_registered
                ):
                    victim = entry  # keep the most specific cover
            if victim is not None and victim.prefix not in shadowed:
                roas.append(
                    Roa(
                        victim.prefix,
                        _max_length(victim.prefix, slack),
                        victim.owner,
                        valid_from=date_of_index(victim.created_day),
                    )
                )
                shadowed.add(victim.prefix)
        elif kind is IncidentKind.FAULTY_AGGREGATION:
            # The aggregate is the perpetrator's registration: no ROA
            # (and nothing shorter covers it, so it validates
            # not-found — registry structure is what flags it).
            perpetrator_registered.add(prefix)
        # IXP_CONFLICT: exchange-point fabric space is typically absent
        # from the RPKI; not-found is the realistic shadow.

    for entry in registry:
        prefix = entry.prefix
        if (
            prefix in shadowed
            or prefix in perpetrator_registered
            or entry.as_set_tail
            or entry.exchange_point
        ):
            continue
        if rng.random() >= config.coverage:
            continue
        issued = date_of_index(entry.created_day)
        max_length = _max_length(prefix, slack)
        if rng.random() < config.stale_fraction:
            # Stale after an ownership transfer: the authorization
            # still names the previous holder, never the current owner.
            previous = entry.owner
            for _ in range(8):
                candidate = rng.choice(asns)
                if candidate != entry.owner:
                    previous = candidate
                    break
            if previous != entry.owner:
                roas.append(Roa(prefix, max_length, previous))
                continue
        roas.append(Roa(prefix, max_length, entry.owner, valid_from=issued))
        for origin, start_index in sorted(
            legitimate.get(prefix, {}).items()
        ):
            if origin != entry.owner:
                roas.append(
                    Roa(
                        prefix,
                        max_length,
                        origin,
                        # Arrangements born before the study window
                        # (negative indices) have always been signed.
                        valid_from=(
                            date_of_index(start_index)
                            if start_index >= 0
                            else None
                        ),
                    )
                )
        if rng.random() < config.misissue_fraction:
            for _ in range(8):
                candidate = rng.choice(asns)
                if candidate != entry.owner:
                    roas.append(
                        Roa(prefix, max_length, candidate, valid_from=issued)
                    )
                    break
    return roas
