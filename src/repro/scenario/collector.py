"""The simulated Route Views collector configuration.

The real collector peered with 54 routers in 43 ASes by mid-2001,
having grown from a handful of peers in 1997.  Peer growth matters: a
conflict is recorded only if peers with *divergent* best routes exist,
so more peers reveal more conflicts — one of the drivers behind the
rising daily counts in figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.model import InternetModel, Tier
from repro.util.rng import RngStreams

#: Oregon Route Views' own AS number.
COLLECTOR_ASN = 6447


@dataclass(frozen=True)
class CollectorConfig:
    """Peer sessions and their activation days."""

    #: ``(peer ASN, calendar day index the session came up)`` pairs.
    peer_schedule: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        asns = [asn for asn, _day in self.peer_schedule]
        if len(set(asns)) != len(asns):
            raise ValueError("duplicate peer ASN in schedule")
        if not self.peer_schedule:
            raise ValueError("collector needs at least one peer")

    @property
    def all_peer_asns(self) -> tuple[int, ...]:
        return tuple(asn for asn, _day in self.peer_schedule)

    def active_peers(self, day_index: int) -> tuple[int, ...]:
        """Peers whose sessions are up on ``day_index``, sorted by ASN."""
        return tuple(
            sorted(
                asn
                for asn, join_day in self.peer_schedule
                if join_day <= day_index
            )
        )

    @classmethod
    def default_for_model(
        cls,
        model: InternetModel,
        streams: RngStreams,
        *,
        num_days: int,
        num_peers: int = 12,
        initial_peers: int = 5,
    ) -> "CollectorConfig":
        """A realistic schedule: big ISPs first, more joining over time.

        Two tier-1 peers anchor the view from day 0 (the real collector
        always had backbone feeds); the rest are transit ASes joining at
        a steady rate over the first ~80% of the study.
        """
        rng = streams.python("collector-peers")
        tier1 = model.ases_in_tier(Tier.TIER1)
        transits = model.ases_in_tier(Tier.TRANSIT)
        anchors = [701, 1239] if 701 in tier1 and 1239 in tier1 else tier1[:2]
        # Transit peers first (like the real collector's ISP feeds);
        # remaining tier-1s fill in when a small model runs short.
        pool = [asn for asn in transits if asn not in anchors]
        pool += [asn for asn in tier1 if asn not in anchors]
        num_peers = min(num_peers, len(anchors) + len(pool))
        initial_peers = min(initial_peers, num_peers)
        needed = num_peers - len(anchors)
        chosen = rng.sample(pool, k=needed)
        schedule: list[tuple[int, int]] = [(asn, 0) for asn in anchors]
        for position, asn in enumerate(chosen):
            slot = len(anchors) + position
            if slot < initial_peers:
                join_day = 0
            else:
                late_slots = num_peers - initial_peers
                late_rank = slot - initial_peers
                join_day = round(
                    (late_rank + 1) * 0.8 * num_days / (late_slots + 1)
                )
            schedule.append((asn, join_day))
        return cls(peer_schedule=tuple(schedule))
