"""The measurement world: cause processes, collector, daily archive.

This subpackage is the synthetic stand-in for the paper's raw material —
the real 1997-2001 Internet observed through Oregon Route Views and
archived daily by NLANR/PCH.  It combines the topology substrate with
stochastic *cause processes* for every MOAS source the paper discusses
(Section VI), re-enacts the paper's scripted fault incidents on their
historical dates, routes everything through Gao-Rexford policies to the
collector's peers, and writes daily snapshots to an archive that the
analysis pipeline consumes without any knowledge of how it was made.
"""

from repro.scenario.archive import (
    ArchiveError,
    ArchiveReader,
    ArchiveWriter,
    DayColumns,
    DayRecord,
    PeerRow,
    convert_archive,
    read_day_index,
)
from repro.scenario.calibration import Calibration, PAPER
from repro.scenario.collector import CollectorConfig
from repro.scenario.events import Cause, ConflictEvent
from repro.scenario.incidents import (
    IncidentInjector,
    IncidentKind,
    IncidentLabel,
    IncidentScript,
    IncidentSpec,
)
from repro.scenario.routing import CollectorRouting, PeerView
from repro.scenario.timeline import StudyTimeline
from repro.scenario.world import ScenarioConfig, ScenarioWorld, simulate_study

__all__ = [
    "ArchiveError",
    "ArchiveReader",
    "ArchiveWriter",
    "DayColumns",
    "DayRecord",
    "PeerRow",
    "convert_archive",
    "read_day_index",
    "Calibration",
    "PAPER",
    "CollectorConfig",
    "Cause",
    "ConflictEvent",
    "IncidentInjector",
    "IncidentKind",
    "IncidentLabel",
    "IncidentScript",
    "IncidentSpec",
    "CollectorRouting",
    "PeerView",
    "StudyTimeline",
    "ScenarioConfig",
    "ScenarioWorld",
    "simulate_study",
]
