"""The study timeline: 1349 calendar days, 1279 observed snapshots.

The paper's figure-1 window runs 1997-11-08 → 2001-07-18 (1349 calendar
days) but reports "1279 days" of archived tables: the real NLANR/PCH
archive had about 70 unusable or missing days.  The timeline reproduces
that: a deterministic subset of ~70 gap days is chosen, excluding dates
the paper's analysis depends on (the 1998 and 2001 fault spikes, the
first and last days, and the figure-6 classification window).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

from repro.util.dates import PAPER_CALENDAR, PAPER_SNAPSHOT_DAYS, StudyCalendar
from repro.util.rng import RngStreams

#: Dates whose snapshots must exist for the paper's case studies.
PROTECTED_DATES = (
    datetime.date(1997, 11, 8),  # first day
    datetime.date(1998, 4, 6),
    datetime.date(1998, 4, 7),  # AS 8584 incident
    datetime.date(1998, 4, 8),
    datetime.date(2001, 4, 5),
    datetime.date(2001, 4, 6),  # AS 15412 incident begins
    datetime.date(2001, 4, 7),
    datetime.date(2001, 4, 8),
    datetime.date(2001, 4, 9),
    datetime.date(2001, 4, 10),  # (3561, 15412) spike day
    datetime.date(2001, 4, 11),
    datetime.date(2001, 7, 18),  # last day
)

#: The figure-6 classification window (2001-05-15 → 2001-08-15 in the
#: paper; our archive ends 07-18 with the calendar, so the overlap).
CLASSIFICATION_WINDOW = (
    datetime.date(2001, 5, 15),
    datetime.date(2001, 7, 18),
)


@dataclass(frozen=True)
class StudyTimeline:
    """Calendar window plus the set of observed (archived) days."""

    calendar: StudyCalendar
    observed: frozenset[datetime.date]
    _observed_sorted: tuple[datetime.date, ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        for day in self.observed:
            if day not in self.calendar:
                raise ValueError(f"observed day {day} outside calendar")
        object.__setattr__(
            self, "_observed_sorted", tuple(sorted(self.observed))
        )

    @classmethod
    def paper_timeline(
        cls, streams: RngStreams, *, gap_days: int | None = None
    ) -> "StudyTimeline":
        """The 1279-of-1349 observation pattern of the paper's archive."""
        calendar = PAPER_CALENDAR
        if gap_days is None:
            gap_days = calendar.num_days - PAPER_SNAPSHOT_DAYS
        protected = set(PROTECTED_DATES)
        window_start, window_end = CLASSIFICATION_WINDOW
        candidates = [
            day
            for day in calendar
            if day not in protected
            and not window_start <= day <= window_end
        ]
        rng = streams.python("timeline-gaps")
        gaps = set(rng.sample(candidates, k=gap_days))
        observed = frozenset(day for day in calendar if day not in gaps)
        return cls(calendar=calendar, observed=observed)

    @classmethod
    def fully_observed(cls, calendar: StudyCalendar) -> "StudyTimeline":
        """A timeline with no archive gaps (used by small studies)."""
        return cls(calendar=calendar, observed=frozenset(calendar))

    @property
    def num_observation_days(self) -> int:
        return len(self.observed)

    def is_observed(self, day: datetime.date) -> bool:
        """True if the archive has a snapshot for ``day``."""
        return day in self.observed

    def observation_days(self) -> tuple[datetime.date, ...]:
        """All observed days in chronological order."""
        return self._observed_sorted

    def last_observed_day(self) -> datetime.date:
        """The final day with a snapshot (ongoing-ness reference)."""
        return self._observed_sorted[-1]
