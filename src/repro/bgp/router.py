"""A single BGP speaker: adj-RIB-in, decision process, export policy.

One router models one AS (the study is AS-granular, as was common in
routing research of the era).  The decision process implements the
standard preference ladder restricted to what inter-AS data exhibits:
LOCAL_PREF (from Gao-Rexford import policy), then shortest AS path, then
a deterministic lowest-neighbor tie-break standing in for router-id
comparison.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.bgp.messages import Announcement, Withdrawal
from repro.bgp.policy import RouteType, export_allowed, local_pref_for
from repro.bgp.relationships import Relationship
from repro.netbase.aspath import ASPath
from repro.netbase.prefix import Prefix


@dataclass(frozen=True)
class RibInEntry:
    """One neighbor's current announcement for one prefix."""

    path: ASPath
    neighbor: int
    route_type: RouteType

    @property
    def local_pref(self) -> int:
        return local_pref_for(self.route_type)


@dataclass(frozen=True)
class BestRoute:
    """The decision-process winner for one prefix.

    ``path`` is the path as learned (empty for self-originated routes);
    exporting prepends the local ASN.
    """

    path: ASPath
    route_type: RouteType
    neighbor: int | None  # None for self-originated routes

    @property
    def local_pref(self) -> int:
        return local_pref_for(self.route_type)


#: Hook deciding the path exported to a specific neighbor.  Receives
#: (prefix, best route, neighbor ASN) and returns the path to announce
#: *before* local prepending, or None to fall through to the default.
ExportHook = Callable[[Prefix, BestRoute, int], ASPath | None]


class BgpRouter:
    """The BGP speaker of one AS."""

    def __init__(
        self,
        asn: int,
        neighbor_relationships: dict[int, Relationship],
        *,
        prepend_counts: dict[int, int] | None = None,
    ) -> None:
        self.asn = asn
        self._relationships = dict(neighbor_relationships)
        self._adj_rib_in: dict[Prefix, dict[int, RibInEntry]] = {}
        self._originated: set[Prefix] = set()
        self._loc_rib: dict[Prefix, BestRoute] = {}
        #: Per-neighbor AS-prepend count on export (traffic engineering).
        self._prepend_counts = dict(prepend_counts or {})
        #: Optional export override used to model SplitView-style TE.
        self.export_hook: ExportHook | None = None

    # -- local state ----------------------------------------------------

    @property
    def neighbors(self) -> dict[int, Relationship]:
        return dict(self._relationships)

    def originated_prefixes(self) -> frozenset[Prefix]:
        """Prefixes this AS currently originates."""
        return frozenset(self._originated)

    def loc_rib(self) -> dict[Prefix, BestRoute]:
        """The current best route per prefix (a copy)."""
        return dict(self._loc_rib)

    def best_route(self, prefix: Prefix) -> BestRoute | None:
        """The current decision-process winner for ``prefix``, if any."""
        return self._loc_rib.get(prefix)

    def rib_in_entries(self, prefix: Prefix) -> list[RibInEntry]:
        """All candidate routes currently held for ``prefix``."""
        return list(self._adj_rib_in.get(prefix, {}).values())

    def set_prepend_count(self, neighbor: int, count: int) -> None:
        """Prepend the local ASN ``count`` times when exporting to ``neighbor``."""
        if count < 1:
            raise ValueError(f"prepend count must be >= 1, got {count}")
        self._prepend_counts[neighbor] = count

    # -- state transitions ----------------------------------------------

    def originate(self, prefix: Prefix) -> bool:
        """Begin originating ``prefix``; returns True if loc-rib changed."""
        self._originated.add(prefix)
        return self._reselect(prefix)

    def withdraw_origin(self, prefix: Prefix) -> bool:
        """Stop originating ``prefix``; returns True if loc-rib changed."""
        self._originated.discard(prefix)
        return self._reselect(prefix)

    def receive(self, message: Announcement | Withdrawal) -> bool:
        """Apply one update from a neighbor; returns True if best changed."""
        sender = message.sender
        if sender not in self._relationships:
            raise KeyError(f"AS {self.asn} has no session with AS {sender}")
        if isinstance(message, Announcement):
            if message.path.contains_as(self.asn):
                # Loop prevention: drop, and forget any previous route
                # from this neighbor for the prefix.
                return self._remove_rib_in(message.prefix, sender)
            entry = RibInEntry(
                path=message.path,
                neighbor=sender,
                route_type=RouteType.from_relationship(
                    self._relationships[sender]
                ),
            )
            self._adj_rib_in.setdefault(message.prefix, {})[sender] = entry
            return self._reselect(message.prefix)
        return self._remove_rib_in(message.prefix, sender)

    def _remove_rib_in(self, prefix: Prefix, sender: int) -> bool:
        entries = self._adj_rib_in.get(prefix)
        if entries and sender in entries:
            del entries[sender]
            if not entries:
                del self._adj_rib_in[prefix]
            return self._reselect(prefix)
        return False

    # -- decision process -------------------------------------------------

    def _reselect(self, prefix: Prefix) -> bool:
        """Re-run the decision process; returns True if the best changed."""
        best = self._compute_best(prefix)
        previous = self._loc_rib.get(prefix)
        if best == previous:
            return False
        if best is None:
            del self._loc_rib[prefix]
        else:
            self._loc_rib[prefix] = best
        return True

    def _compute_best(self, prefix: Prefix) -> BestRoute | None:
        candidates: list[tuple[tuple[int, int, int], BestRoute]] = []
        if prefix in self._originated:
            origin_route = BestRoute(
                path=ASPath(), route_type=RouteType.ORIGIN, neighbor=None
            )
            candidates.append(((origin_route.local_pref, 0, 0), origin_route))
        for entry in self._adj_rib_in.get(prefix, {}).values():
            route = BestRoute(
                path=entry.path,
                route_type=entry.route_type,
                neighbor=entry.neighbor,
            )
            candidates.append(
                (
                    (
                        route.local_pref,
                        -entry.path.path_length(),
                        -entry.neighbor,
                    ),
                    route,
                )
            )
        if not candidates:
            return None
        # Highest local pref, then shortest path, then lowest neighbor.
        return max(candidates, key=lambda item: item[0])[1]

    # -- export -----------------------------------------------------------

    def export_to(
        self, prefix: Prefix, neighbor: int
    ) -> Announcement | Withdrawal:
        """The update this router currently owes ``neighbor`` for ``prefix``."""
        best = self._loc_rib.get(prefix)
        exported = self._exported_path(prefix, best, neighbor)
        if exported is None:
            return Withdrawal(prefix=prefix, sender=self.asn)
        return Announcement(prefix=prefix, path=exported, sender=self.asn)

    def _exported_path(
        self, prefix: Prefix, best: BestRoute | None, neighbor: int
    ) -> ASPath | None:
        if best is None:
            return None
        if best.neighbor == neighbor:
            # Split horizon: never echo a route back to its sender.
            return None
        relationship = self._relationships[neighbor]
        base: ASPath | None = None
        if self.export_hook is not None:
            base = self.export_hook(prefix, best, neighbor)
        if base is None:
            if not export_allowed(best.route_type, relationship):
                return None
            base = best.path
        count = self._prepend_counts.get(neighbor, 1)
        return base.prepend(self.asn, count=count)
