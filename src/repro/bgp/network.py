"""Event-driven propagation of BGP updates over an AS graph.

The network delivers updates router-to-router until no router's best
route changes — a fixpoint that Gao-Rexford policies guarantee exists
(no dispute wheel).  Deterministic FIFO processing makes converged
tables reproducible, which the archive generator depends on.
"""

from __future__ import annotations

import datetime
from collections import deque

from repro.bgp.messages import Announcement, Withdrawal
from repro.bgp.relationships import ASGraph
from repro.bgp.router import BgpRouter
from repro.netbase.aspath import ASPath
from repro.netbase.prefix import Prefix
from repro.netbase.rib import PeerId, RibSnapshot, Route


class ConvergenceError(RuntimeError):
    """Propagation did not reach a fixpoint within the update budget."""


class Network:
    """All BGP routers of an AS graph plus the update plumbing."""

    #: Updates processed per prefix-origination before declaring
    #: non-convergence.  Gao-Rexford converges in O(diameter) rounds;
    #: this bound only exists to catch modelling bugs.
    DEFAULT_UPDATE_BUDGET = 2_000_000

    def __init__(self, graph: ASGraph) -> None:
        self.graph = graph
        self.routers: dict[int, BgpRouter] = {
            asn: BgpRouter(asn, graph.neighbors(asn)) for asn in graph.ases()
        }
        self._queue: deque[tuple[int, Announcement | Withdrawal]] = deque()

    def router(self, asn: int) -> BgpRouter:
        """The BGP speaker of ``asn`` (KeyError if unknown)."""
        if asn not in self.routers:
            raise KeyError(f"unknown AS {asn}")
        return self.routers[asn]

    # -- origination ----------------------------------------------------

    def originate(self, asn: int, prefix: Prefix) -> None:
        """AS ``asn`` starts announcing ``prefix`` (queues propagation)."""
        router = self.router(asn)
        if router.originate(prefix):
            self._broadcast(router, prefix)

    def withdraw(self, asn: int, prefix: Prefix) -> None:
        """AS ``asn`` stops announcing ``prefix`` (queues propagation)."""
        router = self.router(asn)
        if router.withdraw_origin(prefix):
            self._broadcast(router, prefix)

    def refresh_exports(self, asn: int, prefix: Prefix) -> None:
        """Re-send ``asn``'s current exports for ``prefix``.

        Needed after changing a router's export hook or prepend counts,
        which alter what neighbors should see without changing the local
        best route.
        """
        self._broadcast(self.router(asn), prefix)

    def _broadcast(self, router: BgpRouter, prefix: Prefix) -> None:
        for neighbor in sorted(router.neighbors):
            update = router.export_to(prefix, neighbor)
            self._queue.append((neighbor, update))

    # -- propagation ----------------------------------------------------

    def run_to_convergence(self, *, update_budget: int | None = None) -> int:
        """Process queued updates until the network is quiescent.

        Returns the number of updates processed.  Raises
        :class:`ConvergenceError` if the budget is exhausted, which with
        valley-free policies indicates a bug rather than divergence.
        """
        budget = update_budget or self.DEFAULT_UPDATE_BUDGET
        processed = 0
        while self._queue:
            if processed >= budget:
                raise ConvergenceError(
                    f"no convergence after {processed} updates"
                )
            receiver_asn, update = self._queue.popleft()
            processed += 1
            receiver = self.routers[receiver_asn]
            if receiver.receive(update):
                self._broadcast(receiver, update.prefix)
        return processed

    def is_converged(self) -> bool:
        """True when no updates remain queued."""
        return not self._queue

    # -- observation ----------------------------------------------------

    def best_path(self, asn: int, prefix: Prefix) -> ASPath | None:
        """The AS path ``asn`` would export to a measurement collector.

        This includes ``asn`` itself at the front, exactly as a Route
        Views peer session would see it.  Self-originated routes export
        as the bare local ASN.
        """
        best = self.router(asn).best_route(prefix)
        if best is None:
            return None
        return best.path.prepend(asn)

    def forwarding_next_as(self, asn: int, prefix: Prefix) -> int | None:
        """The AS that ``asn`` forwards traffic for ``prefix`` to.

        None when ``asn`` has no route or originates the prefix itself.
        Used by the fault experiments to show traffic being drawn to a
        hijacking AS.
        """
        best = self.router(asn).best_route(prefix)
        if best is None:
            return None
        return best.neighbor

    def collector_snapshot(
        self,
        day: datetime.date,
        peer_asns: list[int],
        *,
        prefixes: list[Prefix] | None = None,
    ) -> RibSnapshot:
        """Assemble the Route Views style snapshot for ``day``.

        Each listed peer contributes its full table (Route Views peers
        export everything to the collector).  ``prefixes`` restricts the
        dump, which the tests use for focused assertions.
        """
        if not self.is_converged():
            raise ConvergenceError(
                "collector snapshot requested before convergence"
            )
        snapshot = RibSnapshot(day)
        for asn in peer_asns:
            router = self.router(asn)
            peer = PeerId(asn=asn)
            table = router.loc_rib()
            wanted = prefixes if prefixes is not None else sorted(
                table, key=lambda p: p.sort_key()
            )
            for prefix in wanted:
                if prefix not in table:
                    continue
                path = self.best_path(asn, prefix)
                assert path is not None
                snapshot.add(Route(prefix, path, peer))
        return snapshot
