"""A policy-aware BGP route-propagation engine.

The paper's data comes from real BGP routers applying commercial routing
policies.  This subpackage reproduces that substrate at two levels:

- :mod:`repro.bgp.network` — a full per-router message-passing engine
  (adj-RIB-in, decision process, export filtering) used by the examples,
  the integration tests and the real-time alerter workloads.
- :mod:`repro.bgp.oracle` — a Gao-Rexford path oracle that computes the
  converged best path from every AS to a given origin in one pass; the
  1279-day study uses it because message-level simulation of 10^5
  prefix-days is unnecessary when only converged tables are archived.

Both levels share the same relationship model and export rules, and the
test suite asserts they agree on converged paths.
"""

from repro.bgp.messages import Announcement, Withdrawal
from repro.bgp.network import Network
from repro.bgp.oracle import GaoRexfordOracle, OracleRoute
from repro.bgp.policy import RouteType, export_allowed, local_pref_for
from repro.bgp.relationships import ASGraph, Relationship

__all__ = [
    "Announcement",
    "Withdrawal",
    "Network",
    "GaoRexfordOracle",
    "OracleRoute",
    "RouteType",
    "export_allowed",
    "local_pref_for",
    "ASGraph",
    "Relationship",
]
