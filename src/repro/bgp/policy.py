"""Gao-Rexford import and export policy.

Two rules generate realistic inter-domain routing:

1. **Preference** — prefer routes learned from customers over peers
   over providers (economics: customers pay you).
2. **Export** — routes learned from a peer or provider are exported
   only to customers; customer routes and self-originated routes go to
   everyone (you only carry traffic someone pays you for).

These rules are what both the message-passing engine and the oracle
enforce, so converged tables are valley-free just like the real tables
the paper measured.
"""

from __future__ import annotations

import enum

from repro.bgp.relationships import Relationship


class RouteType(enum.IntEnum):
    """How the local AS learned a route.

    Order encodes preference: higher is better.  ``ORIGIN`` (a route the
    AS itself originates) beats everything, then customer, peer,
    provider routes.
    """

    PROVIDER = 0
    PEER = 1
    CUSTOMER = 2
    ORIGIN = 3

    @classmethod
    def from_relationship(cls, relationship: Relationship) -> "RouteType":
        """The route type of a route learned from ``relationship``."""
        if relationship is Relationship.CUSTOMER:
            return cls.CUSTOMER
        if relationship is Relationship.PEER:
            return cls.PEER
        return cls.PROVIDER


#: LOCAL_PREF values by route type — the conventional 80/90/100 ladder.
_LOCAL_PREF = {
    RouteType.PROVIDER: 80,
    RouteType.PEER: 90,
    RouteType.CUSTOMER: 100,
    RouteType.ORIGIN: 200,
}


def local_pref_for(route_type: RouteType) -> int:
    """The LOCAL_PREF a Gao-Rexford import policy assigns."""
    return _LOCAL_PREF[route_type]


def export_allowed(route_type: RouteType, to_neighbor: Relationship) -> bool:
    """Whether a route of ``route_type`` may be exported to ``to_neighbor``.

    The valley-free rule: only customer routes and self-originated
    routes are announced to peers and providers; everything is announced
    to customers.
    """
    if to_neighbor is Relationship.CUSTOMER:
        return True
    return route_type in (RouteType.CUSTOMER, RouteType.ORIGIN)
