"""AS-level business relationships (Gao's model).

Inter-AS routing policy in the study era (and now) is dominated by two
relationship types: customer-provider (the customer pays) and
settlement-free peering.  Export rules derived from them produce the
"valley-free" paths that real tables exhibit, which in turn shape which
MOAS conflicts are *visible* from which vantage points.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator

from repro.netbase.asn import validate_asn


class Relationship(enum.Enum):
    """The relationship of a neighbor, from the local AS's viewpoint."""

    CUSTOMER = "customer"
    PROVIDER = "provider"
    PEER = "peer"

    def inverse(self) -> "Relationship":
        """The same link seen from the other end."""
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER


class ASGraph:
    """An annotated AS-level topology.

    Links are stored once and exposed from both endpoints' viewpoints.
    The graph refuses contradictory duplicate links (e.g. declaring A
    both provider and peer of B) — a modelling bug we want loud.
    """

    def __init__(self) -> None:
        self._neighbors: dict[int, dict[int, Relationship]] = {}

    # -- construction ---------------------------------------------------

    def add_as(self, asn: int) -> None:
        """Ensure ``asn`` exists (possibly with no links yet)."""
        validate_asn(asn)
        self._neighbors.setdefault(asn, {})

    def add_link(
        self, asn: int, neighbor: int, relationship: Relationship
    ) -> None:
        """Declare ``neighbor`` to be ``relationship`` of ``asn``.

        ``add_link(7018, 42, Relationship.CUSTOMER)`` reads "AS 42 is a
        customer of AS 7018".  The inverse direction is derived.
        """
        validate_asn(asn)
        validate_asn(neighbor)
        if asn == neighbor:
            raise ValueError(f"AS {asn} cannot neighbor itself")
        existing = self._neighbors.get(asn, {}).get(neighbor)
        if existing is not None and existing is not relationship:
            raise ValueError(
                f"conflicting relationship for {asn}-{neighbor}: "
                f"{existing.value} vs {relationship.value}"
            )
        self._neighbors.setdefault(asn, {})[neighbor] = relationship
        self._neighbors.setdefault(neighbor, {})[asn] = relationship.inverse()

    def add_customer(self, provider: int, customer: int) -> None:
        """Shorthand: ``customer`` buys transit from ``provider``."""
        self.add_link(provider, customer, Relationship.CUSTOMER)

    def add_peering(self, left: int, right: int) -> None:
        """Shorthand: settlement-free peering between two ASes."""
        self.add_link(left, right, Relationship.PEER)

    # -- queries --------------------------------------------------------

    def __contains__(self, asn: int) -> bool:
        return asn in self._neighbors

    def __len__(self) -> int:
        return len(self._neighbors)

    def ases(self) -> Iterator[int]:
        """All AS numbers in the graph."""
        return iter(self._neighbors)

    def num_links(self) -> int:
        """Total number of links (each counted once)."""
        return sum(len(adj) for adj in self._neighbors.values()) // 2

    def neighbors(self, asn: int) -> dict[int, Relationship]:
        """Mapping neighbor ASN -> relationship from ``asn``'s viewpoint."""
        return dict(self._require(asn))

    def relationship(self, asn: int, neighbor: int) -> Relationship:
        """Relationship of ``neighbor`` from ``asn``'s viewpoint."""
        adjacency = self._require(asn)
        if neighbor not in adjacency:
            raise KeyError(f"AS {asn} has no link to AS {neighbor}")
        return adjacency[neighbor]

    def has_link(self, asn: int, neighbor: int) -> bool:
        """True if a link exists between the two ASes."""
        return neighbor in self._neighbors.get(asn, {})

    def customers_of(self, asn: int) -> list[int]:
        """ASes buying transit from ``asn``, sorted."""
        return self._filtered(asn, Relationship.CUSTOMER)

    def providers_of(self, asn: int) -> list[int]:
        """ASes that ``asn`` buys transit from, sorted."""
        return self._filtered(asn, Relationship.PROVIDER)

    def peers_of(self, asn: int) -> list[int]:
        """Settlement-free peers of ``asn``, sorted."""
        return self._filtered(asn, Relationship.PEER)

    def is_stub(self, asn: int) -> bool:
        """True if ``asn`` has no customers (an edge/origin-only AS)."""
        return not self.customers_of(asn)

    def degree(self, asn: int) -> int:
        """Number of neighbors of ``asn``."""
        return len(self._require(asn))

    def links(self) -> Iterator[tuple[int, int, Relationship]]:
        """Each link once, as (asn, neighbor, relationship-from-asn).

        Customer-provider links are reported from the provider side;
        peering links from the lower ASN.
        """
        for asn, adjacency in self._neighbors.items():
            for neighbor, relationship in adjacency.items():
                if relationship is Relationship.CUSTOMER:
                    yield (asn, neighbor, relationship)
                elif relationship is Relationship.PEER and asn < neighbor:
                    yield (asn, neighbor, relationship)

    def copy(self) -> "ASGraph":
        """A deep copy sharing no adjacency state."""
        duplicate = ASGraph()
        for asn, adjacency in self._neighbors.items():
            duplicate._neighbors[asn] = dict(adjacency)
        return duplicate

    @classmethod
    def from_links(
        cls, links: Iterable[tuple[int, int, Relationship]]
    ) -> "ASGraph":
        graph = cls()
        for asn, neighbor, relationship in links:
            graph.add_link(asn, neighbor, relationship)
        return graph

    def _require(self, asn: int) -> dict[int, Relationship]:
        if asn not in self._neighbors:
            raise KeyError(f"unknown AS {asn}")
        return self._neighbors[asn]

    def _filtered(self, asn: int, wanted: Relationship) -> list[int]:
        return sorted(
            neighbor
            for neighbor, relationship in self._require(asn).items()
            if relationship is wanted
        )
