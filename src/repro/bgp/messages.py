"""BGP update abstractions exchanged inside the engine."""

from __future__ import annotations

from dataclasses import dataclass

from repro.netbase.aspath import ASPath
from repro.netbase.prefix import Prefix


@dataclass(frozen=True)
class Announcement:
    """A route announcement as it crosses one AS-AS session.

    ``path`` is the path as sent — the sender has already prepended its
    own ASN (possibly several times, when prepending for traffic
    engineering).
    """

    prefix: Prefix
    path: ASPath
    sender: int

    def __post_init__(self) -> None:
        if self.path.first_as() != self.sender:
            raise ValueError(
                f"announcement from AS {self.sender} must start with it, "
                f"got path {self.path}"
            )


@dataclass(frozen=True)
class Withdrawal:
    """A route withdrawal for ``prefix`` from ``sender``."""

    prefix: Prefix
    sender: int
