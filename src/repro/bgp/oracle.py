"""Closed-form Gao-Rexford routing: converged paths without messages.

For the 1279-day study the message-passing engine is wasteful — daily
archives only contain *converged* tables.  Under Gao-Rexford policies
the converged route from every AS towards one origin is computable with
three breadth-first passes (Gao 2001):

1. **customer routes** — ASes reaching the origin through a chain of
   customer links (walking provider-ward from the origin);
2. **peer routes** — one peer hop off a customer route;
3. **provider routes** — everything else, learned down provider chains.

Preference is stage order (customer > peer > provider); within a stage,
shortest path wins and ties break to the lowest next-hop ASN — the same
tie-break the message engine uses, and the test suite holds the two
implementations to agreement.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.bgp.policy import RouteType
from repro.bgp.relationships import ASGraph


@dataclass(frozen=True)
class OracleRoute:
    """The converged route of one AS toward one origin."""

    route_type: RouteType
    length: int  # number of AS hops from this AS to the origin
    next_hop: int | None  # None at the origin itself

    def preference_key(self) -> tuple[int, int]:
        """Sort key: better routes compare greater."""
        return (int(self.route_type), -self.length)


class GaoRexfordOracle:
    """Converged-route computation with per-origin caching."""

    def __init__(self, graph: ASGraph) -> None:
        self.graph = graph
        self._cache: dict[int, dict[int, OracleRoute]] = {}

    def invalidate(self) -> None:
        """Drop all cached routing state (call after editing the graph)."""
        self._cache.clear()

    def routes_to(self, origin: int) -> dict[int, OracleRoute]:
        """Converged route of every AS that can reach ``origin``."""
        if origin not in self._cache:
            self._cache[origin] = self._compute(origin)
        return self._cache[origin]

    def _compute(self, origin: int) -> dict[int, OracleRoute]:
        if origin not in self.graph:
            raise KeyError(f"unknown origin AS {origin}")
        routes: dict[int, OracleRoute] = {
            origin: OracleRoute(RouteType.ORIGIN, 0, None)
        }

        # Stage 1: customer routes, breadth-first toward providers.
        frontier = [origin]
        length = 0
        while frontier:
            length += 1
            next_frontier: set[int] = set()
            for asn in sorted(frontier):
                for provider in self.graph.providers_of(asn):
                    if provider in routes:
                        continue
                    next_frontier.add(provider)
            for provider in sorted(next_frontier):
                next_hop = min(
                    customer
                    for customer in self.graph.customers_of(provider)
                    if customer in routes
                    and routes[customer].length == length - 1
                    and routes[customer].route_type
                    in (RouteType.ORIGIN, RouteType.CUSTOMER)
                )
                routes[provider] = OracleRoute(
                    RouteType.CUSTOMER, length, next_hop
                )
            frontier = sorted(next_frontier)

        # Stage 2: peer routes — one peering hop off a customer route.
        peer_routes: dict[int, OracleRoute] = {}
        for asn in self.graph.ases():
            if asn in routes:
                continue
            candidates = [
                (routes[peer].length, peer)
                for peer in self.graph.peers_of(asn)
                if peer in routes
            ]
            if candidates:
                best_length, best_peer = min(candidates)
                peer_routes[asn] = OracleRoute(
                    RouteType.PEER, best_length + 1, best_peer
                )
        routes.update(peer_routes)

        # Stage 3: provider routes — Dijkstra down customer links from
        # every routed AS (start lengths differ, edges are unit).
        heap: list[tuple[int, int, int]] = []
        for asn, route in routes.items():
            for customer in self.graph.customers_of(asn):
                if customer not in routes:
                    heapq.heappush(heap, (route.length + 1, asn, customer))
        while heap:
            length, via, asn = heapq.heappop(heap)
            if asn in routes:
                continue
            routes[asn] = OracleRoute(RouteType.PROVIDER, length, via)
            for customer in self.graph.customers_of(asn):
                if customer not in routes:
                    heapq.heappush(heap, (length + 1, asn, customer))
        return routes

    # -- path level -----------------------------------------------------

    def path(self, from_asn: int, origin: int) -> tuple[int, ...] | None:
        """AS path from ``from_asn`` to ``origin``, inclusive of both.

        This is the path ``from_asn`` would export to a collector
        session: itself first, the origin last.  None if unreachable.
        """
        routes = self.routes_to(origin)
        if from_asn not in routes:
            return None
        hops = [from_asn]
        current = from_asn
        while current != origin:
            next_hop = routes[current].next_hop
            assert next_hop is not None
            hops.append(next_hop)
            current = next_hop
        return tuple(hops)

    def route(self, from_asn: int, origin: int) -> OracleRoute | None:
        """The converged route record, None if unreachable."""
        return self.routes_to(origin).get(from_asn)

    def best_origin(
        self, from_asn: int, origins: list[int]
    ) -> int | None:
        """Which of several origins for one prefix ``from_asn`` selects.

        This is the decision process applied across a MOAS conflict:
        the vantage AS prefers customer routes, then peer, then
        provider, then shortest path, then (deterministically) the
        lowest origin ASN.  None if it can reach none of them.
        """
        best: tuple[tuple[int, int, int], int] | None = None
        for origin in origins:
            route = self.routes_to(origin).get(from_asn)
            if route is None:
                continue
            key = route.preference_key() + (-origin,)
            if best is None or key > best[0]:
                best = (key, origin)
        return best[1] if best else None
