"""Scoring verdicts against injected ground truth.

The paper concedes (Section VI-F) that duration alone "can not be
accurate enough"; this module measures exactly how accurate any
attribution heuristic is.  Given the per-prefix verdicts of a
:class:`~repro.core.verdict.VerdictEngine` run and an archive's answer
keys — ``incidents.json`` (injected incidents) and
``ground_truth.json`` (organic cause processes, mapped onto the same
kind vocabulary) — it produces per-kind precision/recall/F1, a full
truth-by-prediction confusion matrix, and the injected-incident
coverage the CI smoke job gates on.

Everything is exposed three ways: :func:`evaluate_verdicts` for
library callers, ``MoasService.evaluate()`` for sessions, and the
``repro evaluate`` CLI (rendered through the registry's
``("evaluation", csv|ascii|json)`` renderers).
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.verdict import KIND_ORGANIC, Verdict
from repro.netbase.asn import is_private_asn
from repro.netbase.prefix import Prefix
from repro.scenario.incidents import IncidentKind, IncidentLabel

#: The scoreable (non-organic) kind vocabulary, in report order.
INCIDENT_KINDS: tuple[str, ...] = tuple(
    kind.value for kind in IncidentKind
)

#: Organic cause -> truth kind.  The organic processes that *are* a
#: hijack/IXP/anycast shape map onto the incident vocabulary (the
#: verdict engine cannot and should not tell an injected misconfig from
#: an organic one); policy-driven multi-origination stays "organic".
_CAUSE_TO_KIND: dict[str, str] = {
    "exchange_point": "ixp_conflict",
    "misconfig": "exact_hijack",
    "fault_mass_origination": "exact_hijack",
    "anycast": "anycast",
    "static_multihoming": KIND_ORGANIC,
    "traffic_engineering": KIND_ORGANIC,
    "provider_transition": KIND_ORGANIC,
}


def organic_truth(ground_truth: Sequence[Mapping]) -> dict[Prefix, str]:
    """Map generator ground-truth events onto the kind vocabulary.

    ``private_as`` events count as a leak only when a private ASN
    actually reached origin position (otherwise nothing distinguishes
    them from ordinary multi-homing, by design).  A prefix conflicted
    by several causes keeps its most specific (non-organic) kind.
    """
    truth: dict[Prefix, str] = {}
    for event in ground_truth:
        cause = event["cause"]
        if cause == "private_as":
            kind = (
                "private_leak"
                if any(is_private_asn(asn) for asn in event["origins"])
                else KIND_ORGANIC
            )
        else:
            kind = _CAUSE_TO_KIND.get(cause, KIND_ORGANIC)
        prefix = Prefix.parse(event["prefix"])
        if truth.get(prefix, KIND_ORGANIC) == KIND_ORGANIC:
            truth[prefix] = kind
    return truth


@dataclass(frozen=True)
class KindScore:
    """Precision/recall counts for one incident kind."""

    kind: str
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        predicted = self.true_positives + self.false_positives
        return self.true_positives / predicted if predicted else 0.0

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 0.0

    @property
    def f1(self) -> float:
        denominator = self.precision + self.recall
        if denominator == 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / denominator


@dataclass
class EvaluationResult:
    """Everything one scoring run measured."""

    #: truth kind -> predicted kind -> prefix count.
    confusion: dict[str, dict[str, int]]
    per_kind: tuple[KindScore, ...]
    #: Injected-incident coverage: kind -> (detected, injected).
    injected_coverage: dict[str, tuple[int, int]]
    num_verdicts: int
    num_labeled: int
    num_injected: int
    #: Verdicts per RFC 6811 rollup state (``valid`` / ``invalid`` /
    #: ``not_found``); empty when scoring ran without a ROA table.
    rpki_states: dict[str, int] = field(default_factory=dict)

    @property
    def micro_scores(self) -> KindScore:
        """Counts pooled over every incident kind (excludes organic)."""
        return KindScore(
            kind="micro",
            true_positives=sum(s.true_positives for s in self.per_kind),
            false_positives=sum(s.false_positives for s in self.per_kind),
            false_negatives=sum(s.false_negatives for s in self.per_kind),
        )

    @property
    def micro_f1(self) -> float:
        return self.micro_scores.f1

    @property
    def macro_f1(self) -> float:
        """Mean F1 over the kinds that actually occur in the truth."""
        present = [
            score
            for score in self.per_kind
            if score.true_positives + score.false_negatives > 0
        ]
        if not present:
            return 0.0
        return sum(score.f1 for score in present) / len(present)

    @property
    def injected_detected(self) -> int:
        return sum(hit for hit, _total in self.injected_coverage.values())

    def to_dict(self) -> dict:
        """JSON-serializable form (the ``BENCH_evaluation`` payload)."""
        micro = self.micro_scores
        return {
            "per_kind": [
                {
                    "kind": score.kind,
                    "true_positives": score.true_positives,
                    "false_positives": score.false_positives,
                    "false_negatives": score.false_negatives,
                    "precision": round(score.precision, 4),
                    "recall": round(score.recall, 4),
                    "f1": round(score.f1, 4),
                }
                for score in self.per_kind
            ],
            "micro": {
                "precision": round(micro.precision, 4),
                "recall": round(micro.recall, 4),
                "f1": round(micro.f1, 4),
            },
            "macro_f1": round(self.macro_f1, 4),
            "confusion": {
                truth: dict(sorted(row.items()))
                for truth, row in sorted(self.confusion.items())
            },
            "injected_coverage": {
                kind: {"detected": hit, "injected": total}
                for kind, (hit, total) in sorted(
                    self.injected_coverage.items()
                )
            },
            "num_verdicts": self.num_verdicts,
            "num_labeled": self.num_labeled,
            "num_injected": self.num_injected,
            "rpki_states": dict(sorted(self.rpki_states.items())),
        }


@dataclass
class EvaluationReport:
    """A full ``evaluate`` run: the verdicts plus their scores."""

    verdicts: dict[Prefix, Verdict]
    result: EvaluationResult
    labels: tuple[IncidentLabel, ...] = ()
    config: dict = field(default_factory=dict)


def evaluate_verdicts(
    verdicts: Mapping[Prefix, Verdict],
    *,
    injected: Sequence[IncidentLabel | Mapping] = (),
    organic: Sequence[Mapping] = (),
) -> EvaluationResult:
    """Score predicted kinds against the combined answer key.

    The universe is every prefix with a truth label or a verdict:
    unlabeled prefixes count as truth-``organic`` (so any incident
    prediction on them is a false positive), and labeled prefixes
    without a matching verdict count as missed.  An injected label
    always overrides the organic mapping for the same prefix.
    """
    labels = [
        label
        if isinstance(label, IncidentLabel)
        else IncidentLabel.from_dict(label)
        for label in injected
    ]
    truth = organic_truth(organic)
    injected_by_prefix = {label.prefix: label for label in labels}
    for label in labels:
        truth[label.prefix] = label.kind.value

    confusion: dict[str, dict[str, int]] = {}
    coverage: dict[str, list[int]] = {}
    for label in labels:
        coverage.setdefault(label.kind.value, [0, 0])[1] += 1

    universe = set(truth) | set(verdicts)
    for prefix in universe:
        actual = truth.get(prefix, KIND_ORGANIC)
        verdict = verdicts.get(prefix)
        predicted = verdict.kind if verdict is not None else "missed"
        row = confusion.setdefault(actual, {})
        row[predicted] = row.get(predicted, 0) + 1
        label = injected_by_prefix.get(prefix)
        if label is not None and predicted == actual:
            coverage[label.kind.value][0] += 1

    per_kind = []
    for kind in INCIDENT_KINDS:
        true_positives = confusion.get(kind, {}).get(kind, 0)
        false_negatives = (
            sum(confusion.get(kind, {}).values()) - true_positives
        )
        false_positives = sum(
            row.get(kind, 0)
            for truth_kind, row in confusion.items()
            if truth_kind != kind
        )
        per_kind.append(
            KindScore(
                kind=kind,
                true_positives=true_positives,
                false_positives=false_positives,
                false_negatives=false_negatives,
            )
        )
    rpki_states: dict[str, int] = {}
    for verdict in verdicts.values():
        if verdict.rpki_state is not None:
            rpki_states[verdict.rpki_state] = (
                rpki_states.get(verdict.rpki_state, 0) + 1
            )
    return EvaluationResult(
        confusion=confusion,
        per_kind=tuple(per_kind),
        injected_coverage={
            kind: (hit, total) for kind, (hit, total) in coverage.items()
        },
        num_verdicts=len(verdicts),
        num_labeled=len(truth),
        num_injected=len(labels),
        rpki_states=rpki_states,
    )


# -- renderers ----------------------------------------------------------------


def evaluation_csv(result: EvaluationResult) -> str:
    """Per-kind score table as CSV (plus the pooled micro row)."""
    lines = ["kind,true_positives,false_positives,false_negatives,precision,recall,f1"]
    for score in (*result.per_kind, result.micro_scores):
        lines.append(
            f"{score.kind},{score.true_positives},{score.false_positives},"
            f"{score.false_negatives},{score.precision:.4f},"
            f"{score.recall:.4f},{score.f1:.4f}"
        )
    return "\n".join(lines) + "\n"


def evaluation_ascii(result: EvaluationResult) -> str:
    """The human-readable evaluation report."""
    lines = [
        "Incident attribution scorecard",
        "==============================",
        "",
        f"{'kind':<20} {'tp':>5} {'fp':>5} {'fn':>5} "
        f"{'prec':>7} {'recall':>7} {'f1':>7}",
    ]
    for score in (*result.per_kind, result.micro_scores):
        lines.append(
            f"{score.kind:<20} {score.true_positives:>5} "
            f"{score.false_positives:>5} {score.false_negatives:>5} "
            f"{score.precision:>7.3f} {score.recall:>7.3f} "
            f"{score.f1:>7.3f}"
        )
    lines.append("")
    lines.append(
        f"macro F1 {result.macro_f1:.3f} over "
        f"{result.num_labeled} labeled prefixes, "
        f"{result.num_verdicts} verdicts"
    )
    if result.rpki_states:
        lines.append("")
        lines.append("RPKI origin validation (verdicts per state):")
        for state, count in sorted(result.rpki_states.items()):
            lines.append(f"  {state:<20} {count}")
    if result.injected_coverage:
        lines.append("")
        lines.append("Injected incidents detected:")
        for kind, (hit, total) in sorted(
            result.injected_coverage.items()
        ):
            lines.append(f"  {kind:<20} {hit}/{total}")
    lines.append("")
    lines.append("Confusion (truth -> predicted):")
    for truth_kind, row in sorted(result.confusion.items()):
        cells = ", ".join(
            f"{predicted}={count}"
            for predicted, count in sorted(row.items())
        )
        lines.append(f"  {truth_kind:<20} {cells}")
    return "\n".join(lines) + "\n"


def evaluation_json(result: EvaluationResult) -> str:
    """The full scoring payload as JSON."""
    return json.dumps(result.to_dict(), indent=2)
