"""The end-to-end study pipeline and figure/table generation.

:mod:`repro.analysis.sources` adapts archives (CDS or MRT) into daily
detections; :mod:`repro.analysis.pipeline` streams them into
:class:`~repro.analysis.pipeline.StudyResults` —
:mod:`repro.analysis.parallel` fans that work out over a process pool
and merges per-shard states back, with identical results;
:mod:`repro.analysis.report` and :mod:`repro.analysis.figures` render
the paper's tables and figures; :mod:`repro.analysis.evaluation`
scores verdict-engine cause attribution against injected ground truth
(per-kind precision/recall, confusion matrix); :mod:`repro.analysis.vantage`
reproduces the Section III vantage-point comparison; and
:mod:`repro.analysis.baselines` implements the related-work baseline
(Huston's bare daily counter).
"""

from repro.analysis.compare import (
    compare_to_paper,
    comparison_table,
    fraction_passing,
)
from repro.analysis.evaluation import (
    EvaluationReport,
    EvaluationResult,
    evaluate_verdicts,
)
from repro.analysis.export import episodes_csv, summary_json
from repro.analysis.parallel import ParallelExecutor, resolve_workers
from repro.analysis.pipeline import StudyPipeline, StudyResults, StudyState
from repro.analysis.sources import (
    detections_from_archive,
    detections_from_mrt_files,
)

__all__ = [
    "EvaluationReport",
    "EvaluationResult",
    "evaluate_verdicts",
    "ParallelExecutor",
    "resolve_workers",
    "StudyState",
    "compare_to_paper",
    "comparison_table",
    "fraction_passing",
    "episodes_csv",
    "summary_json",
    "StudyPipeline",
    "StudyResults",
    "detections_from_archive",
    "detections_from_mrt_files",
]
