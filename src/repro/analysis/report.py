"""Rendering the paper's tables from pipeline results."""

from __future__ import annotations

from repro.analysis.pipeline import StudyResults
from repro.netbase.names import asn_name
from repro.scenario.calibration import PAPER
from repro.util.tables import format_table


def figure2_table(results: StudyResults) -> str:
    """Figure 2: median of MOAS conflicts per year, with growth rates."""
    rows = []
    for year, median in sorted(results.yearly_medians.items()):
        rate = results.yearly_increase_rates.get(year)
        rows.append(
            [
                year,
                median,
                f"{rate * 100:.1f}%" if rate is not None else "",
            ]
        )
    return format_table(
        ["Year", "Median of MOAS conflicts", "Increasing rate"],
        rows,
        title="Fig. 2. Median of MOAS conflicts per year",
    )


def figure4_table(results: StudyResults) -> str:
    """Figure 4: expectation of duration under minimum-duration filters."""
    rows = [
        [expectation, f"longer than {threshold} days"]
        for threshold, expectation in sorted(
            results.duration_expectations.items()
        )
    ]
    return format_table(
        ["Expectation (days)", "Measured data set"],
        rows,
        title="Fig. 4. Expectation of the duration of MOAS conflicts",
    )


def summary_report(results: StudyResults) -> str:
    """A Section IV/VI style prose summary with paper comparisons."""
    lines = [
        "MOAS study summary",
        "==================",
        f"observed days:            {results.total_days}"
        f"  (paper: {PAPER.observation_days})",
        f"total conflicts:          {results.total_conflicts}"
        f"  (paper: {PAPER.total_conflicts})",
        f"one-time conflicts:       {results.one_time_conflicts}"
        f"  (paper: {PAPER.one_day_conflicts})",
        f"conflicts > 300 days:     {results.long_lived_conflicts}"
        f"  (paper: {PAPER.conflicts_over_300_days})",
        f"ongoing at study end:     {results.ongoing_conflicts}"
        f"  (paper: {PAPER.ongoing_at_end})",
        f"longest duration (days):  {results.max_duration}"
        f"  (paper: {PAPER.max_duration_days})",
        f"exchange-point conflicts: {results.exchange_point_conflicts}"
        f"  (paper: {PAPER.exchange_point_prefixes})",
        f"AS-set prefixes excluded: {results.as_set_excluded_max}"
        f"  (paper: ~{PAPER.as_set_prefixes})",
        "",
        "peak days:",
    ]
    for day, count in results.peak_days:
        lines.append(f"  {day}: {count} conflicts")
    if results.case_studies:
        lines.append("")
        lines.append("detected fault spikes:")
        for case in results.case_studies:
            report = case.report
            lines.append(
                f"  {report.day}: {report.total_conflicts} conflicts "
                f"(baseline {report.baseline_median:.0f}); "
                f"{asn_name(report.culprit_asn)} involved in "
                f"{report.culprit_involved}"
            )
            if case.upstream_asn is not None:
                lines.append(
                    f"    sequence ({asn_name(case.upstream_asn)}, "
                    f"AS {report.culprit_asn}) in "
                    f"{case.sequence_involved} of {case.sequence_total}"
                )
    return "\n".join(lines)
