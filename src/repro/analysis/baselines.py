"""Related-work baseline: Huston's BGP table statistics counter.

Section II: Geoff Huston's site tracked "a daily count of MOAS
conflicts ... [but] provides only a basic count of MOAS conflicts and
no further explanations or analysis."  The baseline reproduces exactly
that: per-day multi-origin prefix counts with no episode merging, no
durations, no classification, no cause analysis — the thing the paper
improves upon.  Benchmarks compare its output (and cost) against the
full pipeline's.
"""

from __future__ import annotations

import datetime
from collections.abc import Iterable

from repro.core.detector import DayDetection


class HustonCounter:
    """The bare daily-count baseline."""

    def __init__(self) -> None:
        self.series: list[tuple[datetime.date, int]] = []

    def observe(self, detection: DayDetection) -> int:
        """Record one day; returns that day's count."""
        count = detection.num_conflicts
        self.series.append((detection.day, count))
        return count

    def run(self, detections: Iterable[DayDetection]) -> list[tuple[datetime.date, int]]:
        """Consume a whole detection stream; returns the series."""
        for detection in detections:
            self.observe(detection)
        return self.series

    def latest(self) -> tuple[datetime.date, int] | None:
        """The most recent (day, count) pair, if any."""
        return self.series[-1] if self.series else None
