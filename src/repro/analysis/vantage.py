"""Vantage-point comparison — Section III's motivating observation.

"At a randomly selected time, the Oregon Route Views server observed
1364 MOAS conflicts, but three other individual ISPs observed 30, 12,
and 228 MOAS conflicts during the same period."

A single ISP sees a conflict only when *its own* BGP sessions carry
routes with divergent origins — i.e. when two of its neighbors export
routes to the same prefix ending at different origin ASes into its
adj-RIB-in.  A multi-peer collector aggregates many such viewpoints and
therefore sees far more.  This module computes both sides from the same
converged routing state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.oracle import GaoRexfordOracle
from repro.bgp.policy import export_allowed
from repro.bgp.relationships import ASGraph
from repro.netbase.prefix import Prefix


@dataclass(frozen=True)
class VantageComparison:
    """Conflict visibility from the collector vs individual ASes."""

    collector_conflicts: int
    per_as_conflicts: dict[int, int]


class VantageAnalyzer:
    """Counts conflicts visible from arbitrary vantage ASes."""

    def __init__(self, graph: ASGraph) -> None:
        self.graph = graph
        self._oracle = GaoRexfordOracle(graph)

    def adj_rib_in_origins(
        self, vantage: int, origins: list[int]
    ) -> set[int]:
        """Origins present in ``vantage``'s adj-RIB-in for one prefix.

        Each neighbor exports its best route for the prefix to
        ``vantage`` if its export policy allows; the origins of those
        exported routes are what the ISP's own table data would show.
        """
        seen: set[int] = set()
        neighbor_rels = self.graph.neighbors(vantage)
        for neighbor, relationship in neighbor_rels.items():
            best = self._best_origin_at(neighbor, origins)
            if best is None:
                continue
            origin, route_type = best
            # The neighbor exports to `vantage` according to what
            # `vantage` is *to the neighbor* — the inverse relationship.
            if export_allowed(route_type, relationship.inverse()):
                seen.add(origin)
        # The vantage AS itself may be one of the origins.
        if vantage in origins:
            seen.add(vantage)
        return seen

    def _best_origin_at(self, asn: int, origins: list[int]):
        best_key = None
        best = None
        for origin in origins:
            route = self._oracle.route(asn, origin)
            if route is None:
                continue
            key = route.preference_key() + (-origin,)
            if best_key is None or key > best_key:
                best_key = key
                best = (origin, route.route_type)
        return best

    def conflict_visible_at(self, vantage: int, origins: list[int]) -> bool:
        """Does the single-AS view reveal this conflict?"""
        return len(self.adj_rib_in_origins(vantage, origins)) >= 2

    def compare(
        self,
        conflicts: list[tuple[Prefix, list[int]]],
        collector_visible: list[bool],
        vantage_asns: list[int],
    ) -> VantageComparison:
        """Count visibility for the collector and each vantage AS.

        ``conflicts`` holds (prefix, origin list) pairs of every
        *actual* multi-origin prefix; ``collector_visible`` marks which
        the multi-peer collector records (computed by the caller from
        collector state).
        """
        if len(conflicts) != len(collector_visible):
            raise ValueError("conflicts and visibility lists must align")
        per_as = {
            vantage: sum(
                1
                for (_prefix, origins) in conflicts
                if self.conflict_visible_at(vantage, origins)
            )
            for vantage in vantage_asns
        }
        return VantageComparison(
            collector_conflicts=sum(collector_visible),
            per_as_conflicts=per_as,
        )
