"""Programmatic paper-vs-measured comparison.

Generates the paper-vs-measured comparison for *any* run, so users
changing seeds, scales or calibrations can immediately see where they
stand relative to the paper.  Each check returns a structured row with the paper value, the
scaled expectation, the measured value and a pass/fail verdict under a
tolerance band.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.pipeline import StudyResults
from repro.scenario.calibration import PAPER
from repro.util.tables import format_table


@dataclass(frozen=True)
class ComparisonRow:
    """One paper-vs-measured fact."""

    name: str
    paper_value: float
    expected: float  # paper value after scaling (== paper for scale-free)
    measured: float
    tolerance: float  # relative band around `expected`

    @property
    def ratio(self) -> float:
        if self.expected == 0:
            return float("inf") if self.measured else 1.0
        return self.measured / self.expected

    @property
    def ok(self) -> bool:
        return (
            self.expected * (1 - self.tolerance)
            <= self.measured
            <= self.expected * (1 + self.tolerance)
        )


def compare_to_paper(
    results: StudyResults, *, scale: float, tolerance: float = 0.5
) -> list[ComparisonRow]:
    """All headline comparisons for one study run.

    ``scale`` must be the ScenarioConfig scale the archive was generated
    with; absolute paper counts are multiplied by it, duration-type
    statistics are compared directly.
    """
    rows: list[ComparisonRow] = []

    def absolute(name: str, paper_value: float, measured: float) -> None:
        rows.append(
            ComparisonRow(
                name=name,
                paper_value=paper_value,
                expected=paper_value * scale,
                measured=measured,
                tolerance=tolerance,
            )
        )

    def scale_free(name: str, paper_value: float, measured: float) -> None:
        rows.append(
            ComparisonRow(
                name=name,
                paper_value=paper_value,
                expected=paper_value,
                measured=measured,
                tolerance=tolerance,
            )
        )

    absolute("total conflicts", PAPER.total_conflicts, results.total_conflicts)
    absolute(
        "one-time conflicts",
        PAPER.one_day_conflicts,
        results.one_time_conflicts,
    )
    absolute(
        "conflicts > 300 days",
        PAPER.conflicts_over_300_days,
        results.long_lived_conflicts,
    )
    absolute(
        "ongoing at study end", PAPER.ongoing_at_end, results.ongoing_conflicts
    )
    for year, paper_median in PAPER.yearly_medians.items():
        measured = results.yearly_medians.get(year, 0.0)
        absolute(f"median {year}", paper_median, measured)
    scale_free(
        "max duration (days)", PAPER.max_duration_days, results.max_duration
    )
    for threshold, paper_value in PAPER.duration_expectations.items():
        measured = results.duration_expectations.get(threshold, 0.0)
        scale_free(
            f"E[duration | > {threshold}d]", paper_value, measured
        )
    return rows


def comparison_table(rows: list[ComparisonRow]) -> str:
    """Render comparison rows as an aligned text table."""
    return format_table(
        ["Quantity", "Paper", "Expected here", "Measured", "Ratio", "OK"],
        [
            [
                row.name,
                row.paper_value,
                round(row.expected, 1),
                round(row.measured, 1),
                f"{row.ratio:.2f}x",
                "yes" if row.ok else "NO",
            ]
            for row in rows
        ],
        title="Paper vs measured",
    )


def fraction_passing(rows: list[ComparisonRow]) -> float:
    """Share of comparisons inside their tolerance band."""
    if not rows:
        return 0.0
    return sum(1 for row in rows if row.ok) / len(rows)
