"""The streaming study pipeline: detections in, paper statistics out.

Memory discipline matters: a full-scale study is ~10^5 conflicts times
10^3 days.  The pipeline therefore streams day by day, keeping only the
aggregates each figure needs (daily counts, episode tracker state,
per-year length counters, in-window classification tallies, spike
evidence), never the full per-day conflict sets.
"""

from __future__ import annotations

import datetime
import statistics
from collections import Counter, deque
from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.causes import SpikeReport
from repro.core.classifier import ConflictClass, classify_day
from repro.core.detector import DayDetection
from repro.core.episodes import ConflictEpisode, EpisodeTracker
from repro.core.stats import (
    duration_expectations,
    duration_histogram,
    involvement_fraction,
    one_time_conflicts,
    long_lived_conflicts,
    max_duration,
    ongoing_conflicts,
    peak_days,
    sequence_involvement_fraction,
    yearly_increase_rates,
    yearly_medians,
)
from repro.netbase.prefix import Prefix
from repro.scenario.timeline import CLASSIFICATION_WINDOW
from repro.topology.ixp import IXP_BLOCK


@dataclass(frozen=True)
class CaseStudy:
    """Spike-day evidence gathered while streaming (Section VI-E)."""

    report: SpikeReport
    #: (involved, total) for the culprit's most common upstream hop.
    upstream_asn: int | None
    sequence_involved: int
    sequence_total: int


@dataclass
class StudyResults:
    """Every statistic the paper's figures and tables report."""

    daily_series: list[tuple[datetime.date, int]]
    episodes: dict[Prefix, ConflictEpisode]
    yearly_medians: dict[int, float]
    yearly_increase_rates: dict[int, float]
    peak_days: list[tuple[datetime.date, int]]
    duration_histogram: Counter[int]
    duration_expectations: dict[int, float]
    one_time_conflicts: int
    long_lived_conflicts: int
    ongoing_conflicts: int
    max_duration: int
    length_distribution: dict[int, dict[int, float]]
    classification_series: list[tuple[datetime.date, dict[ConflictClass, int]]]
    case_studies: list[CaseStudy]
    exchange_point_conflicts: int
    as_set_excluded_max: int
    total_days: int

    @property
    def total_conflicts(self) -> int:
        return len(self.episodes)


@dataclass
class StudyPipeline:
    """Configuration for one pipeline run."""

    classification_window: tuple[datetime.date, datetime.date] = (
        CLASSIFICATION_WINDOW
    )
    spike_window_days: int = 30
    spike_factor: float = 4.0
    duration_thresholds: tuple[int, ...] = (0, 1, 9, 29, 89)

    def run(self, detections: Iterable[DayDetection]) -> StudyResults:
        """Stream all daily detections and assemble the results."""
        tracker = EpisodeTracker()
        daily_series: list[tuple[datetime.date, int]] = []
        recent_counts: deque[int] = deque(maxlen=self.spike_window_days)
        length_sums: dict[int, Counter[int]] = {}
        days_per_year: Counter[int] = Counter()
        classification: list[
            tuple[datetime.date, dict[ConflictClass, int]]
        ] = []
        case_studies: list[CaseStudy] = []
        as_set_excluded_max = 0
        total_days = 0
        window_start, window_end = self.classification_window

        for detection in detections:
            day = detection.day
            conflicts = list(detection.conflicts)
            count = len(conflicts)
            total_days += 1
            daily_series.append((day, count))
            tracker.observe_day(day, conflicts)
            as_set_excluded_max = max(
                as_set_excluded_max, detection.as_set_excluded
            )

            days_per_year[day.year] += 1
            bucket = length_sums.setdefault(day.year, Counter())
            for conflict in conflicts:
                bucket[conflict.prefix.length] += 1

            if window_start <= day <= window_end:
                classification.append((day, classify_day(conflicts)))

            # Spike detection needs some baseline history; a full
            # window is ideal but 7+ observed days suffice (studies
            # shorter than the window would otherwise never alarm).
            if len(recent_counts) >= min(self.spike_window_days, 7):
                baseline = statistics.median(recent_counts)
                if baseline > 0 and count >= self.spike_factor * baseline:
                    case_studies.append(
                        self._case_study(day, conflicts, count, baseline)
                    )
            recent_counts.append(count)

        episodes = tracker.finalize()
        length_distribution = {
            year: {
                length: bucket[length] / days_per_year[year]
                for length in sorted(bucket)
            }
            for year, bucket in sorted(length_sums.items())
        }
        exchange_point = sum(
            1 for prefix in episodes if IXP_BLOCK.contains(prefix)
        )
        return StudyResults(
            daily_series=daily_series,
            episodes=episodes,
            yearly_medians=yearly_medians(daily_series),
            yearly_increase_rates=yearly_increase_rates(
                yearly_medians(daily_series)
            ),
            peak_days=peak_days(daily_series),
            duration_histogram=duration_histogram(episodes.values()),
            duration_expectations=duration_expectations(
                episodes.values(), self.duration_thresholds
            ),
            one_time_conflicts=one_time_conflicts(episodes.values()),
            long_lived_conflicts=long_lived_conflicts(episodes.values()),
            ongoing_conflicts=ongoing_conflicts(episodes.values()),
            max_duration=max_duration(episodes.values()),
            length_distribution=length_distribution,
            classification_series=classification,
            case_studies=case_studies,
            exchange_point_conflicts=exchange_point,
            as_set_excluded_max=as_set_excluded_max,
            total_days=total_days,
        )

    def _case_study(
        self,
        day: datetime.date,
        conflicts: list,
        count: int,
        baseline: float,
    ) -> CaseStudy:
        """Gather the culprit evidence for a spike day, paper-style."""
        involvement: Counter[int] = Counter()
        for conflict in conflicts:
            for origin in conflict.origins:
                involvement[origin] += 1
        culprit, _hits = involvement.most_common(1)[0]
        involved, total = involvement_fraction(conflicts, culprit)
        report = SpikeReport(
            day=day,
            total_conflicts=count,
            baseline_median=float(baseline),
            culprit_asn=culprit,
            culprit_involved=involved,
        )
        # The paper identified the (upstream, culprit) hop for the 2001
        # incident; find the culprit's most common upstream in paths.
        upstream_counts: Counter[int] = Counter()
        for conflict in conflicts:
            for path in conflict.all_paths():
                for left, right in zip(path, path[1:]):
                    if right == culprit:
                        upstream_counts[left] += 1
        upstream = (
            upstream_counts.most_common(1)[0][0] if upstream_counts else None
        )
        if upstream is not None:
            seq_involved, seq_total = sequence_involvement_fraction(
                conflicts, upstream, culprit
            )
        else:
            seq_involved, seq_total = 0, len(conflicts)
        return CaseStudy(
            report=report,
            upstream_asn=upstream,
            sequence_involved=seq_involved,
            sequence_total=seq_total,
        )
