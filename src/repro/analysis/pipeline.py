"""The streaming study pipeline: detections in, paper statistics out.

Memory discipline matters: a full-scale study is ~10^5 conflicts times
10^3 days.  The pipeline therefore streams day by day, keeping only the
aggregates each figure needs (daily counts, episode tracker state,
per-year length counters, in-window classification tallies, spike
evidence), never the full per-day conflict sets.

The streaming state lives in :class:`StudyState`, an incrementally
feedable accumulator that can serialize itself mid-study
(:meth:`StudyState.state_dict` / :meth:`StudyState.from_state`).
:class:`StudyPipeline` is the batch convenience over it, and
:class:`repro.api.MoasService` is the session facade that adds
checkpoint files and pluggable sources on top.
"""

from __future__ import annotations

import datetime
import statistics
from collections import Counter, deque
from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.causes import SpikeReport
from repro.core.classifier import ConflictClass, classify_day
from repro.core.detector import DayDetection
from repro.core.episodes import ConflictEpisode, EpisodeTracker
from repro.core.stats import (
    duration_expectations,
    duration_histogram,
    involvement_fraction,
    one_time_conflicts,
    long_lived_conflicts,
    max_duration,
    ongoing_conflicts,
    peak_days,
    sequence_involvement_fraction,
    yearly_increase_rates,
    yearly_medians,
)
from repro.netbase.prefix import Prefix
from repro.scenario.timeline import CLASSIFICATION_WINDOW
from repro.topology.ixp import IXP_BLOCK


@dataclass(frozen=True)
class CaseStudy:
    """Spike-day evidence gathered while streaming (Section VI-E)."""

    report: SpikeReport
    #: (involved, total) for the culprit's most common upstream hop.
    upstream_asn: int | None
    sequence_involved: int
    sequence_total: int


@dataclass
class StudyResults:
    """Every statistic the paper's figures and tables report."""

    daily_series: list[tuple[datetime.date, int]]
    episodes: dict[Prefix, ConflictEpisode]
    yearly_medians: dict[int, float]
    yearly_increase_rates: dict[int, float]
    peak_days: list[tuple[datetime.date, int]]
    duration_histogram: Counter[int]
    duration_expectations: dict[int, float]
    one_time_conflicts: int
    long_lived_conflicts: int
    ongoing_conflicts: int
    max_duration: int
    length_distribution: dict[int, dict[int, float]]
    classification_series: list[tuple[datetime.date, dict[ConflictClass, int]]]
    case_studies: list[CaseStudy]
    exchange_point_conflicts: int
    as_set_excluded_max: int
    total_days: int

    @property
    def total_conflicts(self) -> int:
        return len(self.episodes)


@dataclass
class StudyPipeline:
    """Configuration for one pipeline run."""

    classification_window: tuple[datetime.date, datetime.date] = (
        CLASSIFICATION_WINDOW
    )
    spike_window_days: int = 30
    spike_factor: float = 4.0
    duration_thresholds: tuple[int, ...] = (0, 1, 9, 29, 89)

    def start(self) -> "StudyState":
        """A fresh incremental accumulator under this configuration."""
        return StudyState(self)

    def run(self, detections: Iterable[DayDetection]) -> StudyResults:
        """Stream all daily detections and assemble the results."""
        state = self.start()
        for detection in detections:
            state.feed_day(detection)
        return state.results()

    def config_dict(self) -> dict:
        """JSON-serializable form of this configuration."""
        window_start, window_end = self.classification_window
        return {
            "classification_window": [
                window_start.isoformat(),
                window_end.isoformat(),
            ],
            "spike_window_days": self.spike_window_days,
            "spike_factor": self.spike_factor,
            "duration_thresholds": list(self.duration_thresholds),
        }

    @classmethod
    def from_config_dict(cls, payload: dict) -> "StudyPipeline":
        """Rebuild a configuration from :meth:`config_dict` output."""
        window_start, window_end = payload["classification_window"]
        return cls(
            classification_window=(
                datetime.date.fromisoformat(window_start),
                datetime.date.fromisoformat(window_end),
            ),
            spike_window_days=payload["spike_window_days"],
            spike_factor=payload["spike_factor"],
            duration_thresholds=tuple(payload["duration_thresholds"]),
        )


class StudyState:
    """Incrementally-fed streaming state of one study.

    Feed daily detections in chronological order with :meth:`feed_day`;
    read the paper's statistics at any point with :meth:`results`
    (non-destructive — feeding can continue afterwards).  The entire
    streaming state round-trips through JSON via :meth:`state_dict` and
    :meth:`from_state`, which is what makes mid-study checkpointing
    possible without replaying earlier days.
    """

    def __init__(self, pipeline: StudyPipeline | None = None) -> None:
        self.pipeline = pipeline or StudyPipeline()
        self._tracker = EpisodeTracker()
        self._daily_series: list[tuple[datetime.date, int]] = []
        self._recent_counts: deque[int] = deque(
            maxlen=self.pipeline.spike_window_days
        )
        self._length_sums: dict[int, Counter[int]] = {}
        self._days_per_year: Counter[int] = Counter()
        self._classification: list[
            tuple[datetime.date, dict[ConflictClass, int]]
        ] = []
        self._case_studies: list[CaseStudy] = []
        self._as_set_excluded_max = 0
        self._total_days = 0

    @property
    def total_days(self) -> int:
        """Days fed so far."""
        return self._total_days

    @property
    def last_day(self) -> datetime.date | None:
        """The most recent day fed, or None before the first feed."""
        return self._daily_series[-1][0] if self._daily_series else None

    def feed_day(self, detection: DayDetection) -> None:
        """Fold one day's detection into the streaming aggregates.

        Days must arrive in strictly increasing order (enforced by the
        episode tracker).
        """
        pipeline = self.pipeline
        day = detection.day
        conflicts = list(detection.conflicts)
        count = len(conflicts)
        self._tracker.observe_day(day, conflicts)
        self._total_days += 1
        self._daily_series.append((day, count))
        self._as_set_excluded_max = max(
            self._as_set_excluded_max, detection.as_set_excluded
        )

        self._days_per_year[day.year] += 1
        bucket = self._length_sums.setdefault(day.year, Counter())
        for conflict in conflicts:
            bucket[conflict.prefix.length] += 1

        window_start, window_end = pipeline.classification_window
        if window_start <= day <= window_end:
            self._classification.append((day, classify_day(conflicts)))

        # Spike detection needs some baseline history; a full
        # window is ideal but 7+ observed days suffice (studies
        # shorter than the window would otherwise never alarm).
        if len(self._recent_counts) >= min(pipeline.spike_window_days, 7):
            baseline = statistics.median(self._recent_counts)
            if baseline > 0 and count >= pipeline.spike_factor * baseline:
                self._case_studies.append(
                    _case_study(day, conflicts, count, baseline)
                )
        self._recent_counts.append(count)

    def results(self) -> StudyResults:
        """Assemble the full statistics from the current state.

        Non-destructive: the state is still feedable afterwards, so a
        long-running service can report interim results mid-study.
        """
        episodes = self._tracker.finalize()
        length_distribution = {
            year: {
                length: bucket[length] / self._days_per_year[year]
                for length in sorted(bucket)
            }
            for year, bucket in sorted(self._length_sums.items())
        }
        exchange_point = sum(
            1 for prefix in episodes if IXP_BLOCK.contains(prefix)
        )
        return StudyResults(
            daily_series=list(self._daily_series),
            episodes=episodes,
            yearly_medians=yearly_medians(self._daily_series),
            yearly_increase_rates=yearly_increase_rates(
                yearly_medians(self._daily_series)
            ),
            peak_days=peak_days(self._daily_series),
            duration_histogram=duration_histogram(episodes.values()),
            duration_expectations=duration_expectations(
                episodes.values(), self.pipeline.duration_thresholds
            ),
            one_time_conflicts=one_time_conflicts(episodes.values()),
            long_lived_conflicts=long_lived_conflicts(episodes.values()),
            ongoing_conflicts=ongoing_conflicts(episodes.values()),
            max_duration=max_duration(episodes.values()),
            length_distribution=length_distribution,
            classification_series=list(self._classification),
            case_studies=list(self._case_studies),
            exchange_point_conflicts=exchange_point,
            as_set_excluded_max=self._as_set_excluded_max,
            total_days=self._total_days,
        )

    # -- checkpoint serialization ------------------------------------------

    def state_dict(self) -> dict:
        """The complete streaming state as a JSON-serializable dict."""
        return {
            "tracker": self._tracker.state_dict(),
            "daily_series": [
                [day.isoformat(), count]
                for day, count in self._daily_series
            ],
            "recent_counts": list(self._recent_counts),
            "length_sums": {
                str(year): {
                    str(length): count for length, count in bucket.items()
                }
                for year, bucket in self._length_sums.items()
            },
            "days_per_year": {
                str(year): count
                for year, count in self._days_per_year.items()
            },
            "classification": [
                [
                    day.isoformat(),
                    {
                        conflict_class.value: count
                        for conflict_class, count in counts.items()
                    },
                ]
                for day, counts in self._classification
            ],
            "case_studies": [
                {
                    "day": case.report.day.isoformat(),
                    "total_conflicts": case.report.total_conflicts,
                    "baseline_median": case.report.baseline_median,
                    "culprit_asn": case.report.culprit_asn,
                    "culprit_involved": case.report.culprit_involved,
                    "upstream_asn": case.upstream_asn,
                    "sequence_involved": case.sequence_involved,
                    "sequence_total": case.sequence_total,
                }
                for case in self._case_studies
            ],
            "as_set_excluded_max": self._as_set_excluded_max,
            "total_days": self._total_days,
        }

    @classmethod
    def from_state(
        cls, state: dict, *, pipeline: StudyPipeline | None = None
    ) -> "StudyState":
        """Rebuild mid-study streaming state from :meth:`state_dict`."""
        restored = cls(pipeline)
        restored._tracker = EpisodeTracker.from_state(state["tracker"])
        restored._daily_series = [
            (datetime.date.fromisoformat(day), count)
            for day, count in state["daily_series"]
        ]
        restored._recent_counts.extend(state["recent_counts"])
        restored._length_sums = {
            int(year): Counter(
                {int(length): count for length, count in bucket.items()}
            )
            for year, bucket in state["length_sums"].items()
        }
        restored._days_per_year = Counter(
            {int(year): count for year, count in state["days_per_year"].items()}
        )
        restored._classification = [
            (
                datetime.date.fromisoformat(day),
                {
                    ConflictClass(value): count
                    for value, count in counts.items()
                },
            )
            for day, counts in state["classification"]
        ]
        restored._case_studies = [
            CaseStudy(
                report=SpikeReport(
                    day=datetime.date.fromisoformat(case["day"]),
                    total_conflicts=case["total_conflicts"],
                    baseline_median=case["baseline_median"],
                    culprit_asn=case["culprit_asn"],
                    culprit_involved=case["culprit_involved"],
                ),
                upstream_asn=case["upstream_asn"],
                sequence_involved=case["sequence_involved"],
                sequence_total=case["sequence_total"],
            )
            for case in state["case_studies"]
        ]
        restored._as_set_excluded_max = state["as_set_excluded_max"]
        restored._total_days = state["total_days"]
        return restored


def _case_study(
    day: datetime.date,
    conflicts: list,
    count: int,
    baseline: float,
) -> CaseStudy:
    """Gather the culprit evidence for a spike day, paper-style."""
    involvement: Counter[int] = Counter()
    for conflict in conflicts:
        for origin in conflict.origins:
            involvement[origin] += 1
    culprit, _hits = involvement.most_common(1)[0]
    involved, total = involvement_fraction(conflicts, culprit)
    report = SpikeReport(
        day=day,
        total_conflicts=count,
        baseline_median=float(baseline),
        culprit_asn=culprit,
        culprit_involved=involved,
    )
    # The paper identified the (upstream, culprit) hop for the 2001
    # incident; find the culprit's most common upstream in paths.
    upstream_counts: Counter[int] = Counter()
    for conflict in conflicts:
        for path in conflict.all_paths():
            for left, right in zip(path, path[1:]):
                if right == culprit:
                    upstream_counts[left] += 1
    upstream = (
        upstream_counts.most_common(1)[0][0] if upstream_counts else None
    )
    if upstream is not None:
        seq_involved, seq_total = sequence_involvement_fraction(
            conflicts, upstream, culprit
        )
    else:
        seq_involved, seq_total = 0, len(conflicts)
    return CaseStudy(
        report=report,
        upstream_asn=upstream,
        sequence_involved=seq_involved,
        sequence_total=seq_total,
    )
