"""The streaming study pipeline: detections in, paper statistics out.

Memory discipline matters: a full-scale study is ~10^5 conflicts times
10^3 days.  The pipeline therefore streams day by day, keeping only the
aggregates each figure needs (daily counts, episode tracker state,
per-year length counters, in-window classification tallies, spike
evidence), never the full per-day conflict sets.

The streaming state lives in :class:`StudyState`, an incrementally
feedable accumulator that can serialize itself mid-study
(:meth:`StudyState.state_dict` / :meth:`StudyState.from_state`).
:class:`StudyPipeline` is the batch convenience over it, and
:class:`repro.api.MoasService` is the session facade that adds
checkpoint files and pluggable sources on top.

Parallel studies shard this state across the prefix space: a
:class:`StudyState` built with a :class:`~repro.netbase.sharding.ShardSpec`
tracks episodes and prefix-length tallies only for its shard, while the
cheap day-level aggregates (daily counts, classification, spike
evidence) are computed over the full day so that
:meth:`StudyState.merge` can recombine disjoint shards into results
identical to a serial run.  :meth:`StudyPipeline.run` accepts
``workers``/``shards`` and drives the whole fan-out/merge cycle through
:class:`repro.analysis.parallel.ParallelExecutor`.
"""

from __future__ import annotations

import datetime
import statistics
from collections import Counter, deque
from dataclasses import dataclass, field

from repro.core.causes import SpikeReport
from repro.core.classifier import ConflictClass, classify_day
from repro.core.detector import DayDetection
from repro.core.episodes import ConflictEpisode, EpisodeTracker
from repro.core.stats import (
    duration_expectations,
    duration_histogram,
    involvement_fraction,
    one_time_conflicts,
    long_lived_conflicts,
    max_duration,
    ongoing_conflicts,
    peak_days,
    sequence_involvement_fraction,
    yearly_increase_rates,
    yearly_medians,
)
from repro.netbase.prefix import Prefix
from repro.netbase.rpki import (
    RoaTable,
    STATE_NOT_EVALUATED,
    ValidationState,
)
from repro.netbase.sharding import ShardSpec
from repro.scenario.timeline import CLASSIFICATION_WINDOW
from repro.topology.ixp import IXP_BLOCK


@dataclass(frozen=True)
class CaseStudy:
    """Spike-day evidence gathered while streaming (Section VI-E)."""

    report: SpikeReport
    #: (involved, total) for the culprit's most common upstream hop.
    upstream_asn: int | None
    sequence_involved: int
    sequence_total: int


@dataclass
class StudyResults:
    """Every statistic the paper's figures and tables report."""

    daily_series: list[tuple[datetime.date, int]]
    episodes: dict[Prefix, ConflictEpisode]
    yearly_medians: dict[int, float]
    yearly_increase_rates: dict[int, float]
    peak_days: list[tuple[datetime.date, int]]
    duration_histogram: Counter[int]
    duration_expectations: dict[int, float]
    one_time_conflicts: int
    long_lived_conflicts: int
    ongoing_conflicts: int
    max_duration: int
    length_distribution: dict[int, dict[int, float]]
    classification_series: list[tuple[datetime.date, dict[ConflictClass, int]]]
    case_studies: list[CaseStudy]
    exchange_point_conflicts: int
    as_set_excluded_max: int
    total_days: int
    #: Episode prefix -> RFC 6811 rollup (``"valid"`` / ``"invalid"`` /
    #: ``"not_found"``).  Empty when the study ran without a ROA table;
    #: see :mod:`repro.netbase.rpki` and the ``rpki`` / ``longevity``
    #: renderers.
    rpki_episode_states: dict[Prefix, str] = field(default_factory=dict)

    @property
    def total_conflicts(self) -> int:
        return len(self.episodes)

    @property
    def rpki_state_counts(self) -> dict[str, int]:
        """Episodes per RFC 6811 rollup state (empty without a table)."""
        counts: Counter[str] = Counter()
        for prefix in self.episodes:
            state = self.rpki_episode_states.get(prefix)
            if state is None:
                if not self.rpki_episode_states:
                    return {}
                state = STATE_NOT_EVALUATED
            counts[state] += 1
        return dict(counts)


@dataclass
class StudyPipeline:
    """Configuration for one pipeline run."""

    classification_window: tuple[datetime.date, datetime.date] = (
        CLASSIFICATION_WINDOW
    )
    spike_window_days: int = 30
    spike_factor: float = 4.0
    duration_thresholds: tuple[int, ...] = (0, 1, 9, 29, 89)

    def start(
        self,
        shard: ShardSpec | None = None,
        *,
        roa_table: RoaTable | None = None,
    ) -> "StudyState":
        """A fresh incremental accumulator under this configuration.

        With ``shard`` the accumulator tracks per-prefix state (episodes
        and prefix-length tallies) only for that slice of the prefix
        space; disjoint shards recombine with :meth:`StudyState.merge`.
        With ``roa_table`` every observed conflict origin is validated
        per RFC 6811 and episodes carry a validation-state rollup.
        """
        return StudyState(self, shard=shard, roa_table=roa_table)

    def run(
        self,
        detections,
        *,
        workers: int = 1,
        shards: int = 1,
        roa_table: RoaTable | None = None,
    ) -> StudyResults:
        """Stream all daily detections and assemble the results.

        ``detections`` is an iterable of daily
        :class:`~repro.core.detector.DayDetection` records, or — when
        ``workers`` asks for parallelism — any detection source the
        parallel executor can partition (a CDS archive directory /
        ``ArchiveSource``, or an ``MrtFilesSource``; see
        :mod:`repro.analysis.parallel`).

        ``workers`` fans per-day detection out over a process pool
        (``0``/``None`` auto-detects the CPU count; ``1``, the default,
        is the documented serial fallback that never spawns processes).
        ``shards`` folds the study into that many prefix-space shards,
        merged back before results are assembled — results are
        identical for every ``workers``/``shards`` combination.
        """
        from repro.analysis.parallel import ParallelExecutor

        executor = ParallelExecutor(workers=workers, shards=shards)
        states = executor.run(self, detections, roa_table=roa_table)
        return StudyState.merged(states).results()

    def config_dict(self) -> dict:
        """JSON-serializable form of this configuration."""
        window_start, window_end = self.classification_window
        return {
            "classification_window": [
                window_start.isoformat(),
                window_end.isoformat(),
            ],
            "spike_window_days": self.spike_window_days,
            "spike_factor": self.spike_factor,
            "duration_thresholds": list(self.duration_thresholds),
        }

    @classmethod
    def from_config_dict(cls, payload: dict) -> "StudyPipeline":
        """Rebuild a configuration from :meth:`config_dict` output."""
        window_start, window_end = payload["classification_window"]
        return cls(
            classification_window=(
                datetime.date.fromisoformat(window_start),
                datetime.date.fromisoformat(window_end),
            ),
            spike_window_days=payload["spike_window_days"],
            spike_factor=payload["spike_factor"],
            duration_thresholds=tuple(payload["duration_thresholds"]),
        )


class StudyState:
    """Incrementally-fed streaming state of one study.

    Feed daily detections in chronological order with :meth:`feed_day`;
    read the paper's statistics at any point with :meth:`results`
    (non-destructive — feeding can continue afterwards).  The entire
    streaming state round-trips through JSON via :meth:`state_dict` and
    :meth:`from_state`, which is what makes mid-study checkpointing
    possible without replaying earlier days.

    With ``shard`` the state covers one slice of the prefix space: the
    heavy per-prefix aggregates (the episode tracker and the per-year
    prefix-length tallies) fold in only the shard's conflicts, while
    the cheap day-level aggregates (daily counts, classification,
    spike/case-study evidence, AS_SET exclusion maximum) are computed
    over the *full* detection exactly as a serial state would.  Every
    shard must therefore be fed every day's full detection; disjoint
    shards then recombine with :meth:`merge` into a state whose
    :meth:`results` are identical to an unsharded run.
    """

    def __init__(
        self,
        pipeline: StudyPipeline | None = None,
        shard: ShardSpec | None = None,
        *,
        roa_table: RoaTable | None = None,
    ) -> None:
        self.pipeline = pipeline or StudyPipeline()
        self.shard = shard
        #: Immutable ROA database conflicts are validated against;
        #: shared (not copied) across shards — see
        #: :mod:`repro.netbase.rpki`.
        self.roa_table = roa_table
        self._rpki_states: dict[Prefix, ValidationState] = {}
        self._tracker = EpisodeTracker()
        self._daily_series: list[tuple[datetime.date, int]] = []
        self._recent_counts: deque[int] = deque(
            maxlen=self.pipeline.spike_window_days
        )
        self._length_sums: dict[int, Counter[int]] = {}
        self._days_per_year: Counter[int] = Counter()
        self._classification: list[
            tuple[datetime.date, dict[ConflictClass, int]]
        ] = []
        self._case_studies: list[CaseStudy] = []
        self._as_set_excluded_max = 0
        self._total_days = 0

    @property
    def total_days(self) -> int:
        """Days fed so far."""
        return self._total_days

    @property
    def last_day(self) -> datetime.date | None:
        """The most recent day fed, or None before the first feed."""
        return self._daily_series[-1][0] if self._daily_series else None

    def feed_day(self, detection: DayDetection) -> None:
        """Fold one day's detection into the streaming aggregates.

        Days must arrive in strictly increasing order (enforced by the
        episode tracker).
        """
        pipeline = self.pipeline
        day = detection.day
        conflicts = detection.conflicts
        count = len(conflicts)
        if self.shard is None:
            sharded = conflicts
        else:
            contains = self.shard.contains
            sharded = [
                conflict
                for conflict in conflicts
                if contains(conflict.prefix)
            ]
        self._tracker.observe_day(day, sharded)
        roa_table = self.roa_table
        if roa_table is not None:
            states = self._rpki_states
            for conflict in sharded:
                prefix = conflict.prefix
                folded = roa_table.fold_episode_state(
                    states.get(prefix), prefix, conflict.origins, day=day
                )
                if folded is not None:
                    states[prefix] = folded
        self._total_days += 1
        self._daily_series.append((day, count))
        self._as_set_excluded_max = max(
            self._as_set_excluded_max, detection.as_set_excluded
        )

        self._days_per_year[day.year] += 1
        bucket = self._length_sums.setdefault(day.year, Counter())
        for conflict in sharded:
            bucket[conflict.prefix.length] += 1

        window_start, window_end = pipeline.classification_window
        if window_start <= day <= window_end:
            self._classification.append((day, classify_day(conflicts)))

        # Spike detection needs some baseline history; a full
        # window is ideal but 7+ observed days suffice (studies
        # shorter than the window would otherwise never alarm).
        if len(self._recent_counts) >= min(pipeline.spike_window_days, 7):
            baseline = statistics.median(self._recent_counts)
            if baseline > 0 and count >= pipeline.spike_factor * baseline:
                self._case_studies.append(
                    _case_study(day, conflicts, count, baseline)
                )
        self._recent_counts.append(count)

    def results(self) -> StudyResults:
        """Assemble the full statistics from the current state.

        Non-destructive: the state is still feedable afterwards, so a
        long-running service can report interim results mid-study.

        The returned object is *detached*: every container it carries
        (series lists, the episode table, histograms, rollup dicts) is
        freshly assembled here, so later :meth:`feed_day` calls never
        mutate a results object already handed out.  This is the
        snapshot-isolation contract the serve daemon relies on —
        assemble under the service lock, render outside it.
        """
        episodes = self._tracker.finalize()
        length_distribution = {
            year: {
                length: bucket[length] / self._days_per_year[year]
                for length in sorted(bucket)
            }
            for year, bucket in sorted(self._length_sums.items())
        }
        exchange_point = sum(
            1 for prefix in episodes if IXP_BLOCK.contains(prefix)
        )
        medians = yearly_medians(self._daily_series)
        return StudyResults(
            daily_series=list(self._daily_series),
            episodes=episodes,
            yearly_medians=medians,
            yearly_increase_rates=yearly_increase_rates(medians),
            peak_days=peak_days(self._daily_series),
            duration_histogram=duration_histogram(episodes.values()),
            duration_expectations=duration_expectations(
                episodes.values(), self.pipeline.duration_thresholds
            ),
            one_time_conflicts=one_time_conflicts(episodes.values()),
            long_lived_conflicts=long_lived_conflicts(episodes.values()),
            ongoing_conflicts=ongoing_conflicts(episodes.values()),
            max_duration=max_duration(episodes.values()),
            length_distribution=length_distribution,
            classification_series=list(self._classification),
            case_studies=list(self._case_studies),
            exchange_point_conflicts=exchange_point,
            as_set_excluded_max=self._as_set_excluded_max,
            total_days=self._total_days,
            rpki_episode_states={
                prefix: state.value
                for prefix, state in self._rpki_states.items()
            },
        )

    def clone(self) -> "StudyState":
        """An independent copy of the complete streaming state.

        Feeding or merging the clone never touches the original (and
        vice versa); the immutable ROA table is shared, not copied.
        Built on the :meth:`state_dict` round-trip, so the clone is by
        construction exactly what a checkpoint-restore would produce.
        """
        copied = StudyState.from_state(
            self.state_dict(), pipeline=self.pipeline
        )
        if self.roa_table is not None:
            # from_state rebuilds the table from rows; share the
            # original instance instead so validation memos stay warm.
            copied.roa_table = self.roa_table
        return copied

    # -- shard combination ----------------------------------------------

    def merge(self, other: "StudyState") -> "StudyState":
        """Combine two states covering disjoint prefix shards.

        Both states must have been fed the same full-day detections
        (their day-level aggregates are validated to agree) under the
        same pipeline configuration, over disjoint shards of the same
        partitioning.  Returns a new state covering the union; neither
        input is mutated, so the operation is associative and a merged
        state can keep being fed or merged further.
        """
        if self.pipeline != other.pipeline:
            raise ValueError(
                "cannot merge states with different pipeline configurations"
            )
        if self.roa_table != other.roa_table:
            raise ValueError(
                "cannot merge states validated against different ROA tables"
            )
        if self.shard is None or other.shard is None:
            raise ValueError(
                "cannot merge an unsharded state: it already covers "
                "the full prefix space"
            )
        if self._daily_series != other._daily_series:
            raise ValueError(
                "cannot merge states fed different day streams "
                f"({self._total_days} vs {other._total_days} days)"
            )
        merged = StudyState(
            self.pipeline,
            shard=self.shard.union(other.shard),
            roa_table=self.roa_table,
        )
        merged._tracker = self._tracker.merge(other._tracker)
        # Per-prefix validation rollups are disjoint across shards.
        merged._rpki_states = {**self._rpki_states, **other._rpki_states}
        # Day-level aggregates are computed over the full detection in
        # every shard, so both inputs hold identical copies; take ours.
        merged._daily_series = list(self._daily_series)
        merged._recent_counts.extend(self._recent_counts)
        merged._days_per_year = Counter(self._days_per_year)
        merged._classification = list(self._classification)
        merged._case_studies = list(self._case_studies)
        merged._as_set_excluded_max = self._as_set_excluded_max
        merged._total_days = self._total_days
        # Per-prefix aggregates are disjoint; sum the length tallies.
        merged._length_sums = {
            year: Counter(bucket) for year, bucket in self._length_sums.items()
        }
        for year, bucket in other._length_sums.items():
            target = merged._length_sums.setdefault(year, Counter())
            target.update(bucket)
        return merged

    @classmethod
    def merged(cls, states: list["StudyState"]) -> "StudyState":
        """Fold a list of disjoint shard states into one.

        A single (possibly unsharded) state passes through unchanged.
        """
        if not states:
            raise ValueError("cannot merge zero study states")
        combined = states[0]
        for state in states[1:]:
            combined = combined.merge(state)
        return combined

    # -- checkpoint serialization ------------------------------------------

    def state_dict(self) -> dict:
        """The complete streaming state as a JSON-serializable dict."""
        return {
            "shard": self.shard.to_dict() if self.shard is not None else None,
            "tracker": self._tracker.state_dict(),
            "daily_series": [
                [day.isoformat(), count]
                for day, count in self._daily_series
            ],
            "recent_counts": list(self._recent_counts),
            "length_sums": {
                str(year): {
                    str(length): count for length, count in bucket.items()
                }
                for year, bucket in self._length_sums.items()
            },
            "days_per_year": {
                str(year): count
                for year, count in self._days_per_year.items()
            },
            "classification": [
                [
                    day.isoformat(),
                    {
                        conflict_class.value: count
                        for conflict_class, count in counts.items()
                    },
                ]
                for day, counts in self._classification
            ],
            "case_studies": [
                {
                    "day": case.report.day.isoformat(),
                    "total_conflicts": case.report.total_conflicts,
                    "baseline_median": case.report.baseline_median,
                    "culprit_asn": case.report.culprit_asn,
                    "culprit_involved": case.report.culprit_involved,
                    "upstream_asn": case.upstream_asn,
                    "sequence_involved": case.sequence_involved,
                    "sequence_total": case.sequence_total,
                }
                for case in self._case_studies
            ],
            "as_set_excluded_max": self._as_set_excluded_max,
            "total_days": self._total_days,
            # The RPKI block exists only for RPKI-enabled sessions, so
            # pre-RPKI checkpoints stay loadable (and new checkpoints
            # without a table stay byte-compatible with them).
            **(
                {
                    "rpki": {
                        "roas": [
                            roa.to_dict() for roa in self.roa_table
                        ],
                        "states": {
                            str(prefix): state.value
                            for prefix, state in sorted(
                                self._rpki_states.items(),
                                key=lambda item: item[0].sort_key(),
                            )
                        },
                    }
                }
                if self.roa_table is not None
                else {}
            ),
        }

    @classmethod
    def from_state(
        cls, state: dict, *, pipeline: StudyPipeline | None = None
    ) -> "StudyState":
        """Rebuild mid-study streaming state from :meth:`state_dict`."""
        shard_payload = state.get("shard")
        rpki_payload = state.get("rpki")
        restored = cls(
            pipeline,
            shard=(
                ShardSpec.from_dict(shard_payload)
                if shard_payload is not None
                else None
            ),
            roa_table=(
                RoaTable.from_rows(rpki_payload["roas"])
                if rpki_payload is not None
                else None
            ),
        )
        if rpki_payload is not None:
            restored._rpki_states = {
                Prefix.parse(text): ValidationState(value)
                for text, value in rpki_payload["states"].items()
            }
        restored._tracker = EpisodeTracker.from_state(state["tracker"])
        restored._daily_series = [
            (datetime.date.fromisoformat(day), count)
            for day, count in state["daily_series"]
        ]
        restored._recent_counts.extend(state["recent_counts"])
        restored._length_sums = {
            int(year): Counter(
                {int(length): count for length, count in bucket.items()}
            )
            for year, bucket in state["length_sums"].items()
        }
        restored._days_per_year = Counter(
            {int(year): count for year, count in state["days_per_year"].items()}
        )
        restored._classification = [
            (
                datetime.date.fromisoformat(day),
                {
                    ConflictClass(value): count
                    for value, count in counts.items()
                },
            )
            for day, counts in state["classification"]
        ]
        restored._case_studies = [
            CaseStudy(
                report=SpikeReport(
                    day=datetime.date.fromisoformat(case["day"]),
                    total_conflicts=case["total_conflicts"],
                    baseline_median=case["baseline_median"],
                    culprit_asn=case["culprit_asn"],
                    culprit_involved=case["culprit_involved"],
                ),
                upstream_asn=case["upstream_asn"],
                sequence_involved=case["sequence_involved"],
                sequence_total=case["sequence_total"],
            )
            for case in state["case_studies"]
        ]
        restored._as_set_excluded_max = state["as_set_excluded_max"]
        restored._total_days = state["total_days"]
        return restored


def _case_study(
    day: datetime.date,
    conflicts: list,
    count: int,
    baseline: float,
) -> CaseStudy:
    """Gather the culprit evidence for a spike day, paper-style."""
    involvement: Counter[int] = Counter()
    for conflict in conflicts:
        for origin in conflict.origins:
            involvement[origin] += 1
    culprit, _hits = involvement.most_common(1)[0]
    involved, total = involvement_fraction(conflicts, culprit)
    report = SpikeReport(
        day=day,
        total_conflicts=count,
        baseline_median=float(baseline),
        culprit_asn=culprit,
        culprit_involved=involved,
    )
    # The paper identified the (upstream, culprit) hop for the 2001
    # incident; find the culprit's most common upstream in paths.
    upstream_counts: Counter[int] = Counter()
    for conflict in conflicts:
        for path in conflict.all_paths():
            for left, right in zip(path, path[1:]):
                if right == culprit:
                    upstream_counts[left] += 1
    upstream = (
        upstream_counts.most_common(1)[0][0] if upstream_counts else None
    )
    if upstream is not None:
        seq_involved, seq_total = sequence_involvement_fraction(
            conflicts, upstream, culprit
        )
    else:
        seq_involved, seq_total = 0, len(conflicts)
    return CaseStudy(
        report=report,
        upstream_asn=upstream,
        sequence_involved=seq_involved,
        sequence_total=seq_total,
    )
