"""Exporting study results for downstream consumption.

Research users of the original dataset got raw tables; users of this
reproduction get tidy CSV/JSON: the per-prefix episode table (the
study's primary product) and the run's headline aggregates.
"""

from __future__ import annotations

import csv
import io
import json

from repro.analysis.pipeline import StudyResults


def episodes_csv(results: StudyResults) -> str:
    """The per-prefix conflict table as CSV.

    Columns mirror the episode record: prefix, prefix length, first and
    last observed day, duration (days observed), every origin AS ever
    involved, peak simultaneous origins, and whether the conflict was
    still ongoing at study end.
    """
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(
        [
            "prefix",
            "prefix_length",
            "first_day",
            "last_day",
            "days_observed",
            "origins",
            "max_origins_single_day",
            "ongoing",
        ]
    )
    for prefix in sorted(results.episodes, key=lambda p: p.sort_key()):
        episode = results.episodes[prefix]
        writer.writerow(
            [
                str(prefix),
                prefix.length,
                episode.first_day.isoformat(),
                episode.last_day.isoformat(),
                episode.days_observed,
                " ".join(str(asn) for asn in sorted(episode.origins_ever)),
                episode.max_origins_single_day,
                int(episode.ongoing),
            ]
        )
    return out.getvalue()


def episode_record(
    results: StudyResults, prefix
) -> dict:
    """One prefix's episode as a JSON-serializable record.

    The per-episode answer shape of the serve API's
    ``/v1/episodes/{prefix}`` endpoint and of the ``episodes``/``json``
    renderer: the full :class:`~repro.core.episodes.ConflictEpisode`
    fields plus the episode's RFC 6811 rollup when the study ran with a
    ROA table.  Raises :class:`KeyError` when ``results`` holds no
    episode for ``prefix``.
    """
    episode = results.episodes[prefix]
    record = {
        "prefix": str(prefix),
        "prefix_length": prefix.length,
        "first_day": episode.first_day.isoformat(),
        "last_day": episode.last_day.isoformat(),
        "days_observed": episode.days_observed,
        "origins": sorted(episode.origins_ever),
        "max_origins_single_day": episode.max_origins_single_day,
        "ongoing": episode.ongoing,
        "one_time": episode.one_time,
    }
    rpki_state = results.rpki_episode_states.get(prefix)
    if rpki_state is not None:
        record["rpki_state"] = rpki_state
    return record


def episodes_json(results: StudyResults) -> str:
    """The per-prefix conflict table as a JSON array.

    Same rows and ordering as :func:`episodes_csv`, in the record shape
    of :func:`episode_record`.
    """
    return json.dumps(
        [
            episode_record(results, prefix)
            for prefix in sorted(
                results.episodes, key=lambda p: p.sort_key()
            )
        ],
        indent=2,
    )


def summary_json(results: StudyResults) -> str:
    """Headline aggregates as a JSON document."""
    payload = {
        "total_days": results.total_days,
        "total_conflicts": results.total_conflicts,
        "one_time_conflicts": results.one_time_conflicts,
        "long_lived_conflicts": results.long_lived_conflicts,
        "ongoing_conflicts": results.ongoing_conflicts,
        "max_duration_days": results.max_duration,
        "exchange_point_conflicts": results.exchange_point_conflicts,
        "as_set_excluded_max": results.as_set_excluded_max,
        "yearly_medians": {
            str(year): median
            for year, median in results.yearly_medians.items()
        },
        "yearly_increase_rates": {
            str(year): rate
            for year, rate in results.yearly_increase_rates.items()
        },
        "duration_expectations": {
            str(threshold): value
            for threshold, value in results.duration_expectations.items()
        },
        "peak_days": [
            {"date": day.isoformat(), "conflicts": count}
            for day, count in results.peak_days
        ],
        "case_studies": [
            {
                "date": case.report.day.isoformat(),
                "total_conflicts": case.report.total_conflicts,
                "culprit_asn": case.report.culprit_asn,
                "culprit_involved": case.report.culprit_involved,
                "upstream_asn": case.upstream_asn,
                "sequence_involved": case.sequence_involved,
                "sequence_total": case.sequence_total,
            }
            for case in results.case_studies
        ],
    }
    return json.dumps(payload, indent=2)
