"""Rendering the paper's figures: CSV series plus ASCII charts.

matplotlib is unavailable in the reproduction environment, so every
figure is emitted twice: a CSV any plotting tool can consume, and an
ASCII rendering for immediate inspection (and for the benchmark logs).
"""

from __future__ import annotations

import csv
import io

from repro.analysis.pipeline import StudyResults
from repro.core.classifier import ConflictClass
from repro.util.ascii_plot import bar_chart, line_plot


def figure1_csv(results: StudyResults) -> str:
    """Figure 1 series: date, number of conflicts."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["date", "conflicts"])
    for day, count in results.daily_series:
        writer.writerow([day.isoformat(), count])
    return out.getvalue()


def figure1_ascii(results: StudyResults, *, width: int = 78) -> str:
    """Figure 1: the daily conflict count over the study window."""
    series = [count for _day, count in results.daily_series]
    first = results.daily_series[0][0]
    last = results.daily_series[-1][0]
    return line_plot(
        {"conflicts": series},
        width=width,
        title="Fig. 1. Number of MOAS conflicts per day",
        x_labels=(first.strftime("%m/%y"), last.strftime("%m/%y")),
    )


def figure3_csv(results: StudyResults) -> str:
    """Figure 3 series: duration (days), number of conflicts."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["duration_days", "conflicts"])
    for duration in sorted(results.duration_histogram):
        writer.writerow([duration, results.duration_histogram[duration]])
    return out.getvalue()


def figure3_ascii(results: StudyResults, *, bins: int = 14) -> str:
    """Figure 3: log-scale histogram of conflict durations."""
    histogram = results.duration_histogram
    if not histogram:
        return "Fig. 3. (no conflicts)"
    longest = max(histogram)
    bin_width = max(1, (longest + bins - 1) // bins)
    labels = []
    values = []
    for bin_index in range(bins):
        lo = bin_index * bin_width
        hi = lo + bin_width - 1
        total = sum(
            count
            for duration, count in histogram.items()
            if lo <= duration <= hi
        )
        labels.append(f"{lo}-{hi}d")
        values.append(total)
    return bar_chart(
        labels,
        values,
        title="Fig. 3. Duration of MOAS conflicts (log scale)",
        y_log=True,
    )


def figure5_csv(results: StudyResults) -> str:
    """Figure 5 series: year, prefix length, mean daily conflicts."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["year", "prefix_length", "mean_daily_conflicts"])
    for year, by_length in sorted(results.length_distribution.items()):
        for length, value in sorted(by_length.items()):
            writer.writerow([year, length, f"{value:.2f}"])
    return out.getvalue()


def figure5_ascii(results: StudyResults, *, year: int | None = None) -> str:
    """Figure 5: conflicts by prefix length (one year per chart)."""
    years = sorted(results.length_distribution)
    if not years:
        return "Fig. 5. (no data)"
    target = year if year is not None else years[-1]
    by_length = results.length_distribution.get(target, {})
    lengths = list(range(8, 33))
    values = [by_length.get(length, 0.0) for length in lengths]
    return bar_chart(
        [f"/{length}" for length in lengths],
        values,
        title=f"Fig. 5. Distribution among prefix length ({target} data)",
    )


def figure6_csv(results: StudyResults) -> str:
    """Figure 6 series: date and per-class conflict counts."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(
        ["date"] + [conflict_class.value for conflict_class in ConflictClass]
    )
    for day, counts in results.classification_series:
        writer.writerow(
            [day.isoformat()]
            + [counts[conflict_class] for conflict_class in ConflictClass]
        )
    return out.getvalue()


def figure6_ascii(results: StudyResults, *, width: int = 78) -> str:
    """Figure 6: per-class daily counts over the classification window."""
    if not results.classification_series:
        return "Fig. 6. (classification window empty)"
    series = {
        conflict_class.value: [
            counts[conflict_class]
            for _day, counts in results.classification_series
        ]
        for conflict_class in ConflictClass
    }
    first = results.classification_series[0][0]
    last = results.classification_series[-1][0]
    return line_plot(
        series,
        width=width,
        title="Fig. 6. Distribution of classes",
        x_labels=(first.strftime("%m/%d"), last.strftime("%m/%d")),
    )
