"""Process-pool parallel execution of the study engine.

The study's expensive step is per-day detection: decoding one archive
chunk and scanning it for multi-origin prefixes.  Days are independent,
so :class:`ParallelExecutor` fans contiguous day ranges out over a
``concurrent.futures`` process pool, streams the resulting
:class:`~repro.core.detector.DayDetection` records back *in
chronological order*, and folds each one into per-shard
:class:`~repro.analysis.pipeline.StudyState` accumulators that
:meth:`~repro.analysis.pipeline.StudyState.merge` recombines.  Folding
is deterministic and cheap relative to detection, so results are
identical to a serial run for every ``workers``/``shards`` combination
— the engine's core invariant, enforced by the equality tests.

Partitionable sources are the file-backed ones: CDS archive
directories (v1: each worker seeks straight to its day range; v2: the
coordinator reads the footer index once and hands workers byte-offset
ranges, with a per-process
:class:`~repro.scenario.archive.ArchiveReader` cache either way) and
MRT file lists (chunked by file).  Live ``Network`` simulations and
in-memory feeds cannot be partitioned and silently fall back to the
serial path, as does ``workers=1`` — the documented serial fallback
that never spawns a process.
"""

from __future__ import annotations

import itertools
import json
import math
from collections import deque
from collections.abc import Iterable, Iterator
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.pipeline import StudyPipeline, StudyState
from repro.core.detector import (
    DayDetection,
    columnar_scan_enabled,
    detect_day,
    detect_day_columns,
)
from repro.netbase.sharding import ShardSpec
from repro.util.workers import resolve_workers

__all__ = [
    "CHUNKS_PER_WORKER",
    "ParallelExecutor",
    "iter_detections",
    "partition_tasks",
    "resolve_workers",
]

#: How many chunks each worker should get on average.  More chunks mean
#: finer-grained scheduling (stragglers hurt less) but more per-task
#: overhead; 4 balances both for archive-sized studies.
CHUNKS_PER_WORKER = 4


# -- worker-side task functions ----------------------------------------------
#
# These run inside pool processes, so they must be module-level (picklable
# by reference) and self-contained.

#: Per-process ArchiveReader cache: the registry and path table load
#: once per worker process, not once per task.
_ARCHIVE_READERS: dict[str, object] = {}


def _cached_reader(directory: str):
    reader = _ARCHIVE_READERS.get(directory)
    if reader is None:
        from repro.scenario.archive import ArchiveReader

        reader = _ARCHIVE_READERS[directory] = ArchiveReader(directory)
    return reader


def _detect_archive_range(
    directory: str, start: int, stop: int
) -> list[DayDetection]:
    """Detect over observed days ``[start, stop)`` of a CDS archive.

    Uses the columnar batch scan (each day decoded as flat arrays,
    scanned run-wise) unless ``REPRO_OBJECT_SCAN`` forces the object
    path; both produce identical detections.
    """
    reader = _cached_reader(directory)
    if columnar_scan_enabled():
        return [
            detect_day_columns(columns, reader)
            for columns in reader.iter_day_columns(start, stop)
        ]
    return [
        detect_day(record, reader)
        for record in reader.iter_days(start, stop)
    ]


def _detect_archive_byte_range(
    directory: str, start_offset: int, stop_offset: int
) -> list[DayDetection]:
    """Detect over the v2 frames in byte range ``[start, stop)``.

    The offset-range work unit for indexed (v2) day stores: the
    coordinator reads the footer index once and hands each worker a
    byte span, so no worker ever scans — or even considers — another
    worker's chunk.  Columnar by default, like
    :func:`_detect_archive_range`.
    """
    reader = _cached_reader(directory)
    if columnar_scan_enabled():
        return [
            detect_day_columns(columns, reader)
            for columns in reader.iter_day_columns_at(
                start_offset, stop_offset
            )
        ]
    return [
        detect_day(record, reader)
        for record in reader.iter_days_at(start_offset, stop_offset)
    ]


def _detect_mrt_files(
    paths: list[str], days: list | None
) -> list[DayDetection]:
    """Detect over a chunk of MRT table-dump files."""
    from repro.analysis.sources import detections_from_mrt_files

    return list(detections_from_mrt_files(paths, days=days))


# -- source partitioning -------------------------------------------------------


def _archive_directory(source) -> Path | None:
    """The CDS archive directory behind ``source``, if there is one."""
    directory = getattr(source, "directory", None)
    if directory is None and isinstance(source, (str, Path)):
        directory = source
    if directory is None:
        return None
    directory = Path(directory)
    if (directory / "manifest.json").exists():
        return directory
    return None


def partition_tasks(
    source, workers: int, *, chunks_per_worker: int = CHUNKS_PER_WORKER
) -> list[tuple] | None:
    """Split ``source`` into picklable detection tasks, if possible.

    Returns a chronologically ordered list of ``(function, args)``
    pairs for the process pool, or ``None`` when the source cannot be
    partitioned (live networks, in-memory feeds) and detection must run
    serially.
    """
    directory = _archive_directory(source)
    if directory is not None:
        manifest = json.loads((directory / "manifest.json").read_text())
        num_days = int(manifest["num_days"])
        if num_days == 0:
            return []
        if manifest.get("format") == "cds-2":
            # Indexed day store: read the footer index here, once, and
            # hand each worker a byte-offset range.  Frame k occupies
            # [offsets[k], offsets[k+1]) with the footer closing the
            # last one.
            from repro.scenario.archive import ArchiveError, read_day_index

            offsets, frames_end = read_day_index(directory)
            if len(offsets) != num_days:
                # Same contract as ArchiveReader: a lying manifest is
                # corruption, reported cleanly before any worker runs.
                raise ArchiveError(
                    f"day store holds {len(offsets)} day(s); "
                    f"manifest says {num_days}"
                )
            bounds = offsets + [frames_end]
            chunks = max(1, min(num_days, workers * chunks_per_worker))
            size = math.ceil(num_days / chunks)
            return [
                (
                    _detect_archive_byte_range,
                    (
                        str(directory),
                        bounds[start],
                        bounds[min(start + size, num_days)],
                    ),
                )
                for start in range(0, num_days, size)
            ]
        chunks = max(1, min(num_days, workers * chunks_per_worker))
        size = math.ceil(num_days / chunks)
        return [
            (
                _detect_archive_range,
                (str(directory), start, min(start + size, num_days)),
            )
            for start in range(0, num_days, size)
        ]
    paths = getattr(source, "paths", None)
    if paths:
        paths = list(paths)
        days = getattr(source, "days", None)
        chunks = max(1, min(len(paths), workers * chunks_per_worker))
        size = math.ceil(len(paths) / chunks)
        return [
            (
                _detect_mrt_files,
                (
                    [str(path) for path in paths[index : index + size]],
                    list(days[index : index + size])
                    if days is not None
                    else None,
                ),
            )
            for index in range(0, len(paths), size)
        ]
    return None


def _serial_detections(source) -> Iterator[DayDetection]:
    """The serial fallback: stream the source in-process."""
    if isinstance(source, (str, Path)):
        directory = _archive_directory(source)
        if directory is None:
            raise FileNotFoundError(
                f"no CDS archive (manifest.json) at {source!r}"
            )
        from repro.analysis.sources import detections_from_archive

        return detections_from_archive(directory)
    detections = getattr(source, "detections", None)
    if callable(detections):
        return iter(detections())
    if isinstance(source, Iterable):
        return iter(source)
    raise TypeError(
        f"cannot stream detections from {type(source).__name__}"
    )


def iter_detections(source, workers: int | None = 1) -> Iterator[DayDetection]:
    """Stream a source's daily detections, in order, possibly in parallel.

    With ``workers > 1`` and a partitionable source, detection tasks
    run on a process pool while this generator yields their results in
    chronological order; a bounded submission window keeps every worker
    busy without materializing the whole study.  Anything else falls
    back to the serial path with identical output.
    """
    workers = resolve_workers(workers)
    tasks = partition_tasks(source, workers) if workers > 1 else None
    if tasks is None or len(tasks) <= 1 or workers <= 1:
        yield from _serial_detections(source)
        return
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        task_iter = iter(tasks)
        pending: deque = deque(
            pool.submit(function, *args)
            for function, args in itertools.islice(task_iter, workers + 2)
        )
        while pending:
            batch = pending.popleft().result()
            for function, args in itertools.islice(task_iter, 1):
                pending.append(pool.submit(function, *args))
            yield from batch
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


@dataclass
class ParallelExecutor:
    """Fan-out/fold/merge driver for one parallel study run.

    ``workers`` controls detection parallelism (``0``/``None``
    auto-detects CPUs, ``1`` is the serial fallback); ``shards``
    controls how many prefix-space slices the streaming state is folded
    into (each fed every day's full detection, merged at the end);
    ``scheme`` picks the :mod:`~repro.netbase.sharding` partitioner.
    """

    workers: int | None = None
    shards: int = 1
    scheme: str = "hash"

    def __post_init__(self) -> None:
        self.workers = resolve_workers(self.workers)
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")

    def make_states(
        self, pipeline: StudyPipeline, *, roa_table=None
    ) -> list[StudyState]:
        """Fresh per-shard accumulators for this executor's layout.

        ``roa_table`` (a :class:`~repro.netbase.rpki.RoaTable`) is
        shared by every shard — it is immutable, so no copies.
        """
        if self.shards == 1:
            return [pipeline.start(roa_table=roa_table)]
        return [
            pipeline.start(shard=spec, roa_table=roa_table)
            for spec in ShardSpec.partition(self.shards, self.scheme)
        ]

    def detections(self, source) -> Iterator[DayDetection]:
        """The source's detection stream under this worker budget."""
        return iter_detections(source, workers=self.workers)

    def run(
        self,
        pipeline: StudyPipeline,
        source,
        *,
        states: list[StudyState] | None = None,
        skip_through=None,
        roa_table=None,
    ) -> list[StudyState]:
        """Detect (possibly in parallel) and fold into per-shard states.

        ``states`` continues feeding existing accumulators (the resume
        path); ``skip_through`` drops days up to and including that
        date, letting a resumed run re-stream an overlapping source;
        ``roa_table`` makes every fresh state validate origins per
        RFC 6811 (validation happens at fold time in the coordinator,
        so parallel results stay byte-identical to serial).  Returns
        the fed states; merge them with :meth:`StudyState.merged` for
        combined results.
        """
        if states is None:
            states = self.make_states(pipeline, roa_table=roa_table)
        for detection in self.detections(source):
            if skip_through is not None and detection.day <= skip_through:
                continue
            for state in states:
                state.feed_day(detection)
        return states
