"""Adapters turning raw archives into streams of daily detections.

The pipeline is source-agnostic: the paper's own two archive
generations (NLANR-era and PCH-era MRT files) and our CDS archive all
reduce to the same :class:`~repro.core.detector.DayDetection` stream.
"""

from __future__ import annotations

import datetime
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.core.detector import (
    DayDetection,
    columnar_scan_enabled,
    detect_day,
    detect_day_columns,
    detect_snapshot,
)
from repro.mrt.reader import read_rib_snapshot
from repro.scenario.archive import ArchiveReader


def detections_from_archive(
    archive_dir: Path | str,
    *,
    columnar: bool | None = None,
) -> Iterator[DayDetection]:
    """Stream daily detections from a CDS archive directory.

    ``columnar`` picks the scan implementation: the batch/array hot
    path (default) or the object-row reference path.  ``None`` defers
    to :func:`~repro.core.detector.columnar_scan_enabled` — i.e. the
    ``REPRO_OBJECT_SCAN`` escape hatch.  Output is identical either
    way.
    """
    reader = ArchiveReader(archive_dir)
    if columnar is None:
        columnar = columnar_scan_enabled()
    if columnar:
        for columns in reader.iter_day_columns():
            yield detect_day_columns(columns, reader)
        return
    for record in reader.iter_days():
        yield detect_day(record, reader)


def detections_from_mrt_files(
    paths: Iterable[Path | str],
    *,
    days: Iterable[datetime.date] | None = None,
) -> Iterator[DayDetection]:
    """Stream daily detections from individual MRT table dumps.

    ``days`` optionally overrides the snapshot dates (positionally);
    otherwise dates come from the MRT record timestamps, like the
    paper's date-named archive files.
    """
    day_list = list(days) if days is not None else None
    for index, path in enumerate(paths):
        override = day_list[index] if day_list is not None else None
        snapshot = read_rib_snapshot(path, day=override)
        yield detect_snapshot(snapshot)
