"""The episode query index: O(log n) prefix→history point lookups.

ROADMAP item 1: the paper's core questions ("which prefixes had MOAS
conflicts, when, and for how long?") should not cost a full-study fold
per answer.  :class:`EpisodeIndex` is the queryable store that makes
point lookups cheap — the GRIP-style historical prefix→origin view,
derived entirely from the fold's own outputs so it can never disagree
with ``analyze``:

- one record per conflicted prefix: the episode interval (first/last
  day, days observed), the origin-AS history, the peak simultaneous
  width, the RFC 6811 rollup, and — when a verdict engine ran — the
  verdict kind, tags, perpetrators and suspicion score;
- records are keyed in :class:`~repro.netbase.trie.PrefixTrie` walk
  order, which for disjoint keys equals ``Prefix.sort_key()`` order, so
  a point lookup is one ``bisect`` over the key column — O(log n) in
  episodes, no trie materialization needed on the hot path (a lazily
  built trie backs the structural ``covering``/``covered`` queries);
- a day-interval index (the sorted first-day and last-day columns)
  answers "how many episodes were active in [A, B]?" in O(log n) in
  days: overlaps = N - #(first > B) - #(last < A), the two exclusion
  sets being disjoint.

On disk the index is a compact side file (``episodes.idx``) written
beside the archive, reusing the v2 day-store machinery: LEB128 varints
(:mod:`repro.util.varint`), interned string/origin-set tables, CRC-32
framed sections, and a checksummed trailer with an end magic.  Every
corruption path — truncated trailer, bit-flipped frame, bad magic —
raises :class:`~repro.scenario.archive.ArchiveError`, never a bare
``struct.error``.

Layout (all integers varint unless noted)::

    MAGIC "EIX1"
    frame: meta          version, record count, days indexed, last day
    frame: strings       interned rpki states / verdict kinds / tags
    frame: origin sets   interned ASN sets (delta-encoded, ascending)
    frame: records       sorted by (network, length); per record:
                         network, length, first day, span, days
                         observed, peak width, origin-set id, flags,
                         [rpki sid], [kind sid, tags, perp-set id,
                         suspicion f64]
    frame: intervals     first-day and last-day columns, day-sorted
    TRAILER <QQII8s>     records offset, intervals offset, record
                         count, CRC-32 of everything before the
                         trailer, end magic "EIX1.END"

Each frame is length-prefixed and CRC-checked exactly like a v2
``days.bin`` frame, and the whole file is covered once more by the
trailer checksum.
"""

from __future__ import annotations

import datetime
import struct
import zlib
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from repro.netbase.prefix import Prefix
from repro.netbase.trie import PrefixTrie
from repro.scenario.archive import ArchiveError
from repro.util.io import atomic_write_bytes
from repro.util.varint import append_uvarint, decode_uvarint

#: File name of the index side file inside an archive directory.
INDEX_FILENAME = "episodes.idx"

#: Leading magic of an episode index file.
INDEX_MAGIC = b"EIX1"

#: Trailer: records frame offset, intervals frame offset, record
#: count, CRC-32 of every byte before the trailer, end magic.
_TRAILER = struct.Struct("<QQII8s")
_END_MAGIC = b"EIX1.END"

#: Frame header: body length, CRC-32 of the body (the v2 frame shape).
_FRAME_HEADER = struct.Struct("<II")

_F64 = struct.Struct("<d")

#: Current encoding version (first varint of the meta frame).
_VERSION = 1

#: Record flag bits.
_FLAG_ONGOING = 0x01
_FLAG_RPKI = 0x02
_FLAG_VERDICT = 0x04


@dataclass(frozen=True, slots=True)
class IndexRecord:
    """One prefix's full indexed history: episode, RPKI, verdict."""

    prefix: Prefix
    first_day: datetime.date
    last_day: datetime.date
    days_observed: int
    #: Every origin AS ever involved, ascending.
    origins: tuple[int, ...]
    max_origins_single_day: int
    ongoing: bool
    #: RFC 6811 rollup, or ``None`` when the study ran without ROAs.
    rpki_state: str | None = None
    #: Verdict fields; ``None``/empty when no verdict engine ran.
    verdict_kind: str | None = None
    verdict_tags: tuple[str, ...] = ()
    suspicion: float | None = None
    perpetrators: tuple[int, ...] = ()

    @property
    def one_time(self) -> bool:
        """True for conflicts seen on exactly one snapshot."""
        return self.days_observed == 1

    def episode_dict(self) -> dict:
        """The record in :func:`~repro.analysis.export.episode_record`
        shape — key order and values byte-identical to the fold's
        answer for the same prefix."""
        record = {
            "prefix": str(self.prefix),
            "prefix_length": self.prefix.length,
            "first_day": self.first_day.isoformat(),
            "last_day": self.last_day.isoformat(),
            "days_observed": self.days_observed,
            "origins": list(self.origins),
            "max_origins_single_day": self.max_origins_single_day,
            "ongoing": self.ongoing,
            "one_time": self.one_time,
        }
        if self.rpki_state is not None:
            record["rpki_state"] = self.rpki_state
        return record

    def verdict_dict(self) -> dict | None:
        """The verdict slice of the record, or ``None`` without one."""
        if self.verdict_kind is None:
            return None
        return {
            "kind": self.verdict_kind,
            "tags": list(self.verdict_tags),
            "suspicion": self.suspicion,
            "perpetrators": list(self.perpetrators),
        }


@dataclass(frozen=True, slots=True)
class QueryAnswer:
    """One resolved point/range query against the index."""

    record: IndexRecord
    #: The queried day window (the episode's own span when the query
    #: named no ``--day``/``--range``).
    window_start: datetime.date
    window_end: datetime.date
    #: True when the caller supplied an explicit day or range.
    explicit_window: bool
    #: Episode interval overlaps the window.
    active: bool
    #: Days of interval overlap between episode span and window.
    overlap_days: int
    #: Episodes (study-wide) whose span overlaps the window.
    concurrent_episodes: int
    total_episodes: int
    days_indexed: int
    last_day: datetime.date | None

    def to_dict(self) -> dict:
        """The JSON answer shape of ``repro query`` / ``/v1/history``."""
        return {
            "query": {
                "prefix": str(self.record.prefix),
                "window_start": self.window_start.isoformat(),
                "window_end": self.window_end.isoformat(),
                "explicit_window": self.explicit_window,
                "active": self.active,
                "overlap_days": self.overlap_days,
                "concurrent_episodes": self.concurrent_episodes,
                "total_episodes": self.total_episodes,
                "days_indexed": self.days_indexed,
                "last_day": (
                    self.last_day.isoformat() if self.last_day else None
                ),
            },
            "episode": self.record.episode_dict(),
            "verdict": self.record.verdict_dict(),
        }


class EpisodeIndex:
    """The prefix→episode-history store (in memory or on disk).

    Build one from fold outputs (:meth:`build` /
    :meth:`from_records`), persist with :meth:`save`, reopen with
    :meth:`load`.  Storage is columnar: parallel per-record columns
    sorted by ``Prefix.sort_key()``, so :meth:`lookup` is a bisect and
    :meth:`active_count` is two bisects — never a scan.
    """

    __slots__ = (
        "days_indexed",
        "last_day",
        "_keys",
        "_first_ords",
        "_last_ords",
        "_days_observed",
        "_widths",
        "_origin_sets",
        "_flags",
        "_rpki_states",
        "_verdicts",
        "_sorted_firsts",
        "_sorted_lasts",
        "_trie",
    )

    def __init__(
        self, *, days_indexed: int = 0, last_day=None
    ) -> None:
        #: Days the producing session had folded; day-boundary stamp.
        self.days_indexed = days_indexed
        self.last_day = last_day
        self._keys: list[int] = []
        self._first_ords: list[int] = []
        self._last_ords: list[int] = []
        self._days_observed: list[int] = []
        self._widths: list[int] = []
        self._origin_sets: list[tuple[int, ...]] = []
        self._flags: list[int] = []
        self._rpki_states: list[str | None] = []
        #: (kind, tags, perpetrators, suspicion) or None, per record.
        self._verdicts: list[tuple | None] = []
        self._sorted_firsts: list[int] = []
        self._sorted_lasts: list[int] = []
        self._trie: PrefixTrie | None = None

    # -- construction --------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        records: Iterable[IndexRecord],
        *,
        days_indexed: int = 0,
        last_day=None,
    ) -> "EpisodeIndex":
        """Build an index from records sorted by ``Prefix.sort_key()``.

        Streaming: records are consumed one at a time, so a
        million-episode index never materializes a record list.  Raises
        :class:`ValueError` on out-of-order or duplicate prefixes —
        sorted input is what makes every lookup a bisect.
        """
        index = cls(days_indexed=days_indexed, last_day=last_day)
        previous = -1
        for record in records:
            prefix = record.prefix
            key = (prefix.network << 6) | prefix.length
            if key <= previous:
                raise ValueError(
                    f"index records must be sorted by prefix with no "
                    f"duplicates; {prefix} is out of order"
                )
            previous = key
            index._keys.append(key)
            index._first_ords.append(record.first_day.toordinal())
            index._last_ords.append(record.last_day.toordinal())
            index._days_observed.append(record.days_observed)
            index._widths.append(record.max_origins_single_day)
            index._origin_sets.append(tuple(record.origins))
            flags = _FLAG_ONGOING if record.ongoing else 0
            if record.rpki_state is not None:
                flags |= _FLAG_RPKI
            index._rpki_states.append(record.rpki_state)
            if record.verdict_kind is not None:
                flags |= _FLAG_VERDICT
                index._verdicts.append(
                    (
                        record.verdict_kind,
                        tuple(record.verdict_tags),
                        tuple(record.perpetrators),
                        record.suspicion,
                    )
                )
            else:
                index._verdicts.append(None)
            index._flags.append(flags)
        index._finish()
        return index

    @classmethod
    def build(
        cls, results, verdicts: dict | None = None
    ) -> "EpisodeIndex":
        """Index a fold's :class:`~repro.analysis.pipeline.StudyResults`.

        ``verdicts`` optionally maps ``Prefix`` to
        :class:`~repro.core.verdict.Verdict` (the verdict engine's
        ``finalize`` output over the same day stream); episodes without
        a verdict index fine — the verdict slice is just absent.
        """
        verdicts = verdicts or {}
        rpki_states = results.rpki_episode_states
        last_day = (
            results.daily_series[-1][0] if results.daily_series else None
        )

        def records() -> Iterator[IndexRecord]:
            for prefix in sorted(
                results.episodes, key=lambda p: p.sort_key()
            ):
                episode = results.episodes[prefix]
                verdict = verdicts.get(prefix)
                yield IndexRecord(
                    prefix=prefix,
                    first_day=episode.first_day,
                    last_day=episode.last_day,
                    days_observed=episode.days_observed,
                    origins=tuple(sorted(episode.origins_ever)),
                    max_origins_single_day=(
                        episode.max_origins_single_day
                    ),
                    ongoing=episode.ongoing,
                    rpki_state=rpki_states.get(prefix),
                    verdict_kind=(
                        verdict.kind if verdict is not None else None
                    ),
                    verdict_tags=(
                        tuple(sorted(verdict.tags))
                        if verdict is not None
                        else ()
                    ),
                    suspicion=(
                        verdict.suspicion
                        if verdict is not None
                        else None
                    ),
                    perpetrators=(
                        tuple(sorted(verdict.perpetrators))
                        if verdict is not None
                        else ()
                    ),
                )

        return cls.from_records(
            records(),
            days_indexed=results.total_days,
            last_day=last_day,
        )

    def _finish(self) -> None:
        """Derive the day-interval index from the record columns."""
        self._sorted_firsts = sorted(self._first_ords)
        self._sorted_lasts = sorted(self._last_ords)
        self._trie = None

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    def prefixes(self) -> Iterator[Prefix]:
        """Every indexed prefix in ``sort_key()`` (trie walk) order."""
        for key in self._keys:
            yield Prefix(key >> 6, key & 0x3F, strict=False)

    def record_at(self, position: int) -> IndexRecord:
        """Materialize the record at one column position."""
        key = self._keys[position]
        verdict = self._verdicts[position]
        return IndexRecord(
            prefix=Prefix(key >> 6, key & 0x3F, strict=False),
            first_day=datetime.date.fromordinal(
                self._first_ords[position]
            ),
            last_day=datetime.date.fromordinal(
                self._last_ords[position]
            ),
            days_observed=self._days_observed[position],
            origins=self._origin_sets[position],
            max_origins_single_day=self._widths[position],
            ongoing=bool(self._flags[position] & _FLAG_ONGOING),
            rpki_state=self._rpki_states[position],
            verdict_kind=verdict[0] if verdict is not None else None,
            verdict_tags=verdict[1] if verdict is not None else (),
            perpetrators=verdict[2] if verdict is not None else (),
            suspicion=verdict[3] if verdict is not None else None,
        )

    def _position(self, prefix: Prefix) -> int | None:
        key = (prefix.network << 6) | prefix.length
        position = bisect_left(self._keys, key)
        if position < len(self._keys) and self._keys[position] == key:
            return position
        return None

    def lookup(self, prefix: Prefix) -> IndexRecord | None:
        """The prefix's history record, or ``None`` — one bisect."""
        position = self._position(prefix)
        return None if position is None else self.record_at(position)

    def active_count(
        self, start: datetime.date, end: datetime.date
    ) -> int:
        """Episodes whose span overlaps ``[start, end]`` — O(log n).

        Overlap counting by complement: an episode misses the window
        exactly when it starts after ``end`` or ends before ``start``,
        and those two sets are disjoint, so two bisects over the
        day-sorted columns give the exact count.
        """
        if end < start:
            start, end = end, start
        start_ord, end_ord = start.toordinal(), end.toordinal()
        total = len(self._keys)
        starts_after = total - bisect_right(
            self._sorted_firsts, end_ord
        )
        ends_before = bisect_left(self._sorted_lasts, start_ord)
        return total - starts_after - ends_before

    def query(
        self,
        prefix: Prefix,
        *,
        day: datetime.date | None = None,
        window: tuple[datetime.date, datetime.date] | None = None,
    ) -> QueryAnswer | None:
        """Resolve a point (``day``) or range (``window``) query.

        Returns ``None`` for a prefix the index holds no episode for.
        Without an explicit window the episode's own span is the
        window, so the answer always carries the full history plus the
        study-wide concurrency of that span.
        """
        if day is not None and window is not None:
            raise ValueError("pass day or window, not both")
        record = self.lookup(prefix)
        if record is None:
            return None
        if day is not None:
            start = end = day
        elif window is not None:
            start, end = window
            if end < start:
                start, end = end, start
        else:
            start, end = record.first_day, record.last_day
        overlap = (
            min(record.last_day, end).toordinal()
            - max(record.first_day, start).toordinal()
            + 1
        )
        return QueryAnswer(
            record=record,
            window_start=start,
            window_end=end,
            explicit_window=day is not None or window is not None,
            active=overlap > 0,
            overlap_days=max(0, overlap),
            concurrent_episodes=self.active_count(start, end),
            total_episodes=len(self._keys),
            days_indexed=self.days_indexed,
            last_day=self.last_day,
        )

    # -- structural queries (trie-backed) ------------------------------------

    def _ensure_trie(self) -> PrefixTrie:
        """The record-position trie, built on first structural query.

        Point lookups never need it (the key column *is* the trie's
        lexicographic walk); ``covering``/``covered`` do, and a
        million-record trie is too heavy to build speculatively.
        """
        if self._trie is None:
            trie = PrefixTrie()
            for position, prefix in enumerate(self.prefixes()):
                trie[prefix] = position
            self._trie = trie
        return self._trie

    def covering(self, prefix: Prefix) -> list[IndexRecord]:
        """Indexed records whose prefix covers ``prefix`` (incl. it)."""
        trie = self._ensure_trie()
        return [
            self.record_at(position)
            for _covering, position in trie.covering(prefix)
        ]

    def covered(self, prefix: Prefix) -> list[IndexRecord]:
        """Indexed records at or under ``prefix``, in walk order."""
        trie = self._ensure_trie()
        return [
            self.record_at(position)
            for _covered, position in trie.covered(prefix)
        ]

    # -- on-disk form --------------------------------------------------------

    def save(self, path: Path | str) -> Path:
        """Write the index to ``path`` atomically (torn-file safe)."""
        return atomic_write_bytes(path, self.to_bytes())

    def to_bytes(self) -> bytes:
        """The full on-disk wire form (see the module layout doc).

        Deterministic: two indexes holding the same records — however
        they were folded — encode to identical bytes, which is the
        byte-equivalence the property suite pins across archive
        formats and workers×shards layouts.
        """
        out = bytearray(INDEX_MAGIC)

        meta = bytearray()
        append_uvarint(meta, _VERSION)
        append_uvarint(meta, len(self._keys))
        append_uvarint(meta, self.days_indexed)
        append_uvarint(
            meta,
            self.last_day.toordinal() if self.last_day else 0,
        )
        _append_frame(out, meta)

        strings: dict[str, int] = {}
        origin_sets: dict[tuple[int, ...], int] = {}

        def string_id(text: str) -> int:
            return strings.setdefault(text, len(strings))

        def set_id(values: tuple[int, ...]) -> int:
            return origin_sets.setdefault(values, len(origin_sets))

        records = bytearray()
        for position, key in enumerate(self._keys):
            append_uvarint(records, key >> 6)
            append_uvarint(records, key & 0x3F)
            first = self._first_ords[position]
            append_uvarint(records, first)
            append_uvarint(records, self._last_ords[position] - first)
            append_uvarint(records, self._days_observed[position])
            append_uvarint(records, self._widths[position])
            append_uvarint(
                records, set_id(self._origin_sets[position])
            )
            flags = self._flags[position]
            append_uvarint(records, flags)
            if flags & _FLAG_RPKI:
                append_uvarint(
                    records, string_id(self._rpki_states[position])
                )
            if flags & _FLAG_VERDICT:
                kind, tags, perpetrators, suspicion = self._verdicts[
                    position
                ]
                append_uvarint(records, string_id(kind))
                append_uvarint(records, len(tags))
                for tag in tags:
                    append_uvarint(records, string_id(tag))
                append_uvarint(records, set_id(perpetrators))
                records += _F64.pack(suspicion)

        string_table = bytearray()
        append_uvarint(string_table, len(strings))
        for text in strings:  # insertion order == id order
            raw = text.encode("utf-8")
            append_uvarint(string_table, len(raw))
            string_table += raw
        _append_frame(out, string_table)

        set_table = bytearray()
        append_uvarint(set_table, len(origin_sets))
        for values in origin_sets:  # insertion order == id order
            append_uvarint(set_table, len(values))
            previous = 0
            for value in values:
                append_uvarint(set_table, value - previous)
                previous = value
        _append_frame(out, set_table)

        records_offset = len(out)
        _append_frame(out, records)

        intervals = bytearray()
        for ordinal in self._sorted_firsts:
            append_uvarint(intervals, ordinal)
        for ordinal in self._sorted_lasts:
            append_uvarint(intervals, ordinal)
        intervals_offset = len(out)
        _append_frame(out, intervals)

        out += _TRAILER.pack(
            records_offset,
            intervals_offset,
            len(self._keys),
            zlib.crc32(out),
            _END_MAGIC,
        )
        return bytes(out)

    @classmethod
    def load(cls, path: Path | str) -> "EpisodeIndex":
        """Read an index file; :class:`ArchiveError` on any corruption."""
        path = Path(path)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            raise ArchiveError(
                f"no episode index at {path}; build one with "
                f"'repro analyze --index'"
            ) from None
        if len(raw) < len(INDEX_MAGIC) + _TRAILER.size:
            raise ArchiveError(
                f"episode index {path} is truncated "
                f"({len(raw)} bytes)"
            )
        if raw[: len(INDEX_MAGIC)] != INDEX_MAGIC:
            raise ArchiveError(
                f"{path} is not an episode index (bad magic)"
            )
        trailer_start = len(raw) - _TRAILER.size
        (
            records_offset,
            intervals_offset,
            record_count,
            file_crc,
            end_magic,
        ) = _TRAILER.unpack_from(raw, trailer_start)
        if end_magic != _END_MAGIC:
            raise ArchiveError(
                f"episode index {path} trailer missing or truncated "
                f"(bad end magic)"
            )
        if zlib.crc32(raw[:trailer_start]) != file_crc:
            raise ArchiveError(
                f"episode index {path} failed its checksum "
                f"(corrupt or bit-flipped)"
            )
        if not (
            len(INDEX_MAGIC)
            <= records_offset
            <= intervals_offset
            <= trailer_start
        ):
            raise ArchiveError(
                f"episode index {path} frame bounds are out of order"
            )
        try:
            return cls._decode(
                raw, trailer_start, records_offset, record_count
            )
        except (struct.error, IndexError, ValueError) as error:
            if isinstance(error, ArchiveError):
                raise
            raise ArchiveError(
                f"episode index {path} is corrupt: {error}"
            ) from error

    @classmethod
    def _decode(
        cls,
        raw: bytes,
        trailer_start: int,
        records_offset: int,
        record_count: int,
    ) -> "EpisodeIndex":
        position = len(INDEX_MAGIC)
        meta, position = _read_frame(raw, position, trailer_start)
        version, at = decode_uvarint(meta, 0)
        if version != _VERSION:
            raise ArchiveError(
                f"unsupported episode index version {version}; "
                f"expected {_VERSION}"
            )
        meta_count, at = decode_uvarint(meta, at)
        if meta_count != record_count:
            raise ArchiveError(
                "episode index meta and trailer disagree on the "
                "record count"
            )
        days_indexed, at = decode_uvarint(meta, at)
        last_ord, at = decode_uvarint(meta, at)
        index = cls(
            days_indexed=days_indexed,
            last_day=(
                datetime.date.fromordinal(last_ord)
                if last_ord
                else None
            ),
        )

        table, position = _read_frame(raw, position, trailer_start)
        count, at = decode_uvarint(table, 0)
        strings: list[str] = []
        for _ in range(count):
            length, at = decode_uvarint(table, at)
            strings.append(table[at:at + length].decode("utf-8"))
            at += length

        table, position = _read_frame(raw, position, trailer_start)
        count, at = decode_uvarint(table, 0)
        origin_sets: list[tuple[int, ...]] = []
        for _ in range(count):
            size, at = decode_uvarint(table, at)
            values = []
            previous = 0
            for _ in range(size):
                delta, at = decode_uvarint(table, at)
                previous += delta
                values.append(previous)
            origin_sets.append(tuple(values))

        if position != records_offset:
            raise ArchiveError(
                "episode index record frame is not where the "
                "trailer points"
            )
        body, position = _read_frame(raw, position, trailer_start)
        at = 0
        previous_key = -1
        for _ in range(record_count):
            network, at = decode_uvarint(body, at)
            length, at = decode_uvarint(body, at)
            key = (network << 6) | length
            if key <= previous_key:
                raise ArchiveError(
                    "episode index records are not in prefix order"
                )
            previous_key = key
            first, at = decode_uvarint(body, at)
            span, at = decode_uvarint(body, at)
            days, at = decode_uvarint(body, at)
            width, at = decode_uvarint(body, at)
            set_index, at = decode_uvarint(body, at)
            flags, at = decode_uvarint(body, at)
            index._keys.append(key)
            index._first_ords.append(first)
            index._last_ords.append(first + span)
            index._days_observed.append(days)
            index._widths.append(width)
            index._origin_sets.append(origin_sets[set_index])
            index._flags.append(flags)
            if flags & _FLAG_RPKI:
                sid, at = decode_uvarint(body, at)
                index._rpki_states.append(strings[sid])
            else:
                index._rpki_states.append(None)
            if flags & _FLAG_VERDICT:
                kind_sid, at = decode_uvarint(body, at)
                tag_count, at = decode_uvarint(body, at)
                tags = []
                for _ in range(tag_count):
                    sid, at = decode_uvarint(body, at)
                    tags.append(strings[sid])
                perp_index, at = decode_uvarint(body, at)
                (suspicion,) = _F64.unpack_from(body, at)
                at += _F64.size
                index._verdicts.append(
                    (
                        strings[kind_sid],
                        tuple(tags),
                        origin_sets[perp_index],
                        suspicion,
                    )
                )
            else:
                index._verdicts.append(None)
        if at != len(body):
            raise ArchiveError(
                "episode index record frame has trailing bytes"
            )

        body, position = _read_frame(raw, position, trailer_start)
        at = 0
        for column in (index._sorted_firsts, index._sorted_lasts):
            for _ in range(record_count):
                ordinal, at = decode_uvarint(body, at)
                column.append(ordinal)
        if position != trailer_start:
            raise ArchiveError(
                "episode index has unframed bytes before the trailer"
            )
        return index


def _append_frame(out: bytearray, body: bytes | bytearray) -> None:
    """Write one length-prefixed, CRC-checked frame (v2 shape)."""
    out += _FRAME_HEADER.pack(len(body), zlib.crc32(body))
    out += body


def _read_frame(
    raw: bytes, position: int, limit: int
) -> tuple[bytes, int]:
    """Read and verify one frame; returns (body, next position)."""
    if position + _FRAME_HEADER.size > limit:
        raise ArchiveError(
            "episode index frame header runs past the trailer"
        )
    body_len, body_crc = _FRAME_HEADER.unpack_from(raw, position)
    start = position + _FRAME_HEADER.size
    end = start + body_len
    if end > limit:
        raise ArchiveError(
            "episode index frame body runs past the trailer"
        )
    body = raw[start:end]
    if zlib.crc32(body) != body_crc:
        raise ArchiveError(
            "episode index frame failed its CRC (bit flip?)"
        )
    return body, end
