"""Per-stage instrumentation of the serial analyze hot path.

``repro analyze --profile`` answers "where does an analyze second go?"
with data instead of folklore: it re-runs the feed serially in-process,
splitting wall clock into the three stages every study pays —

- **decode**: turning archive bytes into day batches (columnar
  :class:`~repro.scenario.archive.DayColumns` by default, object
  :class:`~repro.scenario.archive.DayRecord` rows under
  ``REPRO_OBJECT_SCAN=1``);
- **detect**: the per-day MOAS conflict scan;
- **fold**: folding each :class:`~repro.core.detector.DayDetection`
  into the session's per-shard study state.

A :mod:`cProfile` capture runs alongside so the summary also names the
hottest functions, which is where the next hot-path PR should start.
The profiled feed produces exactly the same session state as
``service.feed`` — profiling a study does not change its results, it
only forces the serial path.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter

from repro.core.detector import (
    columnar_scan_enabled,
    detect_day,
    detect_day_columns,
)
from repro.scenario.archive import ArchiveReader

#: Stage names, in pipeline order (also the report's row order).
STAGES = ("decode", "detect", "fold")


@dataclass
class StageProfile:
    """Wall-clock breakdown of one profiled serial analyze feed."""

    scan_path: str  # "columnar" or "object"
    days: int = 0
    rows: int = 0
    conflicts: int = 0
    decode_seconds: float = 0.0
    detect_seconds: float = 0.0
    fold_seconds: float = 0.0
    hotspots: str = ""

    @property
    def total_seconds(self) -> float:
        return self.decode_seconds + self.detect_seconds + self.fold_seconds

    def stage_seconds(self) -> dict[str, float]:
        """Stage name -> wall-clock seconds, in pipeline order."""
        return {
            "decode": self.decode_seconds,
            "detect": self.detect_seconds,
            "fold": self.fold_seconds,
        }

    def report(self) -> str:
        """The human-readable per-stage summary the CLI prints."""
        total = self.total_seconds
        lines = [
            f"profile: serial feed, {self.scan_path} scan — "
            f"{self.days} day(s), {self.rows} row(s), "
            f"{self.conflicts} conflict-day(s)",
            f"  {'stage':<8} {'seconds':>9} {'share':>7} {'ms/day':>9}",
        ]
        for stage, seconds in self.stage_seconds().items():
            share = seconds / total if total else 0.0
            per_day = 1000.0 * seconds / self.days if self.days else 0.0
            lines.append(
                f"  {stage:<8} {seconds:>9.4f} {share:>6.1%} {per_day:>9.3f}"
            )
        lines.append(
            f"  {'total':<8} {total:>9.4f} {'100.0%':>7} "
            f"{1000.0 * total / self.days if self.days else 0.0:>9.3f}"
        )
        if total:
            lines.append(
                f"  throughput: {self.days / total:.1f} days/s, "
                f"{self.rows / total:.0f} rows/s"
            )
        if self.hotspots:
            lines.append("")
            lines.append(self.hotspots.rstrip())
        return "\n".join(lines)


def profile_feed(
    service,
    archive_dir: Path | str,
    *,
    skip_seen: bool = False,
    columnar: bool | None = None,
    top: int = 12,
) -> StageProfile:
    """Feed ``archive_dir`` into ``service`` serially, timing each stage.

    The instrumented twin of ``service.feed(archive_dir)``: identical
    session state afterwards, but decode/detect/fold are timed per day
    and a cProfile capture runs across the whole feed.  Always serial
    and in-process — stage attribution across pool workers would be
    meaningless.  ``skip_seen`` mirrors ``feed(..., skip_seen=True)``
    (already-covered days are decoded and detected, but not folded);
    ``columnar`` overrides the scan-path choice; ``top`` bounds the
    hotspot listing.  Requires a CDS archive directory.
    """
    directory = Path(archive_dir)
    if not (directory / "manifest.json").is_file():
        raise ValueError(
            f"--profile requires a CDS archive directory; no "
            f"manifest.json under {directory}"
        )
    if columnar is None:
        columnar = columnar_scan_enabled()
    profile = StageProfile(scan_path="columnar" if columnar else "object")
    reader = ArchiveReader(directory)
    profiler = cProfile.Profile()
    try:
        if columnar:
            batches = reader.iter_day_columns()
            detect = detect_day_columns
        else:
            batches = reader.iter_days()
            detect = detect_day
        profiler.enable()
        try:
            while True:
                started = perf_counter()
                batch = next(batches, None)
                decoded = perf_counter()
                if batch is None:
                    break
                profile.decode_seconds += decoded - started
                detection = detect(batch, reader)
                detected = perf_counter()
                profile.detect_seconds += detected - decoded
                profile.rows += (
                    batch.num_rows if columnar else len(batch.rows)
                )
                profile.conflicts += detection.num_conflicts
                if (
                    skip_seen
                    and service.last_day is not None
                    and detection.day <= service.last_day
                ):
                    continue
                service.feed_day(detection)
                profile.fold_seconds += perf_counter() - detected
                profile.days += 1
        finally:
            profiler.disable()
    finally:
        reader.close()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    profile.hotspots = stream.getvalue()
    return profile
