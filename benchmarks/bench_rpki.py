"""RPKI — validation quality and overhead on the canned incident suite.

Generates a fully-observed 100-day world carrying the canned incident
script *with an RPKI shadow* (``ScenarioConfig.rpki``), then gates on
two promises:

- **invalid-state detection floor** — every injected incident whose
  RPKI shadow makes it detectable (exact-prefix hijacks, flapping
  faults, private leaks, sub-prefix fragments) must have its verdict
  rolled up ``invalid``, at or above ``REPRO_BENCH_MIN_INVALID``
  (default 0.9); the anycast incident under its covering multi-origin
  ROA set must stay ``valid``.  This is the canary for anyone touching
  validation, issuance, or the verdict rollup.
- **analyze overhead** — RFC 6811 validation rides the streaming fold,
  so turning ``--rpki`` on must cost less than
  ``REPRO_BENCH_MAX_RPKI_OVERHEAD`` (default 0.10 = 10%) of end-to-end
  analyze wall clock, measured as the best mean-of-3 over five rounds
  to damp scheduler noise.  Set the cap to ``0`` to record the numbers
  without gating (the ``REPRO_BENCH_MIN_SPEEDUP=0`` escape hatch
  pattern, for noisy runners).

The measured payload lands in ``BENCH_rpki.json`` (override with
``REPRO_BENCH_RPKI_OUT``) so CI publishes the trajectory run over run.
"""

import datetime
import json
import os
import time
from pathlib import Path

from repro.api.service import MoasService
from repro.scenario.incidents import IncidentKind, IncidentScript
from repro.scenario.rpki import RpkiConfig
from repro.scenario.world import ScenarioConfig, simulate_study
from repro.util.dates import StudyCalendar

#: Quality gate, not a scale benchmark: the incident mix needs a world
#: big enough to realize every kind (mirrors bench_evaluation).
RPKI_SCALE = float(os.environ.get("REPRO_BENCH_RPKI_SCALE", "0.02"))
MIN_INVALID = float(os.environ.get("REPRO_BENCH_MIN_INVALID", "0.9"))
MAX_OVERHEAD = float(
    os.environ.get("REPRO_BENCH_MAX_RPKI_OVERHEAD", "0.10")
)
OUT_PATH = Path(os.environ.get("REPRO_BENCH_RPKI_OUT", "BENCH_rpki.json"))

CALENDAR = StudyCalendar(
    datetime.date(1997, 11, 8), datetime.date(1998, 2, 15)
)  # 100 days

#: Incident kinds whose RPKI shadow guarantees an invalid rollup.
INVALID_KINDS = (
    IncidentKind.EXACT_HIJACK,
    IncidentKind.FLAPPING_FAULT,
    IncidentKind.PRIVATE_LEAK,
    IncidentKind.SUBPREFIX_HIJACK,
)


def _best_of(runs: int, action, *, inner: int = 3) -> float:
    """Best mean-of-``inner`` wall clock over ``runs`` rounds.

    The analyze base is tens of milliseconds at bench scale, so a
    single run is inside scheduler noise; averaging a small inner loop
    and keeping the best round gives a stable ratio.
    """
    best = float("inf")
    for _ in range(runs):
        started = time.perf_counter()
        for _ in range(inner):
            action()
        best = min(best, (time.perf_counter() - started) / inner)
    return best


def test_rpki_validation_quality_and_overhead(tmp_path_factory):
    directory = tmp_path_factory.mktemp("bench-rpki") / "archive"
    config = ScenarioConfig(
        scale=RPKI_SCALE,
        calendar=CALENDAR,
        paper_archive_gaps=False,
        incidents=IncidentScript.canned(CALENDAR.num_days),
        rpki=RpkiConfig(),
    )
    summary = simulate_study(directory, config)
    assert summary["incidents_unrealized"] == 0, (
        "canned suite did not fully realize; raise REPRO_BENCH_RPKI_SCALE"
    )
    assert summary["roas_issued"] > 0

    # -- validation quality over the injected incidents -------------------
    report = MoasService().evaluate(directory)  # auto-loads roas.json
    states = {
        label.prefix: report.verdicts[label.prefix].rpki_state
        for label in report.labels
    }
    gated = [
        label for label in report.labels if label.kind in INVALID_KINDS
    ]
    invalid_hits = sum(
        1 for label in gated if states[label.prefix] == "invalid"
    )
    invalid_rate = invalid_hits / len(gated) if gated else 0.0
    anycast_states = [
        states[label.prefix]
        for label in report.labels
        if label.kind is IncidentKind.ANYCAST
    ]

    # -- end-to-end analyze overhead --------------------------------------
    # The table is loaded once up front (as one `repro analyze --rpki`
    # run does); the gate measures the steady-state validation cost on
    # the feed path, not JSON parsing.
    from repro.netbase.rpki import RoaTable

    table = RoaTable.load(directory)

    def analyze_plain():
        service = MoasService()
        service.feed(directory)
        return service.results()

    def analyze_rpki():
        service = MoasService(roa_table=table)
        service.feed(directory)
        return service.results()

    analyze_plain(), analyze_rpki()  # warm readers and caches
    plain_seconds = _best_of(5, analyze_plain)
    rpki_seconds = _best_of(5, analyze_rpki)
    overhead = (rpki_seconds - plain_seconds) / plain_seconds

    payload = {
        "scale": RPKI_SCALE,
        "days": CALENDAR.num_days,
        "roas_issued": summary["roas_issued"],
        "incidents_injected": summary["incidents_injected"],
        "min_invalid_floor": MIN_INVALID,
        "invalid_rate": round(invalid_rate, 4),
        "invalid_detected": invalid_hits,
        "invalid_gated": len(gated),
        "anycast_states": anycast_states,
        "rpki_states": report.result.rpki_states,
        "max_overhead": MAX_OVERHEAD,
        "plain_seconds": round(plain_seconds, 4),
        "rpki_seconds": round(rpki_seconds, 4),
        "overhead": round(overhead, 4),
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2))
    print(
        f"\n[rpki] invalid {invalid_hits}/{len(gated)} "
        f"(floor {MIN_INVALID}), anycast {anycast_states}, "
        f"analyze {plain_seconds:.2f}s -> {rpki_seconds:.2f}s "
        f"({overhead:+.1%}, cap {MAX_OVERHEAD:.0%}); "
        f"payload -> {OUT_PATH}"
    )

    assert gated, "canned suite lost its invalid-detectable incidents"
    assert invalid_rate >= MIN_INVALID, (
        f"invalid-state detection {invalid_rate:.2f} regressed below "
        f"the pinned floor {MIN_INVALID}"
    )
    assert anycast_states and all(
        state == "valid" for state in anycast_states
    ), f"anycast episodes must stay valid, got {anycast_states}"
    if MAX_OVERHEAD > 0:
        assert overhead < MAX_OVERHEAD, (
            f"RPKI validation overhead {overhead:.1%} exceeds the "
            f"{MAX_OVERHEAD:.0%} analyze budget"
        )
