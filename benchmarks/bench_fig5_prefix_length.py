"""FIG5 — distribution of conflicts among prefix lengths, per year.

Paper: /24 attracts most conflicts every year ("not unexpected since
/24 prefixes make up the bulk of the BGP routing table"), with /16 the
second-largest mass point and per-year magnitudes rising.

The benchmark times the per-year length aggregation and asserts /24
dominance, /16 in the top three, rising yearly mass, and sane bounds.
"""

from repro.analysis.figures import figure5_ascii
from repro.core.stats import share_of_length


def aggregate(results):
    return results.length_distribution


def test_fig5_prefix_length(benchmark, results):
    distribution = benchmark(aggregate, results)

    full_years = [year for year in (1998, 1999, 2000, 2001)]
    for year in full_years:
        assert year in distribution, f"no data for {year}"
        by_length = distribution[year]
        # /24 dominates every year.
        dominant = max(by_length, key=by_length.get)
        assert dominant == 24, f"{year}: /{dominant} dominates, expected /24"
        share = share_of_length(by_length, 24)
        assert 0.35 <= share <= 0.80, f"{year}: /24 share {share:.2f}"
        # /16 among the top mass points, echoing table composition.
        top5 = sorted(by_length, key=by_length.get, reverse=True)[:5]
        assert 16 in top5, f"{year}: /16 not in top-5 {top5}"
        # Lengths stay within figure 5's 8..32 axis.
        assert all(8 <= length <= 32 for length in by_length)

    # Rising magnitude across years (the four curves stack upward).
    mass = {
        year: sum(distribution[year].values()) for year in full_years
    }
    assert mass[2001] > mass[1998]

    print()
    print(figure5_ascii(results, year=2001))
    for year in full_years:
        print(
            f"[fig5] {year}: /24 mean daily "
            f"{distribution[year].get(24, 0):.1f}, total mass "
            f"{mass[year]:.0f}"
        )
