"""QUERY — episode-index latency at million-episode scale + speedup.

Two gates for the ``repro query`` engine (ISSUE 10):

1. **Latency**: build a synthetic million-episode index (env-tunable
   via ``REPRO_BENCH_QUERY_EPISODES``), save and reload it, then drive
   point and range queries through it; point p99 must stay at or below
   ``REPRO_BENCH_QUERY_MAX_POINT_P99_MS`` (default 10 ms) — the
   O(log n) promise measured, not assumed.
2. **Speedup**: on a real simulated archive, answering one prefix's
   history from a resident index (the serve daemon's path; the
   one-time load cost is reported alongside) must beat the full-study
   fold that ``analyze`` would otherwise pay by at least
   ``REPRO_BENCH_QUERY_MIN_SPEEDUP`` (default 100×).

The measured distribution (build/save/load wall clock, index file
size, point/range p50/p99, fold-vs-index speedup) is written to
``BENCH_query.json`` (override with ``REPRO_BENCH_QUERY_OUT``) so CI
publishes the query-performance trajectory run over run.
"""

import datetime
import json
import os
import random
import time
from pathlib import Path

from repro.analysis.export import episode_record
from repro.analysis.index import EpisodeIndex, IndexRecord
from repro.api.service import MoasService
from repro.netbase.prefix import Prefix
from repro.scenario.world import ScenarioConfig, simulate_study

EPISODES = int(
    os.environ.get("REPRO_BENCH_QUERY_EPISODES", "1000000")
)
POINT_QUERIES = int(
    os.environ.get("REPRO_BENCH_QUERY_POINT_QUERIES", "2000")
)
RANGE_QUERIES = int(
    os.environ.get("REPRO_BENCH_QUERY_RANGE_QUERIES", "500")
)
MAX_POINT_P99_MS = float(
    os.environ.get("REPRO_BENCH_QUERY_MAX_POINT_P99_MS", "10")
)
MIN_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_QUERY_MIN_SPEEDUP", "100")
)
SCALE = float(os.environ.get("REPRO_BENCH_QUERY_SCALE", "0.02"))
OUT_PATH = Path(
    os.environ.get("REPRO_BENCH_QUERY_OUT", "BENCH_query.json")
)

STUDY_START = datetime.date(1997, 11, 8).toordinal()
STUDY_DAYS = 1279

VERDICT_KINDS = (
    "organic",
    "exact_hijack",
    "subprefix_hijack",
    "route_leak",
)
RPKI_STATES = ("valid", "invalid", "not_found")


def percentile(sorted_values: list[float], fraction: float) -> float:
    """The ``fraction`` percentile of an ascending-sorted sample."""
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1,
        int(fraction * (len(sorted_values) - 1) + 0.5),
    )
    return sorted_values[index]


def synthetic_records(count: int, rng: random.Random):
    """``count`` IndexRecords in sort_key order, streamed.

    Origin sets and verdict vocabulary draw from small pools — MOAS
    origin sets repeat heavily in the wild, which is exactly what the
    index's interning tables exploit.
    """
    origin_pool = [
        tuple(sorted(rng.sample(range(1, 70000), rng.randint(2, 4))))
        for _ in range(1024)
    ]
    for position in range(count):
        network = position << 12  # strictly ascending keys
        length = 20 + 4 * (position % 3)
        first = STUDY_START + rng.randrange(STUDY_DAYS - 1)
        span = min(rng.randrange(120), STUDY_DAYS - 1 - (first - STUDY_START))
        origins = origin_pool[rng.randrange(len(origin_pool))]
        has_verdict = position % 3 == 0
        yield IndexRecord(
            prefix=Prefix(network, length, strict=False),
            first_day=datetime.date.fromordinal(first),
            last_day=datetime.date.fromordinal(first + span),
            days_observed=max(1, span // 2),
            origins=origins,
            max_origins_single_day=len(origins),
            ongoing=position % 7 == 0,
            rpki_state=(
                RPKI_STATES[position % 3] if position % 2 == 0 else None
            ),
            verdict_kind=(
                VERDICT_KINDS[position % 4] if has_verdict else None
            ),
            verdict_tags=("short-lived",) if has_verdict else (),
            suspicion=(position % 100) / 100 if has_verdict else None,
            perpetrators=origins[:1] if has_verdict else (),
        )


def test_million_episode_latency_and_fold_speedup(tmp_path_factory):
    scratch = tmp_path_factory.mktemp("bench-query")
    rng = random.Random(20011108)

    # -- build / save / load at scale ------------------------------------
    started = time.perf_counter()
    index = EpisodeIndex.from_records(
        synthetic_records(EPISODES, rng),
        days_indexed=STUDY_DAYS,
        last_day=datetime.date.fromordinal(
            STUDY_START + STUDY_DAYS - 1
        ),
    )
    build_seconds = time.perf_counter() - started

    path = scratch / "episodes.idx"
    started = time.perf_counter()
    index.save(path)
    save_seconds = time.perf_counter() - started
    size_bytes = path.stat().st_size

    started = time.perf_counter()
    index = EpisodeIndex.load(path)
    load_seconds = time.perf_counter() - started
    assert len(index) == EPISODES

    # -- point queries (hits and misses interleaved) ---------------------
    targets = []
    for _ in range(POINT_QUERIES):
        position = rng.randrange(EPISODES)
        network = position << 12
        length = 20 + 4 * (position % 3)
        if rng.random() < 0.2:  # a guaranteed miss: off-lattice length
            length += 1
        targets.append(Prefix(network, length, strict=False))
    point_ms: list[float] = []
    hits = 0
    for prefix in targets:
        started = time.perf_counter()
        answer = index.query(prefix)
        point_ms.append((time.perf_counter() - started) * 1000)
        if answer is not None:
            hits += 1
    point_ms.sort()

    # -- range queries ----------------------------------------------------
    range_ms: list[float] = []
    for _ in range(RANGE_QUERIES):
        position = rng.randrange(EPISODES)
        prefix = Prefix(
            position << 12, 20 + 4 * (position % 3), strict=False
        )
        start_ord = STUDY_START + rng.randrange(STUDY_DAYS)
        window = (
            datetime.date.fromordinal(start_ord),
            datetime.date.fromordinal(
                min(
                    start_ord + rng.randrange(90),
                    STUDY_START + STUDY_DAYS - 1,
                )
            ),
        )
        started = time.perf_counter()
        answer = index.query(prefix, window=window)
        range_ms.append((time.perf_counter() - started) * 1000)
        assert answer is not None
    range_ms.sort()

    # -- speedup vs the full-study fold on a real archive -----------------
    # The baseline is what `analyze` pays for one answer today: fold
    # the full 1997-2001 study window (at benchmark scale), then read
    # the episode.  The indexed path answers cold: load + query.
    archive = scratch / "archive"
    simulate_study(archive, ScenarioConfig(scale=SCALE))

    started = time.perf_counter()
    service = MoasService()
    service.feed(archive)
    results = service.results()
    probe = sorted(
        results.episodes, key=lambda prefix: prefix.sort_key()
    )[0]
    baseline_answer = episode_record(results, probe)
    fold_seconds = time.perf_counter() - started

    real_index_path = archive / "episodes.idx"
    service.build_index(real_index_path)
    started = time.perf_counter()
    cold = EpisodeIndex.load(real_index_path)
    indexed_answer = cold.query(probe)
    cold_seconds = time.perf_counter() - started
    assert indexed_answer.record.episode_dict() == baseline_answer

    # The gated speedup is the resident-index answer — the serve
    # daemon's path, and what any repeated querying amortizes to.
    # The one-time load cost is reported alongside, not gated.
    warm_samples = []
    for _ in range(100):
        started = time.perf_counter()
        cold.query(probe)
        warm_samples.append(time.perf_counter() - started)
    warm_seconds = sorted(warm_samples)[len(warm_samples) // 2]
    speedup = fold_seconds / warm_seconds

    payload = {
        "episodes": EPISODES,
        "index_size_bytes": size_bytes,
        "bytes_per_episode": round(size_bytes / EPISODES, 2),
        "build_seconds": round(build_seconds, 3),
        "save_seconds": round(save_seconds, 3),
        "load_seconds": round(load_seconds, 3),
        "point_queries": POINT_QUERIES,
        "point_hits": hits,
        "point_ms": {
            "p50": round(percentile(point_ms, 0.50), 4),
            "p99": round(percentile(point_ms, 0.99), 4),
            "max": round(point_ms[-1], 4),
        },
        "range_queries": RANGE_QUERIES,
        "range_ms": {
            "p50": round(percentile(range_ms, 0.50), 4),
            "p99": round(percentile(range_ms, 0.99), 4),
            "max": round(range_ms[-1], 4),
        },
        "fold_baseline_seconds": round(fold_seconds, 3),
        "cold_indexed_answer_seconds": round(cold_seconds, 6),
        "resident_answer_seconds": round(warm_seconds, 9),
        "speedup_vs_full_fold": round(speedup, 1),
        "floors": {
            "max_point_p99_ms": MAX_POINT_P99_MS,
            "min_speedup": MIN_SPEEDUP,
        },
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2))
    print(
        f"\n[query] {EPISODES} episodes, {size_bytes / 1e6:.1f} MB "
        f"({payload['bytes_per_episode']} B/episode); build "
        f"{build_seconds:.1f}s, load {load_seconds:.1f}s; point p50 "
        f"{payload['point_ms']['p50']}ms p99 "
        f"{payload['point_ms']['p99']}ms, range p99 "
        f"{payload['range_ms']['p99']}ms; resident answer "
        f"{warm_seconds * 1e6:.0f}us (cold {cold_seconds * 1000:.1f}ms) "
        f"vs fold {fold_seconds:.1f}s = {speedup:.0f}x (floors: p99 "
        f"<= {MAX_POINT_P99_MS}ms, >= {MIN_SPEEDUP}x); payload -> "
        f"{OUT_PATH}"
    )

    assert hits > 0 and hits < POINT_QUERIES, (
        "the point-query mix must include both hits and misses"
    )
    point_p99 = percentile(point_ms, 0.99)
    assert point_p99 <= MAX_POINT_P99_MS, (
        f"point-query p99 {point_p99:.3f} ms above the pinned "
        f"ceiling {MAX_POINT_P99_MS} ms"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"resident indexed answer is only {speedup:.1f}x faster than "
        f"the full fold; the pinned floor is {MIN_SPEEDUP}x"
    )
