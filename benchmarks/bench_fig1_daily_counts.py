"""FIG1 — daily MOAS conflict counts, 1997-11-08 → 2001-07-18.

Paper: 38 225 conflicts over 1279 observed days; daily counts rise from
~600 to ~1300; spikes of 11 842 on 1998-04-07 and 10 226 on 2001-04-06.

The benchmark times the end-to-end daily detection pass (the exact
computation behind figure 1) and asserts the reproduced series has the
paper's shape: right total magnitude, rising trend, both fault spikes
on their historical dates, spikes dwarfing the baseline.
"""

import datetime

from benchmarks.conftest import scaled, within_band
from repro.analysis.figures import figure1_ascii
from repro.scenario.calibration import PAPER


def daily_counts(detections):
    return [(detection.day, detection.num_conflicts) for detection in detections]


def test_fig1_daily_counts(benchmark, detections, results):
    series = benchmark(daily_counts, detections)

    assert len(series) == PAPER.observation_days

    # Total distinct conflicted prefixes lands at the scaled magnitude.
    assert within_band(results.total_conflicts, PAPER.total_conflicts), (
        f"total {results.total_conflicts} vs scaled paper "
        f"{scaled(PAPER.total_conflicts):.0f}"
    )

    # Both historic spikes are the two highest days, on the right dates.
    peak_dates = {day for day, _count in results.peak_days}
    assert PAPER.spike_1998_date in peak_dates
    assert any(
        PAPER.spike_2001_start
        <= day
        <= PAPER.spike_2001_start + datetime.timedelta(days=5)
        for day in peak_dates
    )

    # Spikes dwarf the baseline, as in the figure.
    counts = dict(series)
    spike_count = counts[PAPER.spike_1998_date]
    baseline = sorted(count for _day, count in series)[len(series) // 2]
    assert spike_count > 6 * baseline

    # Rising trend: 2001's median over 1998's, roughly doubling.
    assert (
        results.yearly_medians[2001] > 1.4 * results.yearly_medians[1998]
    )

    print()
    print(figure1_ascii(results))
    print(
        f"[fig1] total={results.total_conflicts} "
        f"(paper {PAPER.total_conflicts} x {scaled(1):.3f} scale = "
        f"{scaled(PAPER.total_conflicts):.0f}), "
        f"spike98={spike_count}, baseline~{baseline}"
    )
