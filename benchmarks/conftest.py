"""Shared fixtures for the figure/table benchmarks.

One synthetic study archive (full 1997-2001 window, scale 0.05) is
generated per benchmark session and analyzed once; every figure bench
reads from the same results so paper-shape assertions are consistent
across benches.  ``SCALE`` converts the paper's absolute numbers into
expected magnitudes for this archive; the ``REPRO_BENCH_SCALE``
environment variable overrides it (CI smoke runs use a tiny scale).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.pipeline import StudyResults
from repro.api import MoasService, open_source
from repro.core.detector import DayDetection
from repro.scenario.world import ScenarioConfig, simulate_study

#: Study scale used by all figure benchmarks.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))

#: Tolerance band for scaled paper magnitudes: generated archives are
#: stochastic, so magnitudes must land within (value*lo, value*hi).
BAND = (0.55, 1.6)


def scaled(paper_value: float) -> float:
    """The paper magnitude scaled to the benchmark archive size."""
    return paper_value * SCALE


def within_band(measured: float, paper_value: float) -> bool:
    """Shape check: measured magnitude within the tolerance band."""
    low, high = BAND
    target = scaled(paper_value)
    return target * low <= measured <= target * high


@pytest.fixture(scope="session")
def paper_archive(tmp_path_factory) -> str:
    directory = tmp_path_factory.mktemp("bench-archive")
    simulate_study(directory, ScenarioConfig(scale=SCALE))
    return str(directory)


@pytest.fixture(scope="session")
def detections(paper_archive) -> list[DayDetection]:
    """All daily detections, materialized once for the session."""
    return list(open_source(paper_archive).detections())


@pytest.fixture(scope="session")
def results(detections) -> StudyResults:
    """The full pipeline output over the benchmark archive."""
    service = MoasService()
    service.feed(detections)
    return service.results()
