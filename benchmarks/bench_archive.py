"""ARCHIVE — the storage layer's first baseline: day-store v1 vs v2.

Re-encodes the session benchmark world in both day-store formats and
times the three operations every workload sits on:

- **write**: registry + paths + every day record, writer to finalize;
- **full read**: a fresh reader decoding every day — the full-study
  read path that gates parallel workers and `repro analyze` alike;
- **range reads**: many small ``iter_days(start, stop)`` windows — the
  random-access pattern of offset-range work units and longitudinal
  queries, where v1 must scan-and-seek from day zero and v2 positions
  through its footer index in O(1).

The decoded records are asserted identical across formats before any
number is reported.  Everything lands in ``BENCH_archive.json``
(override with ``REPRO_BENCH_ARCHIVE_OUT``), and the run fails when
v2's full-read speedup drops below ``REPRO_BENCH_MIN_ARCHIVE_SPEEDUP``
(default 3x — the storage-format acceptance bar).
"""

import json
import os
import random
import time
from pathlib import Path

from repro.scenario.archive import (
    ArchiveReader,
    ArchiveWriter,
    reencode_archive,
)

MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_ARCHIVE_SPEEDUP", "3"))
OUT_PATH = Path(
    os.environ.get("REPRO_BENCH_ARCHIVE_OUT", "BENCH_archive.json")
)

#: Random-access workload: this many small windows of this many days.
RANGE_READS = 120
RANGE_LENGTH = 3


def _rewrite(directory, format, source, records):
    """Re-encode ``source``'s world into ``directory`` as ``format``.

    Same copy loop as ``repro convert`` (shared helper); the
    pre-materialized ``records`` keep the timing pure write.
    """
    writer = ArchiveWriter(directory, format=format)
    reencode_archive(source, writer, records=records)


#: Timing passes per measurement; the best pass is reported, so a
#: stray page-cache miss or GC pause cannot decide the gate.
PASSES = 3


def _full_read(directory) -> tuple[float, int]:
    """Best wall clock of a fresh reader decoding the whole archive."""
    best = float("inf")
    rows = 0
    for _ in range(PASSES):
        started = time.perf_counter()
        reader = ArchiveReader(directory)
        rows = 0
        for record in reader.iter_days():
            rows += len(record.rows)
        best = min(best, time.perf_counter() - started)
    return best, rows


def _range_reads(directory, num_days) -> float:
    """Best wall clock of many small windows on a persistent reader."""
    reader = ArchiveReader(directory)
    rng = random.Random(20011108)
    starts = [rng.randrange(max(1, num_days)) for _ in range(RANGE_READS)]
    best = float("inf")
    for _ in range(PASSES):
        started = time.perf_counter()
        for start in starts:
            for _record in reader.iter_days(start, start + RANGE_LENGTH):
                pass
        best = min(best, time.perf_counter() - started)
    return best


def test_day_store_formats(paper_archive, tmp_path_factory):
    base = tmp_path_factory.mktemp("bench-archive-formats")
    source = ArchiveReader(paper_archive)
    records = list(source.iter_days())
    num_days = len(records)

    timings: dict[str, float] = {}
    directories = {}
    for format in ("v1", "v2"):
        directory = base / format
        started = time.perf_counter()
        _rewrite(directory, format, source, records)
        timings[f"{format}_write_seconds"] = time.perf_counter() - started
        directories[format] = directory

    # Formats must be indistinguishable before they are comparable.
    assert list(ArchiveReader(directories["v1"]).iter_days()) == records
    assert list(ArchiveReader(directories["v2"]).iter_days()) == records

    row_counts = {}
    for format in ("v1", "v2"):
        seconds, rows = _full_read(directories[format])
        timings[f"{format}_full_read_seconds"] = seconds
        row_counts[format] = rows
    assert row_counts["v1"] == row_counts["v2"]

    for format in ("v1", "v2"):
        timings[f"{format}_range_read_seconds"] = _range_reads(
            directories[format], num_days
        )

    full_read_speedup = (
        timings["v1_full_read_seconds"] / timings["v2_full_read_seconds"]
    )
    range_read_speedup = (
        timings["v1_range_read_seconds"] / timings["v2_range_read_seconds"]
    )
    payload = {
        "num_days": num_days,
        "total_rows": row_counts["v1"],
        "min_full_read_speedup": MIN_SPEEDUP,
        "range_reads": RANGE_READS,
        "range_length": RANGE_LENGTH,
        "v1_days_bin_bytes": (
            directories["v1"] / "days.bin"
        ).stat().st_size,
        "v2_days_bin_bytes": (
            directories["v2"] / "days.bin"
        ).stat().st_size,
        "full_read_speedup": round(full_read_speedup, 3),
        "range_read_speedup": round(range_read_speedup, 3),
        **{key: round(value, 4) for key, value in timings.items()},
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2))
    print(
        f"\n[archive] {num_days} days, {row_counts['v1']} rows: "
        f"full read v1 {timings['v1_full_read_seconds']:.3f}s / "
        f"v2 {timings['v2_full_read_seconds']:.3f}s "
        f"({full_read_speedup:.1f}x), "
        f"range reads {range_read_speedup:.1f}x, "
        f"days.bin {payload['v1_days_bin_bytes']} -> "
        f"{payload['v2_days_bin_bytes']} bytes; payload -> {OUT_PATH}"
    )

    # The acceptance bar: the v2 full-study read path must beat v1 by
    # the pinned factor (the numbers are recorded above either way).
    assert full_read_speedup >= MIN_SPEEDUP, (
        f"v2 full read only {full_read_speedup:.2f}x faster than v1 "
        f"(floor {MIN_SPEEDUP}x)"
    )
