"""REPLAY — archive-to-update-stream reconstruction throughput.

Route Views collectors log RIB snapshots *and* update streams; the
paper used snapshots.  `repro.scenario.updates` reconstructs the
between-snapshot updates from the archive, which is what feeds the
streaming alerter with archive-faithful workloads.  This benchmark
measures reconstruction throughput over the benchmark archive and
validates stream/offline agreement: the streaming detector's standing
conflicts after replaying to the end must match the final day's
offline detection.
"""

from repro.core.realtime import StreamingMoasDetector
from repro.scenario.updates import replay_archive


def test_archive_replay(benchmark, paper_archive, detections):
    def replay():
        detector = StreamingMoasDetector()
        count = 0
        for _ts, message in replay_archive(
            paper_archive, include_initial_table=True
        ):
            detector.process_update(message)
            count += 1
        return detector, count

    detector, num_updates = benchmark.pedantic(
        replay, rounds=3, iterations=1
    )

    assert num_updates > 10_000  # years of churn reconstructed

    # Agreement: streaming end-state == offline detection of the last
    # day (same conflicts, excluding none since replay carries all rows).
    final_offline = {
        conflict.prefix for conflict in detections[-1].conflicts
    }
    final_streaming = set(detector.current_conflicts())
    assert final_streaming == final_offline, (
        f"stream/offline divergence: {len(final_streaming)} vs "
        f"{len(final_offline)}"
    )

    throughput = num_updates / benchmark.stats.stats.mean
    print(
        f"\n[replay] {num_updates} updates reconstructed and processed "
        f"at {throughput:,.0f} updates/s; final standing conflicts "
        f"{len(final_streaming)} == offline {len(final_offline)}"
    )
