"""FIG6 — conflict classes over the mid-2001 window.

Paper: over 2001-05-15 → 2001-08-15, DistinctPaths dominates (~2000+
conflicts/day) with OrigTranAS and SplitView each in the low hundreds.
Our archive ends 2001-07-18 with the figure-1 window, so the overlap
of the two windows is classified.

The benchmark times the classification pass (the expensive per-day
path-pair analysis) and asserts the class ordering and daily presence
of all three classes.
"""

from repro.analysis.figures import figure6_ascii
from repro.core.classifier import ConflictClass, classify_day
from repro.scenario.timeline import CLASSIFICATION_WINDOW


def classify_window(detections):
    start, end = CLASSIFICATION_WINDOW
    series = []
    for detection in detections:
        if start <= detection.day <= end:
            series.append((detection.day, classify_day(detection.conflicts)))
    return series


def test_fig6_classification(benchmark, detections, results):
    series = benchmark(classify_window, detections)

    assert len(series) >= 60  # the window is ~2 months of daily data

    totals = {conflict_class: 0 for conflict_class in ConflictClass}
    for _day, counts in series:
        for conflict_class, value in counts.items():
            totals[conflict_class] += value

    distinct = totals[ConflictClass.DISTINCT_PATHS]
    orig_tran = totals[ConflictClass.ORIG_TRAN_AS]
    split_view = totals[ConflictClass.SPLIT_VIEW]

    # DistinctPaths dominates, as BGP's single-best-route behaviour
    # predicts (paper Section V).
    assert distinct > 2 * (orig_tran + split_view)
    # The minority classes both actually occur.
    assert orig_tran > 0
    assert split_view > 0
    # Paper shape: minority classes are hundreds vs thousands — i.e.
    # each under ~25% of the total.
    total = distinct + orig_tran + split_view
    assert orig_tran / total < 0.25
    assert split_view / total < 0.30

    # DistinctPaths dominates on (essentially) every single day.
    dominated_days = sum(
        1
        for _day, counts in series
        if counts[ConflictClass.DISTINCT_PATHS]
        >= max(
            counts[ConflictClass.ORIG_TRAN_AS],
            counts[ConflictClass.SPLIT_VIEW],
        )
    )
    assert dominated_days >= 0.95 * len(series)

    print()
    print(figure6_ascii(results))
    share = {
        conflict_class.value: f"{100 * count / total:.1f}%"
        for conflict_class, count in totals.items()
    }
    print(f"[fig6] class shares over window: {share} "
          "(paper: DistinctPaths dominant, others low hundreds/day)")
