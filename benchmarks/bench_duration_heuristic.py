"""HEUR — Section VI-F's duration heuristic, swept and scored.

Paper: "the duration can be a useful heuristic to distinguish between
valid MOAS conflicts and invalid ones.  However, such differentiation
can not be accurate enough to be a solution."

The benchmark scores the duration threshold heuristic against the
generator's ground-truth cause labels (never seen by the pipeline) and
asserts exactly the paper's conclusion: clearly better than chance,
clearly short of reliable.
"""

from pathlib import Path

import pytest

from repro.core.causes import score_duration_heuristic
from repro.netbase.prefix import Prefix
from repro.scenario.archive import ArchiveReader


@pytest.fixture(scope="module")
def truth_labels(paper_archive):
    """prefix -> is-valid, dropping prefixes with conflicting labels."""
    reader = ArchiveReader(Path(paper_archive))
    labels: dict[Prefix, bool] = {}
    ambiguous: set[Prefix] = set()
    for entry in reader.ground_truth():
        prefix = Prefix.parse(entry["prefix"])
        valid = bool(entry["valid"])
        if prefix in labels and labels[prefix] != valid:
            ambiguous.add(prefix)
        labels[prefix] = valid
    for prefix in ambiguous:
        del labels[prefix]
    return labels


def sweep(episodes, truth, thresholds):
    return {
        threshold: score_duration_heuristic(
            episodes, truth, threshold_days=threshold
        )
        for threshold in thresholds
    }


def test_duration_heuristic(benchmark, results, truth_labels):
    thresholds = (1, 3, 9, 29, 89)
    episodes = list(results.episodes.values())
    scores = benchmark(sweep, episodes, truth_labels, thresholds)

    best = max(scores.values(), key=lambda score: score.accuracy)

    # Useful: well above a coin flip at the best threshold.
    assert best.accuracy > 0.65, f"accuracy only {best.accuracy:.2f}"

    # ...but "not accurate enough to be a solution": every threshold
    # still misclassifies a real share of conflicts.
    for score in scores.values():
        assert score.accuracy < 0.98
        total_errors = score.false_valid + score.false_invalid
        assert total_errors > 0

    # The heuristic's recall of valid conflicts improves as the
    # threshold drops (short valid conflicts get misjudged).
    assert scores[1].recall >= scores[89].recall

    print()
    for threshold in thresholds:
        score = scores[threshold]
        print(
            f"[heur] >{threshold:>2}d: accuracy={score.accuracy:.2f} "
            f"precision={score.precision:.2f} recall={score.recall:.2f} "
            f"(TV={score.true_valid} FV={score.false_valid} "
            f"TI={score.true_invalid} FI={score.false_invalid})"
        )
    print(
        "[heur] paper: duration is useful but 'can not be accurate "
        "enough to be a solution'"
    )
