"""PERF-BGP — message-engine convergence cost ablation (not a paper figure).

Times full BGP propagation to convergence on growing topologies and
checks the oracle agrees with the engine at every size — the guarantee
that lets the long study use the closed-form oracle instead of
message-level simulation.
"""

import pytest

from repro.bgp.network import Network
from repro.bgp.oracle import GaoRexfordOracle
from repro.netbase.prefix import Prefix
from repro.topology.generator import TopologyConfig, build_initial_model
from repro.util.rng import RngStreams

PREFIX = Prefix.parse("10.0.0.0/8")


@pytest.mark.parametrize("scale", [0.01, 0.04, 0.08])
def test_bgp_propagation(benchmark, scale):
    model, _plan, _factory = build_initial_model(
        TopologyConfig(scale=scale), RngStreams(42)
    )
    origin = sorted(model.as_info)[len(model.as_info) // 2]

    def propagate():
        network = Network(model.graph.copy())
        network.originate(origin, PREFIX)
        updates = network.run_to_convergence()
        return network, updates

    network, updates = benchmark(propagate)

    # Every AS converged to a route.
    reached = sum(
        1
        for asn in model.graph.ases()
        if network.best_path(asn, PREFIX) is not None
    )
    assert reached == len(model.graph)

    # Oracle/engine agreement at this size.
    oracle = GaoRexfordOracle(model.graph)
    for asn in list(model.graph.ases())[:200]:
        engine_path = network.best_path(asn, PREFIX)
        oracle_path = oracle.path(asn, origin)
        assert engine_path is not None
        assert oracle_path == engine_path.sequence_tuple()

    print(
        f"\n[perf-bgp] {len(model.graph)} ASes, "
        f"{model.graph.num_links()} links: {updates} updates, "
        f"{benchmark.stats.stats.mean * 1e3:.0f} ms to convergence"
    )
