"""FIG2 — the yearly-median table.

Paper: medians 683 (1998), 810.5 (1999), 951 (2000), 1294 (2001);
year-over-year growth 18.7%, 17.3%, 36.1%.

The benchmark times the median/growth computation and asserts every
year's scaled magnitude and the every-year-grows property.
"""

from benchmarks.conftest import scaled, within_band
from repro.analysis.report import figure2_table
from repro.core.stats import yearly_increase_rates, yearly_medians
from repro.scenario.calibration import PAPER


def compute(series):
    medians = yearly_medians(series)
    return medians, yearly_increase_rates(medians)


def test_fig2_yearly_medians(benchmark, results):
    medians, rates = benchmark(compute, results.daily_series)

    for year, paper_median in PAPER.yearly_medians.items():
        assert year in medians
        assert within_band(medians[year], paper_median), (
            f"{year}: median {medians[year]} vs scaled paper "
            f"{scaled(paper_median):.1f}"
        )

    # Growth every year, like the paper's table.
    for year in (1999, 2000, 2001):
        assert rates[year] > 0, f"{year} should grow, got {rates[year]:.1%}"

    # Cumulative growth 1998 -> 2001 around the paper's ~1.9x.
    ratio = medians[2001] / medians[1998]
    assert 1.4 <= ratio <= 2.6

    print()
    print(figure2_table(results))
    paper_rates = {1999: 0.187, 2000: 0.173, 2001: 0.361}
    for year in (1999, 2000, 2001):
        print(
            f"[fig2] {year}: measured {rates[year]:+.1%} "
            f"(paper {paper_rates[year]:+.1%})"
        )
