"""PERF-DET — detector throughput ablation (not a paper figure).

Times the reference full-table detector over synthetic snapshots of
increasing size, verifying throughput stays in the range that makes the
1279-day study tractable and that cost scales roughly linearly.
"""

import datetime

import pytest

from repro.core.detector import detect_snapshot
from repro.netbase.aspath import ASPath
from repro.netbase.prefix import Prefix
from repro.netbase.rib import PeerId, RibSnapshot, Route
from repro.util.rng import RngStreams


def synthetic_snapshot(num_prefixes: int, conflict_share: float = 0.02):
    rng = RngStreams(7).python("bench-detector")
    peers = [PeerId(asn=asn) for asn in (701, 1239, 3561, 7018)]
    routes = []
    for index in range(num_prefixes):
        prefix = Prefix((10 << 24) + (index << 8), 24, strict=False)
        origin = 1000 + index % 5000
        for peer in peers:
            path = ASPath.from_sequence([peer.asn, 42, origin])
            routes.append(Route(prefix, path, peer))
        if rng.random() < conflict_share:
            hijacker = 64000 + index % 500
            routes.append(
                Route(
                    prefix,
                    ASPath.from_sequence([peers[0].asn, hijacker]),
                    peers[0],
                )
            )
    return RibSnapshot.from_routes(datetime.date(2001, 4, 6), routes)


@pytest.mark.parametrize("num_prefixes", [2_000, 10_000, 50_000])
def test_detector_throughput(benchmark, num_prefixes):
    snapshot = synthetic_snapshot(num_prefixes)
    detection = benchmark(detect_snapshot, snapshot)

    assert detection.prefixes_scanned == num_prefixes
    assert detection.num_conflicts > 0

    stats = benchmark.stats.stats
    per_route = stats.mean / snapshot.num_routes()
    print(
        f"\n[perf-det] {num_prefixes} prefixes, "
        f"{snapshot.num_routes()} routes: {stats.mean * 1e3:.1f} ms "
        f"({1 / per_route:,.0f} routes/s)"
    )
    # Tractability floor: at least 100k routes/s in the reference path.
    assert 1 / per_route > 100_000
