"""PERF-DET — detector throughput: reference path and columnar ablation.

Two benches share this module:

- ``test_detector_throughput`` times the reference full-table detector
  over synthetic snapshots of increasing size, verifying throughput
  stays in the range that makes the 1279-day study tractable and that
  cost scales roughly linearly.
- ``test_columnar_vs_object_day_scan`` re-encodes the session archive
  in both day-store formats and races the object-row scan against the
  columnar hot path, twice per format: the raw decode→detect scan and
  the full serial ``analyze`` fold.  The two paths must produce equal
  detections and equal :class:`StudyResults` before any number is
  reported.  Everything lands in ``BENCH_detect.json`` (override with
  ``REPRO_BENCH_DETECT_OUT``), and the run fails when the v2 columnar
  scan speedup drops below ``REPRO_BENCH_MIN_DETECT_SPEEDUP`` (default
  3x — the CI floor; locally the scan runs ~4x and analyze ~3x).
"""

import datetime
import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis.sources import detections_from_archive
from repro.api import MoasService
from repro.core.detector import detect_snapshot
from repro.netbase.aspath import ASPath
from repro.netbase.prefix import Prefix
from repro.netbase.rib import PeerId, RibSnapshot, Route
from repro.scenario.archive import (
    ArchiveReader,
    ArchiveWriter,
    reencode_archive,
)
from repro.util.rng import RngStreams

MIN_SCAN_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_DETECT_SPEEDUP", "3")
)
DETECT_OUT_PATH = Path(
    os.environ.get("REPRO_BENCH_DETECT_OUT", "BENCH_detect.json")
)

#: Timing passes per measurement; the best pass is reported, so a
#: stray page-cache miss or GC pause cannot decide the gate.
PASSES = 3


def synthetic_snapshot(num_prefixes: int, conflict_share: float = 0.02):
    rng = RngStreams(7).python("bench-detector")
    peers = [PeerId(asn=asn) for asn in (701, 1239, 3561, 7018)]
    routes = []
    for index in range(num_prefixes):
        prefix = Prefix((10 << 24) + (index << 8), 24, strict=False)
        origin = 1000 + index % 5000
        for peer in peers:
            path = ASPath.from_sequence([peer.asn, 42, origin])
            routes.append(Route(prefix, path, peer))
        if rng.random() < conflict_share:
            hijacker = 64000 + index % 500
            routes.append(
                Route(
                    prefix,
                    ASPath.from_sequence([peers[0].asn, hijacker]),
                    peers[0],
                )
            )
    return RibSnapshot.from_routes(datetime.date(2001, 4, 6), routes)


@pytest.mark.parametrize("num_prefixes", [2_000, 10_000, 50_000])
def test_detector_throughput(benchmark, num_prefixes):
    snapshot = synthetic_snapshot(num_prefixes)
    detection = benchmark(detect_snapshot, snapshot)

    assert detection.prefixes_scanned == num_prefixes
    assert detection.num_conflicts > 0

    stats = benchmark.stats.stats
    per_route = stats.mean / snapshot.num_routes()
    print(
        f"\n[perf-det] {num_prefixes} prefixes, "
        f"{snapshot.num_routes()} routes: {stats.mean * 1e3:.1f} ms "
        f"({1 / per_route:,.0f} routes/s)"
    )
    # Tractability floor: at least 100k routes/s in the reference path.
    assert 1 / per_route > 100_000


def _time_scan(directory: str, columnar: bool) -> float:
    """Best wall clock of one full decode→detect sweep (fresh reader)."""
    best = float("inf")
    for _ in range(PASSES):
        started = time.perf_counter()
        for _detection in detections_from_archive(
            directory, columnar=columnar
        ):
            pass
        best = min(best, time.perf_counter() - started)
    return best


def _time_analyze(directory: str, columnar: bool) -> float:
    """Best wall clock of the serial end-to-end analyze fold."""
    best = float("inf")
    for _ in range(PASSES):
        service = MoasService()
        started = time.perf_counter()
        service.feed(detections_from_archive(directory, columnar=columnar))
        service.results()
        best = min(best, time.perf_counter() - started)
    return best


def test_columnar_vs_object_day_scan(paper_archive, tmp_path_factory):
    base = tmp_path_factory.mktemp("bench-detect-formats")
    source = ArchiveReader(paper_archive)
    records = list(source.iter_days())
    num_days = len(records)
    total_rows = sum(len(record.rows) for record in records)

    directories = {}
    for format in ("v1", "v2"):
        directory = base / format
        writer = ArchiveWriter(directory, format=format)
        reencode_archive(source, writer, records=records)
        directories[format] = str(directory)

    # The two scan paths must be indistinguishable before they are
    # comparable — detections and full StudyResults, on both formats.
    for directory in directories.values():
        object_detections = list(
            detections_from_archive(directory, columnar=False)
        )
        columnar_detections = list(
            detections_from_archive(directory, columnar=True)
        )
        assert columnar_detections == object_detections
        object_service = MoasService()
        object_service.feed(object_detections)
        columnar_service = MoasService()
        columnar_service.feed(columnar_detections)
        assert columnar_service.results() == object_service.results()

    timings: dict[str, float] = {}
    for format, directory in directories.items():
        timings[f"{format}_object_scan_seconds"] = _time_scan(
            directory, columnar=False
        )
        timings[f"{format}_columnar_scan_seconds"] = _time_scan(
            directory, columnar=True
        )
        timings[f"{format}_object_analyze_seconds"] = _time_analyze(
            directory, columnar=False
        )
        timings[f"{format}_columnar_analyze_seconds"] = _time_analyze(
            directory, columnar=True
        )

    speedups = {
        f"{format}_{operation}_speedup": round(
            timings[f"{format}_object_{operation}_seconds"]
            / timings[f"{format}_columnar_{operation}_seconds"],
            3,
        )
        for format in ("v1", "v2")
        for operation in ("scan", "analyze")
    }
    columnar_scan = timings["v2_columnar_scan_seconds"]
    payload = {
        "num_days": num_days,
        "total_rows": total_rows,
        "passes": PASSES,
        "min_v2_scan_speedup": MIN_SCAN_SPEEDUP,
        "v2_columnar_days_per_second": round(num_days / columnar_scan, 1),
        "v2_columnar_rows_per_second": round(total_rows / columnar_scan, 1),
        **speedups,
        **{key: round(value, 4) for key, value in timings.items()},
    }
    DETECT_OUT_PATH.write_text(json.dumps(payload, indent=2))
    print(
        f"\n[detect] {num_days} days, {total_rows} rows: "
        f"v2 scan obj {timings['v2_object_scan_seconds']:.3f}s / "
        f"col {columnar_scan:.3f}s "
        f"({speedups['v2_scan_speedup']:.1f}x, "
        f"{payload['v2_columnar_days_per_second']:,.0f} days/s), "
        f"v2 analyze {speedups['v2_analyze_speedup']:.1f}x, "
        f"v1 scan {speedups['v1_scan_speedup']:.1f}x; "
        f"payload -> {DETECT_OUT_PATH}"
    )

    # The acceptance bar: the columnar v2 scan must beat the object
    # path by the pinned factor (numbers are recorded above either way).
    assert speedups["v2_scan_speedup"] >= MIN_SCAN_SPEEDUP, (
        f"columnar v2 scan only {speedups['v2_scan_speedup']:.2f}x "
        f"faster than the object path (floor {MIN_SCAN_SPEEDUP}x)"
    )
