"""EVALUATION — verdict-engine quality on the canned incident suite.

Generates a fully-observed 100-day world carrying the canned incident
script (one labeled incident of every kind), runs ``evaluate`` serially
and in parallel, and gates on attribution quality:

- serial and ``--workers 2`` scoring must be identical (the engine's
  core invariant extended to verdicts);
- every injected incident kind must be detected at least once;
- aggregate (micro) F1 over the incident kinds must not regress below
  the pinned floor — the canary for anyone "improving" a heuristic.

The full scoring payload is written to ``BENCH_evaluation.json``
(override with ``REPRO_BENCH_EVAL_OUT``) so CI publishes the
per-kind precision/recall trajectory run over run.  The floor is
``REPRO_BENCH_MIN_F1`` (default 0.6; the canned suite scores ~0.75 —
headroom for stochastic world-to-world variation, not for regressions).
"""

import datetime
import json
import os
import time
from pathlib import Path

from repro.api.service import MoasService
from repro.scenario.incidents import IncidentKind, IncidentScript
from repro.scenario.world import ScenarioConfig, simulate_study
from repro.util.dates import StudyCalendar

#: The suite is a fixed-size workload (quality gate, not a scale
#: benchmark), so it does not follow REPRO_BENCH_SCALE: the incident
#: mix needs a world big enough to realize every kind.
EVAL_SCALE = float(os.environ.get("REPRO_BENCH_EVAL_SCALE", "0.02"))
MIN_F1 = float(os.environ.get("REPRO_BENCH_MIN_F1", "0.6"))
OUT_PATH = Path(
    os.environ.get("REPRO_BENCH_EVAL_OUT", "BENCH_evaluation.json")
)

CALENDAR = StudyCalendar(
    datetime.date(1997, 11, 8), datetime.date(1998, 2, 15)
)  # 100 days


def test_canned_suite_attribution_quality(tmp_path_factory):
    directory = tmp_path_factory.mktemp("bench-evaluation") / "archive"
    config = ScenarioConfig(
        scale=EVAL_SCALE,
        calendar=CALENDAR,
        paper_archive_gaps=False,
        incidents=IncidentScript.canned(CALENDAR.num_days),
    )
    summary = simulate_study(directory, config)
    assert summary["incidents_unrealized"] == 0, (
        "canned suite did not fully realize; raise REPRO_BENCH_EVAL_SCALE"
    )

    started = time.perf_counter()
    serial = MoasService().evaluate(directory)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = MoasService(workers=2, shards=2).evaluate(directory)
    parallel_seconds = time.perf_counter() - started
    assert serial.result.to_dict() == parallel.result.to_dict(), (
        "parallel evaluation diverged from serial"
    )

    result = serial.result
    payload = {
        "scale": EVAL_SCALE,
        "days": CALENDAR.num_days,
        "incidents_injected": summary["incidents_injected"],
        "min_f1_floor": MIN_F1,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        **result.to_dict(),
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2))
    print(
        f"\n[evaluation] micro F1 {result.micro_f1:.3f} "
        f"(floor {MIN_F1}), macro F1 {result.macro_f1:.3f}, "
        f"{result.injected_detected}/{result.num_injected} injected "
        f"incidents detected; payload -> {OUT_PATH}"
    )

    # Every injected kind detected at least once (the acceptance bar).
    for kind in IncidentKind:
        detected, injected = result.injected_coverage.get(
            kind.value, (0, 0)
        )
        assert injected > 0, f"{kind.value} missing from the canned suite"
        assert detected >= 1, (
            f"{kind.value}: 0/{injected} injected incidents detected"
        )

    assert result.micro_f1 >= MIN_F1, (
        f"aggregate F1 {result.micro_f1:.3f} regressed below the "
        f"pinned floor {MIN_F1}"
    )
