"""FIG3 — histogram of conflict durations (log scale).

Paper: heavily skewed; 13 730 one-observation conflicts (11 358 from
the 1998-04-07 fault); 1 002 conflicts over 300 days; maximum duration
1 246 of a possible 1 279; ~1 326 conflicts ongoing at study end.

The benchmark times episode aggregation + histogram construction and
asserts the skew, the heavy tail, the near-window maximum and the
ongoing population.
"""

from benchmarks.conftest import scaled, within_band
from repro.analysis.figures import figure3_ascii
from repro.core.stats import duration_histogram
from repro.scenario.calibration import PAPER


def test_fig3_duration_histogram(benchmark, results):
    histogram = benchmark(
        duration_histogram, list(results.episodes.values())
    )

    # One-observation conflicts dominate the histogram's head.
    assert within_band(
        results.one_time_conflicts, PAPER.one_day_conflicts
    ), (
        f"one-time {results.one_time_conflicts} vs scaled "
        f"{scaled(PAPER.one_day_conflicts):.0f}"
    )
    assert histogram[1] == results.one_time_conflicts
    assert histogram[1] == max(histogram.values())

    # Monotone-ish decay: the head outweighs the mid-range by orders.
    mid_mass = sum(
        count for duration, count in histogram.items() if 50 <= duration < 100
    )
    assert histogram[1] > 3 * max(mid_mass, 1)

    # Heavy tail: conflicts beyond 300 days at the scaled magnitude.
    assert within_band(
        results.long_lived_conflicts, PAPER.conflicts_over_300_days
    )

    # Maximum duration close to (but short of) the 1279-day window.
    assert 0.85 * PAPER.max_duration_days <= results.max_duration <= 1279

    # Ongoing population at study end.
    assert within_band(results.ongoing_conflicts, PAPER.ongoing_at_end)

    print()
    print(figure3_ascii(results))
    print(
        f"[fig3] one-time={results.one_time_conflicts}, "
        f">300d={results.long_lived_conflicts}, "
        f"max={results.max_duration} (paper {PAPER.max_duration_days}), "
        f"ongoing={results.ongoing_conflicts}"
    )
