"""SUBPFX — sub-prefix anomaly detection (extension benchmark).

Completes the fault taxonomy of Section VI-E: same-prefix MOAS plus
de-aggregation-style sub-prefix announcements (the 1997 AS 7007 shape).
The benchmark builds a realistic table with injected de-aggregation,
times trie-based detection, and asserts exact recovery of the injected
anomalies with zero false positives on legitimate own-block splits.
"""

import datetime

import pytest

from repro.core.subprefix import detect_subprefix_anomalies
from repro.netbase.aspath import ASPath
from repro.netbase.prefix import Prefix
from repro.netbase.rib import PeerId, RibSnapshot, Route
from repro.util.rng import RngStreams

NUM_BLOCKS = 3_000
NUM_HIJACKED = 40
FAULTY_ASN = 7007


@pytest.fixture(scope="module")
def snapshot():
    rng = RngStreams(3).python("subpfx")
    peer = PeerId(asn=701)
    routes = []
    # Legitimate /16 blocks, some split by their own owners (benign).
    for index in range(NUM_BLOCKS):
        owner = 1000 + index % 2500
        block = Prefix(
            ((index % 200 + 20) << 24) | ((index // 200) << 16),
            16,
            strict=False,
        )
        routes.append(
            Route(block, ASPath.from_sequence([701, 42, owner]), peer)
        )
        if rng.random() < 0.1:  # benign own-block more-specific
            sub = Prefix(block.network, 17, strict=False)
            routes.append(
                Route(sub, ASPath.from_sequence([701, 42, owner]), peer)
            )
    # Injected de-aggregation: AS 7007 announces /24s inside foreign /16s.
    hijacked = rng.sample(range(NUM_BLOCKS), k=NUM_HIJACKED)
    expected = set()
    for index in hijacked:
        block = Prefix(((index % 200 + 20) << 24) | ((index // 200) << 16), 16, strict=False)
        fragment = Prefix(block.network | (5 << 8), 24, strict=False)
        routes.append(
            Route(
                fragment, ASPath.from_sequence([701, 1239, FAULTY_ASN]), peer
            )
        )
        expected.add(fragment)
    return RibSnapshot.from_routes(datetime.date(1997, 4, 25), routes), expected


def test_subprefix_detection(benchmark, snapshot):
    table, expected = snapshot

    report = benchmark(detect_subprefix_anomalies, table)

    flagged = {
        anomaly.prefix
        for anomaly in report.anomalies
        if FAULTY_ASN in anomaly.origins
    }
    assert flagged == expected, (
        f"missed {len(expected - flagged)}, "
        f"spurious {len(flagged - expected)}"
    )
    # Benign own-origin splits never flagged.
    for anomaly in report.anomalies:
        assert anomaly.origins != anomaly.covering_origins

    prefixes_per_second = table.num_prefixes() / benchmark.stats.stats.mean
    print(
        f"\n[subpfx] {table.num_prefixes()} prefixes scanned at "
        f"{prefixes_per_second:,.0f} prefixes/s; "
        f"{len(flagged)}/{len(expected)} injected anomalies recovered"
    )
    assert prefixes_per_second > 10_000
