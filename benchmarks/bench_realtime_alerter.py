"""RT — streaming alerter latency/throughput (extension benchmark).

The paper's Section VII motivates real-time identification of invalid
conflicts.  This benchmark streams a synthetic BGP4MP update mix with
injected hijacks through the streaming detector and measures update
throughput, asserting every injected hijack raises exactly one
MOAS_STARTED alert.
"""

import pytest

from repro.core.realtime import AlertKind, StreamingMoasDetector
from repro.mrt.attributes import PathAttributes
from repro.mrt.records import Bgp4mpMessage
from repro.netbase.aspath import ASPath
from repro.netbase.prefix import Prefix
from repro.util.rng import RngStreams

NUM_UPDATES = 20_000
NUM_PREFIXES = 2_000
NUM_HIJACKS = 25


def build_stream():
    rng = RngStreams(11).python("rt-bench")
    prefixes = [
        Prefix((30 << 24) + (index << 8), 24, strict=False)
        for index in range(NUM_PREFIXES)
    ]
    peers = (701, 1239, 3561, 7018)
    updates = []
    # Churny but origin-stable background noise.
    for index in range(NUM_UPDATES):
        prefix = prefixes[index % NUM_PREFIXES]
        peer = peers[index % len(peers)]
        origin = 1000 + (index % NUM_PREFIXES) % 3000
        transit = rng.choice([42, 43, 44])
        updates.append(
            Bgp4mpMessage(
                peer_asn=peer,
                local_asn=6447,
                interface_index=0,
                peer_address=1,
                local_address=2,
                attributes=PathAttributes(
                    as_path=ASPath.from_sequence([peer, transit, origin])
                ),
                announced=(prefix,),
            )
        )
    # Injected hijacks: a different origin for an established prefix,
    # announced by a peer other than the prefix's usual announcer (so
    # the legitimate route stays up — a true MOAS, not a route change).
    hijacked = rng.sample(range(NUM_PREFIXES), k=NUM_HIJACKS)
    for index in hijacked:
        prefix = prefixes[index]
        hijack_peer = peers[(index + 1) % len(peers)]
        updates.append(
            Bgp4mpMessage(
                peer_asn=hijack_peer,
                local_asn=6447,
                interface_index=0,
                peer_address=1,
                local_address=2,
                attributes=PathAttributes(
                    as_path=ASPath.from_sequence([hijack_peer, 65100])
                ),
                announced=(prefix,),
            )
        )
    return updates


@pytest.fixture(scope="module")
def stream():
    return build_stream()


def test_realtime_alerter(benchmark, stream):
    def run():
        detector = StreamingMoasDetector()
        alerts = []
        for message in stream:
            alerts.extend(detector.process_update(message))
        return detector, alerts

    detector, alerts = benchmark(run)

    started = [a for a in alerts if a.kind is AlertKind.MOAS_STARTED]
    assert len(started) == NUM_HIJACKS
    for alert in started:
        assert alert.changed_origin == 65100
    assert len(detector.current_conflicts()) == NUM_HIJACKS

    throughput = len(stream) / benchmark.stats.stats.mean
    print(f"\n[rt] {throughput:,.0f} updates/s, {len(alerts)} alerts")
    assert throughput > 50_000
