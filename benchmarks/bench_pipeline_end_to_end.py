"""PIPELINE — end-to-end study cost, and the Huston-counter baseline.

Times (a) the full pipeline over the 1279-day archive — the whole-paper
computation — (b) the Section II related-work baseline that only
counts conflicts per day, and (c) the parallel engine against the
serial path, recording the serial/parallel wall-clock pair in
``BENCH_parallel.json`` so the perf trajectory is tracked run over run.
The baseline must be cheaper, and the pipeline must add everything the
baseline lacks (episodes, durations, classes, case studies): exactly
the gap the paper fills over Huston's table statistics.

Environment knobs for the parallel leg: ``REPRO_BENCH_WORKERS`` (pool
size, default 4), ``REPRO_BENCH_OUT`` (artifact path, default
``BENCH_parallel.json`` in the working directory) and
``REPRO_BENCH_MIN_SPEEDUP`` (default 1.5; the speedup assertion only
arms when the machine actually has that many CPUs to give).
"""

import json
import os
import time
from pathlib import Path

from repro.analysis.baselines import HustonCounter
from repro.analysis.pipeline import StudyPipeline
from repro.api.sources import ArchiveSource


def test_full_pipeline(benchmark, detections):
    results = benchmark.pedantic(
        lambda: StudyPipeline().run(iter(detections)),
        rounds=3,
        iterations=1,
    )
    assert results.total_days == len(detections)
    assert results.total_conflicts > 0
    assert results.duration_expectations
    assert results.case_studies
    print(
        f"\n[pipeline] {results.total_days} days analyzed in "
        f"{benchmark.stats.stats.mean:.2f} s "
        f"({results.total_days / benchmark.stats.stats.mean:,.0f} days/s)"
    )


def test_parallel_pipeline(benchmark, paper_archive):
    """Serial vs parallel end-to-end study over the same archive.

    Both paths do the whole job — decode the archive, detect, fold —
    and must produce identical results; the parallel path fans
    detection out over ``REPRO_BENCH_WORKERS`` processes.
    """
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))
    source = ArchiveSource(paper_archive)

    serial_seconds = []
    for _round in range(2):
        started = time.perf_counter()
        serial_results = StudyPipeline().run(source)
        serial_seconds.append(time.perf_counter() - started)
    serial_best = min(serial_seconds)

    parallel_results = benchmark.pedantic(
        lambda: StudyPipeline().run(source, workers=workers),
        rounds=3,
        iterations=1,
    )
    parallel_best = benchmark.stats.stats.min

    assert parallel_results == serial_results  # the engine's invariant
    speedup = serial_best / parallel_best
    payload = {
        # Mirrors benchmarks/conftest.py SCALE without importing the
        # conftest as a module (repo root is not always on sys.path).
        "scale": float(os.environ.get("REPRO_BENCH_SCALE", "0.05")),
        "days": serial_results.total_days,
        "workers": workers,
        "cpus": os.cpu_count(),
        "serial_seconds": round(serial_best, 4),
        "parallel_seconds": round(parallel_best, 4),
        "speedup": round(speedup, 3),
    }
    out = Path(os.environ.get("REPRO_BENCH_OUT", "BENCH_parallel.json"))
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\n[parallel] serial {serial_best:.2f} s vs "
        f"workers={workers} {parallel_best:.2f} s "
        f"-> {speedup:.2f}x (recorded in {out})"
    )
    minimum = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "1.5"))
    if (os.cpu_count() or 1) >= workers:
        assert speedup >= minimum, (
            f"parallel speedup {speedup:.2f}x below {minimum}x "
            f"with {workers} workers on {os.cpu_count()} CPUs"
        )


def test_huston_baseline(benchmark, detections):
    series = benchmark.pedantic(
        lambda: HustonCounter().run(iter(detections)),
        rounds=3,
        iterations=1,
    )
    assert len(series) == len(detections)
    # The baseline yields the daily count series and nothing else —
    # no durations, no classes, no case studies.
    print(
        f"\n[baseline] bare counting: {benchmark.stats.stats.mean:.3f} s "
        "(no episodes/durations/classification — the gap the paper fills)"
    )
