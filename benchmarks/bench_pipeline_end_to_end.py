"""PIPELINE — end-to-end study cost, and the Huston-counter baseline.

Times (a) the full pipeline over the 1279-day archive — the whole-paper
computation — and (b) the Section II related-work baseline that only
counts conflicts per day.  The baseline must be cheaper, and the
pipeline must add everything the baseline lacks (episodes, durations,
classes, case studies): exactly the gap the paper fills over Huston's
table statistics.
"""

from repro.analysis.baselines import HustonCounter
from repro.analysis.pipeline import StudyPipeline


def test_full_pipeline(benchmark, detections):
    results = benchmark.pedantic(
        lambda: StudyPipeline().run(iter(detections)),
        rounds=3,
        iterations=1,
    )
    assert results.total_days == len(detections)
    assert results.total_conflicts > 0
    assert results.duration_expectations
    assert results.case_studies
    print(
        f"\n[pipeline] {results.total_days} days analyzed in "
        f"{benchmark.stats.stats.mean:.2f} s "
        f"({results.total_days / benchmark.stats.stats.mean:,.0f} days/s)"
    )


def test_huston_baseline(benchmark, detections):
    series = benchmark.pedantic(
        lambda: HustonCounter().run(iter(detections)),
        rounds=3,
        iterations=1,
    )
    assert len(series) == len(detections)
    # The baseline yields the daily count series and nothing else —
    # no durations, no classes, no case studies.
    print(
        f"\n[baseline] bare counting: {benchmark.stats.stats.mean:.3f} s "
        "(no episodes/durations/classification — the gap the paper fills)"
    )
