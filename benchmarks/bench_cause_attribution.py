"""CAUSES — Section VI's cause attribution case studies.

Paper facts reproduced and asserted here:

- 1998-04-07: AS 8584 involved in 11 357 of 11 842 conflicts (96%),
- 2001-04-10: sequence (AS 3561, AS 15412) in 5 532 of 6 627 (83%),
- 30 exchange-point prefixes among all conflicts, every one of them
  lasting "most or all of the observation period",
- ~12 AS_SET-terminated prefixes excluded from the analysis.

The benchmark times the cause-attribution pass over the final episode
table (exchange-point + private-AS identification).
"""

import datetime

from benchmarks.conftest import SCALE, scaled
from repro.core.causes import exchange_point_episodes, private_asn_episodes
from repro.scenario.calibration import PAPER


def attribute(episodes):
    return (
        exchange_point_episodes(episodes),
        private_asn_episodes(episodes),
    )


def test_cause_attribution(benchmark, results):
    ixp_episodes, private_episodes = benchmark(
        attribute, results.episodes
    )

    # Exchange points: few, and essentially whole-study conflicts.
    expected_ixps = max(2, round(PAPER.exchange_point_prefixes * SCALE))
    assert len(ixp_episodes) == expected_ixps
    for episode in ixp_episodes:
        assert episode.days_observed > 0.85 * results.total_days, (
            f"IXP episode {episode.prefix} lasted only "
            f"{episode.days_observed} of {results.total_days} days"
        )

    # AS-set prefixes excluded, at the paper's (scaled) magnitude.
    assert results.as_set_excluded_max >= max(
        2, round(PAPER.as_set_prefixes * SCALE)
    )

    # The 1998 fault: culprit and involvement fraction.
    spike_1998 = [
        case
        for case in results.case_studies
        if case.report.day == PAPER.spike_1998_date
    ]
    assert spike_1998, "1998-04-07 spike not detected"
    report = spike_1998[0].report
    assert report.culprit_asn == PAPER.spike_1998_faulty_asn
    paper_fraction = (
        PAPER.spike_1998_involving_fault / PAPER.spike_1998_total
    )
    assert report.involvement > 0.8 * paper_fraction

    # The 2001 fault: the (3561, 15412) sequence carries the spike.
    spike_2001 = [
        case
        for case in results.case_studies
        if PAPER.spike_2001_start
        <= case.report.day
        <= PAPER.spike_2001_start + datetime.timedelta(days=5)
    ]
    assert spike_2001, "2001-04 spike not detected"
    case = spike_2001[0]
    assert case.report.culprit_asn == PAPER.spike_2001_faulty_asn
    assert case.upstream_asn == PAPER.spike_2001_upstream_asn
    paper_seq_fraction = (
        PAPER.spike_2001_apr10_involving / PAPER.spike_2001_apr10_total
    )
    measured_fraction = case.sequence_involved / max(case.sequence_total, 1)
    assert measured_fraction > 0.8 * paper_seq_fraction

    print()
    print(
        f"[causes] exchange points: {len(ixp_episodes)} "
        f"(paper {PAPER.exchange_point_prefixes} -> scaled "
        f"{scaled(PAPER.exchange_point_prefixes):.0f}), all long-lived"
    )
    print(
        f"[causes] 1998 fault: AS {report.culprit_asn} in "
        f"{report.culprit_involved}/{report.total_conflicts} "
        f"({report.involvement:.0%}; paper {paper_fraction:.0%})"
    )
    print(
        f"[causes] 2001 fault: ({case.upstream_asn}, "
        f"{case.report.culprit_asn}) in {case.sequence_involved}/"
        f"{case.sequence_total} ({measured_fraction:.0%}; paper "
        f"{paper_seq_fraction:.0%})"
    )
    print(f"[causes] private-AS leaks observed: {len(private_episodes)}")
