"""VALIDATOR — multi-signal validation vs the duration-only heuristic.

Section VII says MOAS data alone cannot accurately separate faults from
policy, and announces work on "identifying invalid conflicts with a
high degree of certainty".  This benchmark scores our implementation of
that direction — the multi-signal :class:`ConflictValidator` — against
ground truth, next to the best duration-only threshold from the VI-F
sweep.  The requirement: strictly higher accuracy than duration alone.
"""

from pathlib import Path

import pytest

from repro.core.causes import score_duration_heuristic
from repro.core.validator import ConflictValidator
from repro.netbase.prefix import Prefix
from repro.scenario.archive import ArchiveReader


@pytest.fixture(scope="module")
def truth_labels(paper_archive):
    reader = ArchiveReader(Path(paper_archive))
    labels: dict[Prefix, bool] = {}
    ambiguous: set[Prefix] = set()
    for entry in reader.ground_truth():
        prefix = Prefix.parse(entry["prefix"])
        valid = bool(entry["valid"])
        if prefix in labels and labels[prefix] != valid:
            ambiguous.add(prefix)
        labels[prefix] = valid
    for prefix in ambiguous:
        del labels[prefix]
    return labels


def score_validator(validator, episodes, truth):
    correct = total = 0
    for prefix, episode in episodes.items():
        label = truth.get(prefix)
        if label is None:
            continue
        verdict = validator.validate(episode)
        total += 1
        if verdict.valid == label:
            correct += 1
    return correct / max(total, 1), total


def test_validator_beats_duration_heuristic(benchmark, results, truth_labels):
    validator = ConflictValidator.from_case_studies(results.case_studies)

    accuracy, labeled = benchmark(
        score_validator, validator, results.episodes, truth_labels
    )

    # Baseline: the best duration-only threshold.
    episodes = list(results.episodes.values())
    duration_best = max(
        score_duration_heuristic(
            episodes, truth_labels, threshold_days=threshold
        ).accuracy
        for threshold in (1, 3, 9, 29, 89)
    )

    assert labeled > 100, "too few labeled episodes to score"
    assert accuracy > duration_best, (
        f"validator {accuracy:.3f} did not beat duration-only "
        f"{duration_best:.3f}"
    )
    # "High degree of certainty": solidly accurate overall.
    assert accuracy > 0.85

    print(
        f"\n[validator] multi-signal accuracy {accuracy:.3f} over "
        f"{labeled} labeled conflicts vs duration-only best "
        f"{duration_best:.3f}"
    )


def test_validator_confidence_is_calibrated(benchmark, results, truth_labels):
    """High-confidence verdicts must be more accurate than low ones."""
    validator = ConflictValidator.from_case_studies(results.case_studies)
    verdicts = benchmark(validator.validate_all, results.episodes)
    buckets = {"high": [0, 0], "low": [0, 0]}  # [correct, total]
    for prefix, verdict in verdicts.items():
        label = truth_labels.get(prefix)
        if label is None:
            continue
        bucket = buckets["high" if verdict.confidence >= 0.75 else "low"]
        bucket[1] += 1
        bucket[0] += verdict.valid == label
    high_acc = buckets["high"][0] / max(buckets["high"][1], 1)
    low_acc = buckets["low"][0] / max(buckets["low"][1], 1)
    assert buckets["high"][1] > 20
    assert high_acc >= low_acc - 0.02  # calibration, with slack
    print(
        f"\n[validator] confidence calibration: high {high_acc:.3f} "
        f"(n={buckets['high'][1]}), low {low_acc:.3f} "
        f"(n={buckets['low'][1]})"
    )
