"""FIG4 — expectation of conflict duration under minimum-duration filters.

Paper table: E[duration | duration > k] for k in {0, 1, 9, 29, 89} days
= 30.9, 47.7, 107.5, 175.3, 281.8.

Durations are *scale-free* (they are per-conflict day counts, not
totals), so the measured expectations are compared to the paper's
values directly — within a factor-of-two band, with the exact monotone
structure of the table.
"""

from repro.analysis.report import figure4_table
from repro.core.stats import duration_expectations
from repro.scenario.calibration import PAPER


def test_fig4_duration_expectation(benchmark, results):
    expectations = benchmark(
        duration_expectations, list(results.episodes.values())
    )

    for threshold, paper_value in PAPER.duration_expectations.items():
        assert threshold in expectations, f"no conflicts beyond {threshold}d"
        measured = expectations[threshold]
        assert 0.5 * paper_value <= measured <= 2.0 * paper_value, (
            f">{threshold}d: measured {measured:.1f} vs paper "
            f"{paper_value}"
        )

    # The table's structure: expectations strictly increase with the
    # filter threshold.
    ordered = [expectations[k] for k in sorted(expectations)]
    assert ordered == sorted(ordered)
    assert ordered[0] < ordered[-1] / 3  # wide dynamic range, as in paper

    print()
    print(figure4_table(results))
    for threshold in sorted(PAPER.duration_expectations):
        print(
            f"[fig4] >{threshold}d: measured "
            f"{expectations[threshold]:.1f} vs paper "
            f"{PAPER.duration_expectations[threshold]}"
        )
