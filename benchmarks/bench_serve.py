"""SERVE — query latency and throughput of the live daemon.

Boots the serve daemon over a canned-incident world, holds it in its
ingestion phase (throttled fold loop), and drives N concurrent clients
through the figure endpoints — the paper-repro equivalent of a
monitoring dashboard fan-out hitting a feed that is still ingesting.

Gates (env-tunable; generous defaults so CI variance never flakes,
order-of-magnitude regressions always fail):

- sustained request rate across all clients >= ``REPRO_BENCH_SERVE_MIN_RPS``
  (default 50 req/s);
- p99 latency <= ``REPRO_BENCH_SERVE_MAX_P99_MS`` (default 2000 ms);
- zero failed requests.

The measured latency distribution (p50/p90/p99, req/s, client count)
is written to ``BENCH_serve.json`` (override with
``REPRO_BENCH_SERVE_OUT``) so CI publishes the serving-performance
trajectory run over run.
"""

import datetime
import json
import os
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.api.serve import BackgroundServer, ServeConfig
from repro.scenario.incidents import IncidentScript
from repro.scenario.world import ScenarioConfig, simulate_study
from repro.util.dates import StudyCalendar

SCALE = float(os.environ.get("REPRO_BENCH_SERVE_SCALE", "0.02"))
CLIENTS = int(os.environ.get("REPRO_BENCH_SERVE_CLIENTS", "8"))
DURATION = float(os.environ.get("REPRO_BENCH_SERVE_SECONDS", "6"))
MIN_RPS = float(os.environ.get("REPRO_BENCH_SERVE_MIN_RPS", "50"))
MAX_P99_MS = float(
    os.environ.get("REPRO_BENCH_SERVE_MAX_P99_MS", "2000")
)
OUT_PATH = Path(
    os.environ.get("REPRO_BENCH_SERVE_OUT", "BENCH_serve.json")
)

CALENDAR = StudyCalendar(
    datetime.date(1997, 11, 8), datetime.date(1998, 2, 15)
)  # 100 days

#: The request mix: every response format, light and heavy figures.
TARGETS = (
    "/v1/figure/figure1?format=csv",
    "/v1/figure/figure2?format=ascii",
    "/v1/figure/summary?format=json",
    "/v1/figure/episodes?format=json",
    "/v1/status",
)


def percentile(sorted_values: list[float], fraction: float) -> float:
    """The ``fraction`` percentile of an ascending-sorted sample."""
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1,
        int(fraction * (len(sorted_values) - 1) + 0.5),
    )
    return sorted_values[index]


def test_serve_latency_under_concurrent_load(tmp_path_factory):
    directory = tmp_path_factory.mktemp("bench-serve") / "archive"
    simulate_study(
        directory,
        ScenarioConfig(
            scale=SCALE,
            calendar=CALENDAR,
            paper_archive_gaps=False,
            incidents=IncidentScript.canned(CALENDAR.num_days),
        ),
    )

    # Pace ingestion so the measurement window overlaps live folding:
    # 100 days spread across the whole run keeps the daemon in its
    # "readers racing the writer" regime the entire time.
    config = ServeConfig(
        archive=directory,
        port=0,
        ingest_delay=max(0.01, DURATION / CALENDAR.num_days),
    )
    latencies_ms: list[float] = []
    failures: list[str] = []
    lock = threading.Lock()
    stop = threading.Event()

    def client(index: int, url: str) -> None:
        count = 0
        while not stop.is_set():
            target = TARGETS[(index + count) % len(TARGETS)]
            count += 1
            started = time.perf_counter()
            try:
                with urllib.request.urlopen(
                    url + target, timeout=30
                ) as response:
                    response.read()
                    status = response.status
            except urllib.error.HTTPError as error:
                if error.code == 503:
                    continue  # warm-up: nothing ingested yet
                with lock:
                    failures.append(f"{target}: HTTP {error.code}")
                continue
            except Exception as error:  # noqa: BLE001 — recorded below
                with lock:
                    failures.append(f"{target}: {error}")
                continue
            elapsed_ms = (time.perf_counter() - started) * 1000
            with lock:
                if status == 200:
                    latencies_ms.append(elapsed_ms)
                else:
                    failures.append(f"{target}: HTTP {status}")

    with BackgroundServer(config) as url:
        threads = [
            threading.Thread(target=client, args=(index, url))
            for index in range(CLIENTS)
        ]
        window_started = time.perf_counter()
        for thread in threads:
            thread.start()
        time.sleep(DURATION)
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
        window_seconds = time.perf_counter() - window_started
        status_payload = json.loads(
            urllib.request.urlopen(url + "/v1/status", timeout=30).read()
        )

    ordered = sorted(latencies_ms)
    requests_per_second = len(ordered) / window_seconds
    payload = {
        "scale": SCALE,
        "days": CALENDAR.num_days,
        "clients": CLIENTS,
        "window_seconds": round(window_seconds, 3),
        "requests": len(ordered),
        "requests_per_second": round(requests_per_second, 1),
        "latency_ms": {
            "p50": round(percentile(ordered, 0.50), 2),
            "p90": round(percentile(ordered, 0.90), 2),
            "p99": round(percentile(ordered, 0.99), 2),
            "max": round(ordered[-1], 2) if ordered else 0.0,
        },
        "days_fed_at_end": status_payload["days_fed"],
        "alerts_emitted": status_payload["alerts"]["emitted"],
        "failures": len(failures),
        "floors": {
            "min_requests_per_second": MIN_RPS,
            "max_p99_ms": MAX_P99_MS,
        },
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2))
    print(
        f"\n[serve] {CLIENTS} clients, {len(ordered)} requests in "
        f"{window_seconds:.1f}s = {requests_per_second:.0f} req/s; "
        f"p50 {payload['latency_ms']['p50']}ms, "
        f"p99 {payload['latency_ms']['p99']}ms "
        f"(floors: >={MIN_RPS} req/s, p99 <= {MAX_P99_MS}ms); "
        f"payload -> {OUT_PATH}"
    )

    assert not failures, f"{len(failures)} failed requests: {failures[:5]}"
    assert len(ordered) > 0, "no successful requests measured"
    assert requests_per_second >= MIN_RPS, (
        f"sustained rate {requests_per_second:.1f} req/s below the "
        f"pinned floor {MIN_RPS}"
    )
    p99 = percentile(ordered, 0.99)
    assert p99 <= MAX_P99_MS, (
        f"p99 latency {p99:.1f} ms above the pinned ceiling "
        f"{MAX_P99_MS} ms"
    )
