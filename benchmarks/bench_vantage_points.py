"""VANTAGE — Section III's multi-vantage observation.

Paper: "the Oregon Route Views server observed 1364 MOAS conflicts,
but three other individual ISPs observed 30, 12, and 228 MOAS conflicts
during the same period."

The benchmark builds one simulated day, times the per-vantage adj-RIB-in
analysis, and asserts the structural findings: the multi-peer collector
sees (much) more than any single AS, and bigger ASes see more than
stubs.
"""

import pytest

from repro.analysis.vantage import VantageAnalyzer
from repro.scenario.routing import CollectorRouting
from repro.scenario.world import ScenarioConfig, ScenarioWorld
from repro.topology.model import Tier


@pytest.fixture(scope="module")
def vantage_setup():
    """A world with an active standing conflict population at day 0."""
    world = ScenarioWorld(ScenarioConfig(scale=0.05))
    peers = list(world.collector.active_peers(0))
    events = world.generator.initial_events(peers)
    conflicts = [
        (event.prefix, list(event.origins))
        for event in events
        if event.pivot is None
    ]
    routing = world.routing
    collector_visible = [
        routing.conflict_visible(origins, peers)
        for _prefix, origins in conflicts
    ]
    return world, conflicts, collector_visible


def test_vantage_points(benchmark, vantage_setup):
    world, conflicts, collector_visible = vantage_setup
    analyzer = VantageAnalyzer(world.model.graph)

    tier1 = world.model.ases_in_tier(Tier.TIER1)[:2]
    transits = world.model.ases_in_tier(Tier.TRANSIT)[:2]
    stubs = [
        asn
        for asn in world.model.ases_in_tier(Tier.STUB)
        if len(world.model.graph.providers_of(asn)) == 1
    ][:2]
    vantages = tier1 + transits + stubs

    comparison = benchmark(
        analyzer.compare, conflicts, collector_visible, vantages
    )

    # The multi-peer collector sees more than every single vantage.
    for asn, seen in comparison.per_as_conflicts.items():
        assert comparison.collector_conflicts >= seen, (
            f"AS {asn} ({seen}) out-saw the collector "
            f"({comparison.collector_conflicts})"
        )

    # Single-homed stubs see almost nothing (the paper's "12").
    for stub in stubs:
        assert (
            comparison.per_as_conflicts[stub]
            <= 0.3 * max(comparison.collector_conflicts, 1)
        )

    # Large ASes see more than single-homed stubs on average — the
    # 1364-vs-30/12/228 asymmetry.
    big_view = sum(comparison.per_as_conflicts[asn] for asn in tier1) / len(
        tier1
    )
    stub_view = sum(comparison.per_as_conflicts[asn] for asn in stubs) / len(
        stubs
    )
    assert big_view > stub_view

    print()
    print(
        f"[vantage] collector: {comparison.collector_conflicts} conflicts; "
        f"per-AS: { {asn: count for asn, count in comparison.per_as_conflicts.items()} } "
        "(paper: RouteViews 1364 vs ISPs 30/12/228)"
    )
