"""ROBUST — seed sensitivity of the headline reproduction claims.

A reproduction whose shape claims only hold at one RNG seed is not a
reproduction.  This benchmark regenerates a (short-window, small-scale)
study under several seeds and asserts the paper-shape invariants hold
at every one: the 1998-04-07 spike is the peak with AS 8584 dominant,
/24 dominates the length distribution, durations remain heavy-tailed.
"""

import datetime
import statistics

from repro.api import MoasService
from repro.scenario.calibration import PAPER
from repro.scenario.world import ScenarioConfig, simulate_study
from repro.util.dates import StudyCalendar

SEEDS = (1, 7, 20011108)
CALENDAR = StudyCalendar(
    datetime.date(1998, 3, 1), datetime.date(1998, 5, 31)
)


def run_seed(base_dir, seed):
    directory = base_dir / f"seed-{seed}"
    config = ScenarioConfig(
        scale=0.03, seed=seed, calendar=CALENDAR, paper_archive_gaps=False
    )
    simulate_study(directory, config)
    service = MoasService()
    service.feed(directory)
    return service.results()


def test_seed_robustness(benchmark, tmp_path_factory):
    base_dir = tmp_path_factory.mktemp("seeds")

    def run_all():
        return {seed: run_seed(base_dir / str(seed), seed) for seed in SEEDS}

    all_results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    totals = []
    for seed, results in all_results.items():
        # Spike present and dominated by AS 8584 at every seed.
        assert results.peak_days[0][0] == PAPER.spike_1998_date, (
            f"seed {seed}: peak on {results.peak_days[0][0]}"
        )
        spikes = [
            case
            for case in results.case_studies
            if case.report.day == PAPER.spike_1998_date
        ]
        assert spikes, f"seed {seed}: spike not detected"
        assert spikes[0].report.culprit_asn == PAPER.spike_1998_faulty_asn

        # /24 dominance at every seed.
        for by_length in results.length_distribution.values():
            if sum(by_length.values()) >= 5:
                assert max(by_length, key=by_length.get) == 24

        # Heavy-tailed durations at every seed.
        histogram = results.duration_histogram
        assert histogram[1] == max(histogram.values())

        totals.append(results.total_conflicts)

    # Across-seed variation of the total is modest (same calibration).
    spread = statistics.pstdev(totals) / statistics.fmean(totals)
    assert spread < 0.25, f"total conflicts vary too much: {totals}"

    print(
        f"\n[robust] totals across seeds {dict(zip(SEEDS, totals))}, "
        f"relative spread {spread:.1%}"
    )
