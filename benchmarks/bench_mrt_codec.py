"""PERF-MRT — MRT codec throughput ablation (not a paper figure).

The paper's raw input is years of daily MRT dumps; parsing speed
determines study turnaround.  Times encode and decode of a realistic
TABLE_DUMP_V2 file and asserts a usable floor.
"""

import datetime

import pytest

from repro.mrt.reader import read_rib_snapshot
from repro.mrt.writer import write_rib_snapshot
from repro.netbase.aspath import ASPath
from repro.netbase.prefix import Prefix
from repro.netbase.rib import PeerId, RibSnapshot, Route

NUM_PREFIXES = 20_000


@pytest.fixture(scope="module")
def snapshot():
    peers = [PeerId(asn=asn) for asn in (701, 1239, 3561)]
    routes = []
    for index in range(NUM_PREFIXES):
        prefix = Prefix((20 << 24) + (index << 8), 24, strict=False)
        for peer in peers:
            routes.append(
                Route(
                    prefix,
                    ASPath.from_sequence(
                        [peer.asn, 7018, 1000 + index % 4000]
                    ),
                    peer,
                )
            )
    return RibSnapshot.from_routes(datetime.date(2001, 4, 6), routes)


def test_mrt_write_throughput(benchmark, snapshot, tmp_path):
    out = tmp_path / "bench.mrt"

    def write():
        return write_rib_snapshot(out, snapshot)

    benchmark(write)
    routes_per_second = snapshot.num_routes() / benchmark.stats.stats.mean
    print(
        f"\n[perf-mrt] write: {routes_per_second:,.0f} routes/s "
        f"({out.stat().st_size / 1e6:.1f} MB file)"
    )
    assert routes_per_second > 50_000


def test_mrt_read_throughput(benchmark, snapshot, tmp_path):
    path = write_rib_snapshot(tmp_path / "bench.mrt", snapshot)

    loaded = benchmark(read_rib_snapshot, path)

    assert loaded.num_routes() == snapshot.num_routes()
    routes_per_second = snapshot.num_routes() / benchmark.stats.stats.mean
    print(f"\n[perf-mrt] read: {routes_per_second:,.0f} routes/s")
    # Decode builds full attribute objects per route; the floor is the
    # rate that keeps a 100k-prefix daily dump under a minute.
    assert routes_per_second > 15_000
