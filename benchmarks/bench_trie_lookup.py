"""TRIE — longest-prefix-match micro-benchmark.

The radix trie sits under the BGP engine's forwarding checks and the
analysis layer's structural prefix queries, so its per-bit traversal is
a genuine hot loop.  This bench pins the cost of ``longest_match`` and
``__setitem__`` over a realistic table (a /8 carved into /24s plus a
default route) and asserts a generous absolute floor so a regression of
the inlined bit-walk (e.g. reintroducing per-bit method calls, ~2x
slower) fails loudly while machine-to-machine noise does not.
"""

from repro.netbase.prefix import Prefix
from repro.netbase.trie import PrefixTrie

#: Generous per-operation ceiling (seconds).  The inlined traversal
#: runs in ~1-3 us/op on commodity hardware; the per-bit method-call
#: version it replaced measured ~2x that.
MAX_SECONDS_PER_LOOKUP = 40e-6

NUM_ROUTES = 4096


def _table() -> list[Prefix]:
    routes = [Prefix(0, 0)]
    base = Prefix.parse("10.0.0.0/8").network
    for index in range(NUM_ROUTES):
        network = base | ((index & 0xFFFF) << 8)
        routes.append(Prefix(network, 24, strict=False))
    return routes


def _queries() -> list[Prefix]:
    base = Prefix.parse("10.0.0.0/8").network
    hits = [
        Prefix(base | ((index & 0xFFFF) << 8) | 1, 32, strict=False)
        for index in range(0, NUM_ROUTES, 4)
    ]
    misses = [
        Prefix((11 << 24) | (index << 8), 32, strict=False)
        for index in range(256)
    ]
    return hits + misses


def test_longest_match_throughput(benchmark):
    trie: PrefixTrie[int] = PrefixTrie()
    for position, prefix in enumerate(_table()):
        trie[prefix] = position
    queries = _queries()

    def lookup_all():
        match = None
        for query in queries:
            match = trie.longest_match(query)
        return match

    last = benchmark.pedantic(lookup_all, rounds=5, iterations=3)
    assert last is not None  # misses under 0.0.0.0/0 hit the default
    per_lookup = benchmark.stats.stats.mean / len(queries)
    print(
        f"\n[trie] longest_match: {per_lookup * 1e6:.2f} us/lookup "
        f"({1 / per_lookup:,.0f} lookups/s over {len(trie)} routes)"
    )
    assert per_lookup < MAX_SECONDS_PER_LOOKUP


def test_insert_throughput(benchmark):
    table = _table()

    def build():
        trie: PrefixTrie[int] = PrefixTrie()
        for position, prefix in enumerate(table):
            trie[prefix] = position
        return trie

    trie = benchmark.pedantic(build, rounds=5, iterations=1)
    assert len(trie) == len(table)
    per_insert = benchmark.stats.stats.mean / len(table)
    print(
        f"\n[trie] insert: {per_insert * 1e6:.2f} us/insert "
        f"({len(table)} routes)"
    )
    assert per_insert < MAX_SECONDS_PER_LOOKUP
