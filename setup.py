"""Setup shim for offline environments without the ``wheel`` package.

All metadata lives in pyproject.toml; this file only enables
``python setup.py develop`` where ``pip install -e .`` cannot build a
wheel (no network to fetch build dependencies).
"""

from setuptools import setup

setup()
