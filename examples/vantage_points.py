#!/usr/bin/env python3
"""Why multi-vantage collection matters (paper Section III).

"At a randomly selected time, the Oregon Route Views server observed
1364 MOAS conflicts, but three other individual ISPs observed 30, 12,
and 228 MOAS conflicts during the same period."

This example builds a scaled Internet with an active conflict
population, then measures how many of those conflicts are visible
(a) to the multi-peer collector and (b) from individual ASes of
different sizes — reproducing the ordering above and showing *why*:
a single AS's neighbors mostly agree on one best origin.

Run:  python examples/vantage_points.py [--scale 0.05]
"""

import argparse

from repro.analysis.vantage import VantageAnalyzer
from repro.scenario.world import ScenarioConfig, ScenarioWorld
from repro.topology.model import Tier


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=20011108)
    args = parser.parse_args()

    print(f"building world at scale {args.scale} ...")
    world = ScenarioWorld(ScenarioConfig(scale=args.scale, seed=args.seed))
    peers = list(world.collector.active_peers(0))
    events = world.generator.initial_events(peers)
    conflicts = [
        (event.prefix, list(event.origins))
        for event in events
        if event.pivot is None
    ]
    print(f"standing conflicts in the network: {len(conflicts)}")

    collector_visible = [
        world.routing.conflict_visible(origins, peers)
        for _prefix, origins in conflicts
    ]
    collector_count = sum(collector_visible)

    analyzer = VantageAnalyzer(world.model.graph)
    tier1 = world.model.ases_in_tier(Tier.TIER1)[:2]
    transits = world.model.ases_in_tier(Tier.TRANSIT)[:3]
    stubs = [
        asn
        for asn in world.model.ases_in_tier(Tier.STUB)
        if len(world.model.graph.providers_of(asn)) == 1
    ][:3]

    comparison = analyzer.compare(
        conflicts, collector_visible, tier1 + transits + stubs
    )

    print()
    print(f"{'vantage':<28} {'conflicts seen':>14}")
    print("-" * 44)
    print(
        f"{'Route Views collector':<28} "
        f"{comparison.collector_conflicts:>14}"
    )
    for label, group in (
        ("tier-1 ISP", tier1),
        ("regional transit", transits),
        ("single-homed stub", stubs),
    ):
        for asn in group:
            seen = comparison.per_as_conflicts[asn]
            print(f"{label + ' AS ' + str(asn):<28} {seen:>14}")

    print()
    print(
        "paper: Route Views 1364 vs individual ISPs 30 / 12 / 228 — "
        "same ordering:\nthe collector aggregates many divergent "
        "viewpoints; a lone AS sees only what\nits own neighbors "
        "export, and they mostly agree."
    )


if __name__ == "__main__":
    main()
