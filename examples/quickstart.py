#!/usr/bin/env python3
"""Quickstart: detect and classify a MOAS conflict in 60 lines.

Builds a seven-AS Internet with the BGP engine, lets a second AS
falsely originate a prefix (a misconfiguration, like the AS 8584
incident the paper analyzes), takes a Route Views style snapshot, and
runs the paper's detection + classification on it.

Run:  python examples/quickstart.py
"""

import datetime

from repro.bgp import ASGraph, Network
from repro.core import classify_conflict, detect_snapshot
from repro.netbase import Prefix

# 1. A small Internet: two tier-1s peering, two regional transits,
#    three edge ASes.  add_customer(provider, customer).
graph = ASGraph()
graph.add_peering(701, 1239)
graph.add_customer(701, 100)
graph.add_customer(1239, 200)
graph.add_customer(100, 7)
graph.add_customer(200, 8)
graph.add_customer(100, 9)
graph.add_customer(200, 9)  # AS 9 is multihomed

network = Network(graph)

# 2. AS 7 legitimately originates a prefix; AS 8 misconfigures and
#    originates the same prefix.
prefix = Prefix.parse("192.0.2.0/24")
network.originate(7, prefix)
network.originate(8, prefix)
network.run_to_convergence()

# 3. A collector peering with three ASes dumps their tables.
snapshot = network.collector_snapshot(
    datetime.date(2001, 4, 6), peer_asns=[701, 1239, 9]
)

# 4. The paper's methodology: scan the table for multi-origin prefixes.
detection = detect_snapshot(snapshot)
print(f"prefixes scanned:  {detection.prefixes_scanned}")
print(f"MOAS conflicts:    {detection.num_conflicts}")

conflict = detection.conflicts[0]
print(f"conflicted prefix: {conflict.prefix}")
print(f"origin ASes:       {sorted(conflict.origins)}")
for origin, paths in conflict.paths_by_origin:
    for path in paths:
        print(f"  path to AS {origin}: {' '.join(str(asn) for asn in path)}")

# 5. Section V classification: OrigTranAS / SplitView / DistinctPaths.
print(f"conflict class:    {classify_conflict(conflict).value}")

# 6. Where does hijacked traffic go?  Peers that selected AS 8's false
#    route forward toward AS 8 and the packets are lost (Section VI-E).
for asn in (701, 1239, 9):
    path = network.best_path(asn, prefix)
    chosen = path.origin()
    marker = "LOST (faulty origin)" if chosen == 8 else "ok"
    print(f"AS {asn} selected origin {chosen}: {marker}")
