#!/usr/bin/env python3
"""Real-time MOAS alerting on a BGP update stream.

Section VII of the paper calls for "techniques for identifying invalid
conflicts with a high degree of certainty" — the lineage that led to
ARTEMIS and BGPalerter.  This example re-enacts the 1998-04-07 AS 8584
incident as a live update stream (genuine BGP4MP messages through our
MRT layer) and shows the streaming detector raising alerts the moment
each hijack lands, plus the duration/registry hints an operator would
triage with.

Run:  python examples/hijack_alerting.py
"""

from repro.core.realtime import AlertKind, StreamingMoasDetector
from repro.mrt.attributes import PathAttributes
from repro.mrt.records import Bgp4mpMessage
from repro.netbase import ASPath, Prefix


def announce(
    peer: int, prefix: Prefix, *path: int, timestamp: int
) -> tuple[int, Bgp4mpMessage]:
    message = Bgp4mpMessage(
        peer_asn=peer,
        local_asn=6447,  # the collector's ASN
        interface_index=0,
        peer_address=0xC6200001,
        local_address=0xC6336401,
        attributes=PathAttributes(as_path=ASPath.from_sequence(path)),
        announced=(prefix,),
    )
    return (timestamp, message)


def withdraw(
    peer: int, prefix: Prefix, *, timestamp: int
) -> tuple[int, Bgp4mpMessage]:
    message = Bgp4mpMessage(
        peer_asn=peer,
        local_asn=6447,
        interface_index=0,
        peer_address=0xC6200001,
        local_address=0xC6336401,
        withdrawn=(prefix,),
    )
    return (timestamp, message)


def main() -> None:
    victims = [Prefix.parse(f"193.{index}.0.0/16") for index in range(4)]
    owners = [7, 8, 9, 10]

    # A simple origin registry (what an IRR would provide).
    detector = StreamingMoasDetector(
        expected_origins=dict(zip(victims, owners))
    )

    stream = []
    timestamp = 891907200  # 1998-04-07 00:00 UTC
    # Steady state: two peers carry each victim's legitimate route.
    for prefix, owner in zip(victims, owners):
        stream.append(announce(701, prefix, 701, 100, owner, timestamp=timestamp))
        stream.append(
            announce(1239, prefix, 1239, 200, owner, timestamp=timestamp + 1)
        )
    timestamp += 3600
    # The incident: AS 8584 originates everyone's prefixes.
    for offset, prefix in enumerate(victims):
        stream.append(
            announce(
                701, prefix, 701, 8584, timestamp=timestamp + offset * 30
            )
        )
    timestamp += 7200
    # Operators fix it: the false routes are withdrawn (the same peer
    # re-announces the legitimate path).
    for offset, prefix in enumerate(victims):
        owner = owners[offset]
        stream.append(
            announce(
                701, prefix, 701, 100, owner,
                timestamp=timestamp + offset * 30,
            )
        )

    print("processing update stream ...\n")
    for alert in detector.process_stream(iter(stream)):
        flag = ""
        if alert.kind is not AlertKind.MOAS_ENDED:
            expected = detector.is_expected_origin(
                alert.prefix, alert.changed_origin
            )
            flag = "" if expected else "  << origin NOT in registry"
        print(
            f"t={alert.timestamp}  {alert.kind.value:<18} "
            f"{alert.prefix}  origins={sorted(alert.origins)}"
            f"{flag}"
        )

    print(f"\nconflicts still active: {detector.current_conflicts()}")
    print(
        "\nThe registry hint identifies AS 8584's announcements as "
        "suspect instantly —\nthe certainty the paper says duration "
        "alone cannot provide (Section VI-F)."
    )


if __name__ == "__main__":
    main()
