#!/usr/bin/env python3
"""Re-enacting the 1997 AS 7007 de-aggregation incident.

Paper, Section VI-E: "On April 25th, 1997, a severe Internet outage
occurred when one ISP falsely de-aggregated most of the Internet
routing table and advertised the prefixes as if they originated from
the faulty ISP.  The falsely originated prefixes resulted in MOAS
conflicts."

The incident predates the paper's archive window, so the reproduction
keeps it as an executable case study: AS 7007 re-originates /24
fragments of everyone's address space; longest-prefix-match forwarding
(our radix trie) then drags traffic to the faulty AS even where the
legitimate aggregate is still present, and same-prefix announcements
show up as MOAS conflicts.

Run:  python examples/as7007_deaggregation.py
"""

import datetime

from repro.bgp import ASGraph, Network
from repro.core import detect_snapshot
from repro.netbase import Prefix, PrefixTrie


def main() -> None:
    # The era's setup in miniature: AS 7007 was a customer of Sprint
    # (AS 1239); victims hang off other providers.
    graph = ASGraph()
    graph.add_peering(701, 1239)
    graph.add_peering(701, 7018)
    graph.add_peering(1239, 7018)
    graph.add_customer(1239, 7007)
    graph.add_customer(701, 100)
    graph.add_customer(7018, 200)
    graph.add_customer(100, 7)
    graph.add_customer(200, 8)

    network = Network(graph)

    victims = {
        7: Prefix.parse("24.8.0.0/16"),
        8: Prefix.parse("38.2.0.0/16"),
        100: Prefix.parse("128.9.0.0/16"),
    }
    for owner, prefix in victims.items():
        network.originate(owner, prefix)

    # AS 7007's router de-aggregates: it announces /24 fragments of the
    # victims' blocks as its own, plus the aggregates themselves.
    fragments = []
    for prefix in victims.values():
        for index in range(3):  # a few fragments per block, for brevity
            fragment = Prefix(prefix.network | (index << 8), 24)
            network.originate(7007, fragment)
            fragments.append(fragment)
        network.originate(7007, prefix)  # same-prefix false origination
    network.run_to_convergence()

    day = datetime.date(1997, 4, 25)
    snapshot = network.collector_snapshot(day, peer_asns=[701, 7018, 1239])
    detection = detect_snapshot(snapshot)

    print("=== MOAS conflicts (same-prefix false origination) ===")
    for conflict in detection.conflicts:
        print(
            f"  {conflict.prefix}: origins {sorted(conflict.origins)} "
            "(legitimate vs AS 7007)"
        )

    # Forwarding impact: build AS 701's forwarding table and check
    # where packets for victim addresses actually go.  The /24
    # fragments win longest-prefix match over the legitimate /16s.
    print()
    print("=== forwarding at AS 701 (longest-prefix match) ===")
    table = PrefixTrie()
    router = network.router(701)
    for prefix, best in router.loc_rib().items():
        origin = network.best_path(701, prefix).origin()
        table[prefix] = origin
    for owner, prefix in victims.items():
        inside = prefix.network | 0x0105  # an address inside the block
        matched, origin = table.longest_match_address(inside)
        status = (
            "BLACKHOLED at AS 7007" if origin == 7007 else f"ok -> AS {origin}"
        )
        print(
            f"  traffic to {Prefix(inside, 32)}: matches {matched} "
            f"-> {status}"
        )

    lost = sum(
        1
        for _owner, prefix in victims.items()
        if table.longest_match_address(prefix.network | 0x0105)[1] == 7007
    )
    print()
    print(
        f"{lost}/{len(victims)} victim blocks blackholed — the 1997 "
        "outage mechanism:\nmore-specific false routes beat legitimate "
        "aggregates at every router."
    )


if __name__ == "__main__":
    main()
