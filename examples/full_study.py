#!/usr/bin/env python3
"""The whole paper, end to end, at laptop scale.

Simulates the 1997-11-08 → 2001-07-18 measurement campaign (scaled),
writes the daily-snapshot archive, runs the analysis pipeline over it,
and prints every table and figure the paper reports, annotated with the
paper's own numbers for comparison.

Run:  python examples/full_study.py [--scale 0.03] [--seed 20011108]
(Scale 0.03 finishes in a few seconds; 0.125 takes a minute or two.)
"""

import argparse
import tempfile
import time
from pathlib import Path

from repro.analysis.compare import (
    compare_to_paper,
    comparison_table,
    fraction_passing,
)
from repro.api import MoasService, render
from repro.scenario.world import ScenarioConfig, simulate_study


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.03)
    parser.add_argument("--seed", type=int, default=20011108)
    parser.add_argument(
        "--archive-dir",
        type=Path,
        default=None,
        help="keep the archive here instead of a temp directory",
    )
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        archive_dir = args.archive_dir or Path(tmp) / "archive"

        print(f"simulating 1279 observed days at scale {args.scale} ...")
        started = time.perf_counter()
        summary = simulate_study(
            archive_dir, ScenarioConfig(scale=args.scale, seed=args.seed)
        )
        print(
            f"  archive: {summary['num_prefixes_final']} prefixes, "
            f"{summary['num_ases_final']} ASes, "
            f"{summary['events_total']} cause events "
            f"({time.perf_counter() - started:.1f}s)"
        )

        print("running the analysis pipeline ...")
        started = time.perf_counter()
        service = MoasService()
        service.feed(archive_dir)
        results = service.results()
        print(f"  analyzed in {time.perf_counter() - started:.1f}s")

        print()
        print(render(results, "summary", "ascii"))
        print()
        print(render(results, "figure2", "ascii"))
        print("(paper: 683 / 810.5 / 951 / 1294, rates 18.7/17.3/36.1%)")
        print()
        print(render(results, "figure4", "ascii"))
        print("(paper: 30.9 / 47.7 / 107.5 / 175.3 / 281.8 days)")
        print()
        print(render(results, "figure1", "ascii"))
        print()
        print(render(results, "figure3", "ascii"))
        print()
        print(render(results, "figure5", "ascii"))
        print()
        print(render(results, "figure6", "ascii"))
        print()
        rows = compare_to_paper(results, scale=args.scale)
        print(comparison_table(rows))
        print(
            f"\n{fraction_passing(rows):.0%} of paper comparisons inside "
            "the +/-50% band at this scale/seed"
        )


if __name__ == "__main__":
    main()
