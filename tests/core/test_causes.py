"""Tests for cause attribution and the duration heuristic."""

import datetime

from repro.core.causes import (
    detect_spikes,
    duration_heuristic,
    exchange_point_episodes,
    private_asn_episodes,
    score_duration_heuristic,
)
from repro.core.detector import DailyConflict
from repro.core.episodes import ConflictEpisode
from repro.netbase.prefix import Prefix


def episode(prefix: str, duration: int, origins=(1, 2)) -> ConflictEpisode:
    start = datetime.date(1998, 1, 1)
    return ConflictEpisode(
        prefix=Prefix.parse(prefix),
        first_day=start,
        last_day=start + datetime.timedelta(days=duration),
        days_observed=duration,
        origins_ever=frozenset(origins),
        max_origins_single_day=len(origins),
        ongoing=False,
    )


def conflict(prefix: str, *origins: int) -> DailyConflict:
    return DailyConflict(
        prefix=Prefix.parse(prefix), origins=frozenset(origins)
    )


class TestAttribution:
    def test_exchange_point_identification(self):
        episodes = {
            Prefix.parse("198.32.5.0/24"): episode("198.32.5.0/24", 1000),
            Prefix.parse("10.0.0.0/8"): episode("10.0.0.0/8", 5),
        }
        found = exchange_point_episodes(episodes)
        assert len(found) == 1
        assert str(found[0].prefix) == "198.32.5.0/24"

    def test_private_asn_identification(self):
        episodes = {
            Prefix.parse("10.0.0.0/8"): episode(
                "10.0.0.0/8", 10, origins=(42, 64513)
            ),
            Prefix.parse("11.0.0.0/8"): episode("11.0.0.0/8", 10),
        }
        found = private_asn_episodes(episodes)
        assert len(found) == 1
        assert 64513 in found[0].origins_ever


class TestSpikes:
    def _baseline_days(self, count, start=datetime.date(1998, 3, 1)):
        return [
            (
                start + datetime.timedelta(days=offset),
                [conflict(f"10.{offset}.{i}.0/24", 1, 2) for i in range(5)],
            )
            for offset in range(count)
        ]

    def test_spike_detected_with_culprit(self):
        daily = self._baseline_days(35)
        spike_day = datetime.date(1998, 4, 7)
        spike_conflicts = [
            conflict(f"192.0.{i}.0/24", 8584, 100 + i) for i in range(60)
        ]
        daily.append((spike_day, spike_conflicts))
        reports = detect_spikes(daily)
        assert len(reports) == 1
        report = reports[0]
        assert report.day == spike_day
        assert report.culprit_asn == 8584
        assert report.culprit_involved == 60
        assert report.involvement == 1.0

    def test_no_spike_in_flat_series(self):
        assert detect_spikes(self._baseline_days(40)) == []

    def test_factor_controls_sensitivity(self):
        daily = self._baseline_days(35)
        day = datetime.date(1998, 4, 7)
        daily.append(
            (day, [conflict(f"192.0.{i}.0/24", 9, 10 + i) for i in range(12)])
        )
        assert detect_spikes(daily, factor=4.0) == []
        assert len(detect_spikes(daily, factor=2.0)) == 1


class TestDurationHeuristic:
    def test_prediction(self):
        assert duration_heuristic(episode("10.0.0.0/8", 100))
        assert not duration_heuristic(episode("10.0.0.0/8", 3))

    def test_threshold_parameter(self):
        seven_day = episode("10.0.0.0/8", 7)
        assert duration_heuristic(seven_day, threshold_days=5)
        assert not duration_heuristic(seven_day, threshold_days=9)

    def test_score_confusion_matrix(self):
        episodes = [
            episode("10.0.0.0/8", 100),  # long, valid -> true valid
            episode("11.0.0.0/8", 2),  # short, invalid -> true invalid
            episode("12.0.0.0/8", 50),  # long, invalid -> false valid
            episode("13.0.0.0/8", 3),  # short, valid -> false invalid
        ]
        truth = {
            Prefix.parse("10.0.0.0/8"): True,
            Prefix.parse("11.0.0.0/8"): False,
            Prefix.parse("12.0.0.0/8"): False,
            Prefix.parse("13.0.0.0/8"): True,
        }
        score = score_duration_heuristic(
            episodes, truth, threshold_days=9
        )
        assert score.true_valid == 1
        assert score.true_invalid == 1
        assert score.false_valid == 1
        assert score.false_invalid == 1
        assert score.accuracy == 0.5
        assert score.precision == 0.5
        assert score.recall == 0.5

    def test_unlabeled_episodes_skipped(self):
        score = score_duration_heuristic(
            [episode("10.0.0.0/8", 100)], {}, threshold_days=9
        )
        assert score.accuracy == 0.0
        assert (
            score.true_valid
            + score.false_valid
            + score.true_invalid
            + score.false_invalid
            == 0
        )
