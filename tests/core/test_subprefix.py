"""Tests for sub-prefix anomaly detection (the AS 7007 shape)."""

import datetime

from repro.core.detector import detect_snapshot
from repro.core.subprefix import (
    combined_fault_surface,
    detect_subprefix_anomalies,
)
from repro.netbase.aspath import ASPath
from repro.netbase.prefix import Prefix
from repro.netbase.rib import PeerId, RibSnapshot, Route

DAY = datetime.date(1997, 4, 25)
PEER = PeerId(asn=701)


def route(prefix: str, *path: int) -> Route:
    return Route(Prefix.parse(prefix), ASPath.from_sequence(path), PEER)


class TestDetection:
    def test_foreign_more_specific_flagged(self):
        snapshot = RibSnapshot.from_routes(
            DAY,
            [
                route("24.0.0.0/8", 701, 42),
                route("24.8.0.0/16", 701, 7007),  # 7007 carving 42's block
            ],
        )
        report = detect_subprefix_anomalies(snapshot)
        assert len(report.anomalies) == 1
        anomaly = report.anomalies[0]
        assert anomaly.prefix == Prefix.parse("24.8.0.0/16")
        assert anomaly.covering == Prefix.parse("24.0.0.0/8")
        assert anomaly.origins == {7007}
        assert anomaly.is_disjoint

    def test_own_more_specific_not_flagged(self):
        # Traffic engineering: the owner splits its own block.
        snapshot = RibSnapshot.from_routes(
            DAY,
            [
                route("24.0.0.0/8", 701, 42),
                route("24.8.0.0/16", 701, 42),
            ],
        )
        assert detect_subprefix_anomalies(snapshot).anomalies == ()

    def test_partial_origin_overlap_not_disjoint(self):
        snapshot = RibSnapshot.from_routes(
            DAY,
            [
                route("24.0.0.0/8", 701, 42),
                route("24.8.0.0/16", 701, 42),
                route("24.8.0.0/16", 701, 7007),
            ],
        )
        report = detect_subprefix_anomalies(snapshot)
        assert len(report.anomalies) == 1
        assert not report.anomalies[0].is_disjoint

    def test_closest_cover_used(self):
        snapshot = RibSnapshot.from_routes(
            DAY,
            [
                route("24.0.0.0/8", 701, 42),
                route("24.8.0.0/16", 701, 43),
                route("24.8.1.0/24", 701, 7007),
            ],
        )
        report = detect_subprefix_anomalies(snapshot)
        deepest = report.by_origin(7007)
        assert len(deepest) == 1
        assert deepest[0].covering == Prefix.parse("24.8.0.0/16")
        assert deepest[0].covering_origins == {43}

    def test_uncovered_prefixes_ignored(self):
        snapshot = RibSnapshot.from_routes(
            DAY, [route("24.8.0.0/16", 701, 7007)]
        )
        assert detect_subprefix_anomalies(snapshot).anomalies == ()

    def test_as7007_style_mass_deaggregation(self):
        routes = [route("24.0.0.0/8", 701, 42)]
        for index in range(10):
            routes.append(route(f"24.{index}.0.0/16", 701, 7007))
        report = detect_subprefix_anomalies(
            RibSnapshot.from_routes(DAY, routes)
        )
        assert len(report.disjoint_anomalies()) == 10
        assert len(report.by_origin(7007)) == 10


class TestCombinedSurface:
    def test_combined_counts(self):
        snapshot = RibSnapshot.from_routes(
            DAY,
            [
                # Same-prefix MOAS:
                route("10.0.0.0/8", 701, 42),
                Route(
                    Prefix.parse("10.0.0.0/8"),
                    ASPath.from_sequence([1239, 43]),
                    PeerId(asn=1239),
                ),
                # Sub-prefix anomaly:
                route("24.0.0.0/8", 701, 42),
                route("24.8.0.0/16", 701, 7007),
            ],
        )
        detection = detect_snapshot(snapshot)
        report = detect_subprefix_anomalies(snapshot)
        surface = combined_fault_surface(detection, report)
        assert surface == {
            "moas_conflicts": 1,
            "subprefix_anomalies": 1,
            "disjoint_subprefix_anomalies": 1,
        }
