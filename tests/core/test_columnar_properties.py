"""Property tests: the columnar hot path is invisible to observers.

For any randomly generated world — empty days, single-peer days,
AS_SET-flagged registries, conflicting origins, both archive formats —
the columnar decode must reproduce the object rows exactly and
:func:`detect_day_columns` must agree with :func:`detect_day` on every
shard of every scheme.  Unsorted same-prefix rows (which v2 interns as
duplicate-pid groups) must take the object fallback and still agree.
The study-level twin of this guarantee (StudyResults across
workers x shards layouts) lives in
``tests/analysis/test_format_equivalence.py``.
"""

import datetime

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.detector import detect_day, detect_day_columns
from repro.netbase.prefix import Prefix
from repro.netbase.sharding import ShardSpec
from repro.scenario.archive import (
    ArchiveReader,
    ArchiveWriter,
    DayColumns,
    DayRecord,
    FLAG_AS_SET_TAIL,
    MAX_PATH_LENGTH,
    PeerRow,
)

START = datetime.date(1997, 11, 8)
PEERS = (701, 1239, 3561, 64511)
NUM_PREFIXES = 8

#: Every sharding layout the detect equivalence sweeps.
SHARD_LAYOUTS = [None] + [
    spec
    for scheme in ("hash", "range")
    for count in (2, 3)
    for spec in ShardSpec.partition(count, scheme)
]


def paths_strategy():
    """A small pool of AS paths, including degenerate empty ones."""
    return st.lists(
        st.lists(
            st.integers(min_value=1, max_value=2**32 - 1),
            max_size=6,
        ).map(tuple),
        min_size=1,
        max_size=5,
        unique=True,
    )


def days_strategy(*, sort_rows: bool):
    """Random day specs: (peer subset, [(prefix, peer, origin, path)]).

    ``sort_rows=True`` groups same-prefix rows into runs like the
    collector writes them; ``False`` leaves event order, which v2
    interns as duplicate-pid groups — the object-fallback trigger.
    """
    row = st.tuples(
        st.integers(min_value=0, max_value=NUM_PREFIXES - 1),  # prefix id
        st.sampled_from(PEERS),
        st.integers(min_value=1, max_value=2**31),  # origin
        st.integers(min_value=0, max_value=4),  # path pool slot
    )
    day = st.tuples(
        st.sets(st.sampled_from(PEERS), min_size=1).map(
            lambda peers: tuple(sorted(peers))
        ),
        st.lists(row, max_size=12, unique_by=lambda r: (r[0], r[1])),
    )
    return st.lists(day, max_size=6).map(
        lambda days: (days, sort_rows)
    )


def as_set_flags_strategy():
    """Which registry entries carry the AS_SET exclusion flag."""
    return st.lists(
        st.booleans(), min_size=NUM_PREFIXES, max_size=NUM_PREFIXES
    )


def build(directory, format, path_pool, day_specs, as_set=None):
    days, sort_rows = day_specs
    writer = ArchiveWriter(directory, format=format)
    for index in range(NUM_PREFIXES):
        flagged = as_set is not None and as_set[index]
        writer.register_prefix(
            Prefix((10 << 24) | (index << 16), 16, strict=False),
            42,
            0,
            flags=FLAG_AS_SET_TAIL if flagged else 0,
        )
    path_ids = [writer.intern_path(path) for path in path_pool]
    records = []
    for offset, (peers, rows) in enumerate(days):
        ordered = sorted(rows) if sort_rows else rows
        records.append(
            DayRecord(
                day=START + datetime.timedelta(days=offset),
                day_index=offset,
                alive_count=NUM_PREFIXES,
                active_peers=peers,
                rows=tuple(
                    PeerRow(
                        prefix_id,
                        peer,
                        origin,
                        path_ids[slot % len(path_ids)],
                    )
                    for prefix_id, peer, origin, slot in ordered
                ),
            )
        )
    for record in records:
        writer.write_day(record)
    writer.finalize({"calendar_start": START.isoformat()})
    return records


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(path_pool=paths_strategy(), day_specs=days_strategy(sort_rows=True))
def test_columnar_decode_equals_rows(tmp_path_factory, path_pool, day_specs):
    """Flat columns, segments and ``to_record`` all reproduce the rows."""
    base = tmp_path_factory.mktemp("prop-columnar")
    for format in ("v1", "v2"):
        records = build(base / format, format, path_pool, day_specs)
        reader = ArchiveReader(base / format)
        decoded = list(reader.iter_day_columns())
        assert len(decoded) == len(records)
        for record, columns in zip(records, decoded):
            assert columns.num_rows == len(record.rows)
            # Flat accessors materialize lazily; contents must match
            # the object rows field for field.
            assert list(columns.prefix_ids) == [
                row.prefix_id for row in record.rows
            ]
            assert list(columns.peer_asns) == [
                row.peer_asn for row in record.rows
            ]
            assert list(columns.origins) == [
                row.origin for row in record.rows
            ]
            assert list(columns.path_ids) == [
                row.path_id for row in record.rows
            ]
            assert columns.segments is None  # flat accessors consumed them
            assert columns.num_runs == len(columns.run_pids)
            assert columns.to_record() == record


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    path_pool=paths_strategy(),
    day_specs=days_strategy(sort_rows=True),
    as_set=as_set_flags_strategy(),
)
def test_columnar_detect_equals_object(
    tmp_path_factory, path_pool, day_specs, as_set
):
    """detect_day_columns == detect_day on every shard of every scheme."""
    base = tmp_path_factory.mktemp("prop-detect")
    for format in ("v1", "v2"):
        records = build(base / format, format, path_pool, day_specs, as_set)
        reader = ArchiveReader(base / format)
        for shard in SHARD_LAYOUTS:
            expected = [
                detect_day(record, reader, shard) for record in records
            ]
            for repeat in range(2):  # second pass hits the outcome cache
                detections = [
                    detect_day_columns(columns, reader, shard)
                    for columns in reader.iter_day_columns()
                ]
                assert detections == expected, (format, shard, repeat)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(path_pool=paths_strategy(), day_specs=days_strategy(sort_rows=False))
def test_unsorted_rows_fall_back_and_agree(
    tmp_path_factory, path_pool, day_specs
):
    """Duplicate-pid days take the object fallback, invisibly.

    Event-ordered rows repeat prefix ids across runs; the columnar scan
    must detect that and defer to :func:`detect_day` rather than
    produce split conflicts.
    """
    base = tmp_path_factory.mktemp("prop-fallback")
    for format in ("v1", "v2"):
        records = build(base / format, format, path_pool, day_specs)
        reader = ArchiveReader(base / format)
        detections = [
            detect_day_columns(columns, reader)
            for columns in reader.iter_day_columns()
        ]
        assert detections == [
            detect_day(record, reader) for record in records
        ]


def test_max_length_path_survives_columnar_detect(tmp_path):
    """A MAX_PATH_LENGTH conflict path comes through the hot path."""
    long_path = tuple(range(2, MAX_PATH_LENGTH + 2))
    for format in ("v1", "v2"):
        directory = tmp_path / format
        writer = ArchiveWriter(directory, format=format)
        pid = writer.register_prefix(
            Prefix.parse("198.51.100.0/24"), long_path[-1], 0
        )
        long_id = writer.intern_path(long_path)
        short_id = writer.intern_path((701, 65001))
        record = DayRecord(
            day=START,
            day_index=0,
            alive_count=1,
            active_peers=(701, 1239),
            rows=(
                PeerRow(pid, 701, long_path[-1], long_id),
                PeerRow(pid, 1239, 65001, short_id),
            ),
        )
        writer.write_day(record)
        writer.finalize({"calendar_start": START.isoformat()})
        reader = ArchiveReader(directory)
        (columns,) = reader.iter_day_columns()
        detection = detect_day_columns(columns, reader)
        assert detection == detect_day(record, reader)
        (conflict,) = detection.conflicts
        assert set(conflict.origins) == {long_path[-1], 65001}
        assert any(
            path == long_path
            for _origin, paths in conflict.paths_by_origin
            for path in paths
        )


def test_all_as_set_day_excludes_everything(tmp_path):
    """Registry-wide AS_SET flags kill every conflict in both paths."""
    for format in ("v1", "v2"):
        directory = tmp_path / format
        writer = ArchiveWriter(directory, format=format)
        pids = [
            writer.register_prefix(
                Prefix((10 << 24) | (index << 16), 16, strict=False),
                42,
                0,
                flags=FLAG_AS_SET_TAIL,
            )
            for index in range(3)
        ]
        path_a = writer.intern_path((701, 100))
        path_b = writer.intern_path((1239, 200))
        record = DayRecord(
            day=START,
            day_index=0,
            alive_count=3,
            active_peers=(701, 1239),
            rows=tuple(
                row
                for pid in pids
                for row in (
                    PeerRow(pid, 701, 100, path_a),
                    PeerRow(pid, 1239, 200, path_b),
                )
            ),
        )
        writer.write_day(record)
        writer.finalize({"calendar_start": START.isoformat()})
        reader = ArchiveReader(directory)
        (columns,) = reader.iter_day_columns()
        detection = detect_day_columns(columns, reader)
        assert detection == detect_day(record, reader)
        assert detection.conflicts == ()
        assert detection.as_set_excluded == 3


def test_empty_day_detects_empty(tmp_path):
    """A day with no rows decodes and detects as empty, both formats."""
    for format in ("v1", "v2"):
        directory = tmp_path / format
        writer = ArchiveWriter(directory, format=format)
        writer.register_prefix(Prefix.parse("198.51.100.0/24"), 42, 0)
        record = DayRecord(
            day=START,
            day_index=0,
            alive_count=1,
            active_peers=(701,),
            rows=(),
        )
        writer.write_day(record)
        writer.finalize({"calendar_start": START.isoformat()})
        reader = ArchiveReader(directory)
        (columns,) = reader.iter_day_columns()
        assert columns.num_rows == 0
        assert columns.to_record() == record
        detection = detect_day_columns(columns, reader)
        assert detection == detect_day(record, reader)
        assert detection.conflicts == ()


def test_eager_columns_detect_like_reader_columns(tmp_path):
    """Hand-built eager ``DayColumns`` scan identically to decoded ones.

    The eager constructor is the v1 decode shape (flat arrays, no
    segments, no run keys); building one by hand pins the constructor
    contract the scan relies on.
    """
    from array import array

    directory = tmp_path / "v2"
    writer = ArchiveWriter(directory, format="v2")
    pid_a = writer.register_prefix(Prefix.parse("198.51.100.0/24"), 100, 0)
    pid_b = writer.register_prefix(Prefix.parse("203.0.113.0/24"), 300, 0)
    path_a = writer.intern_path((701, 100))
    path_b = writer.intern_path((1239, 200))
    path_c = writer.intern_path((701, 300))
    record = DayRecord(
        day=START,
        day_index=0,
        alive_count=2,
        active_peers=(701, 1239),
        rows=(
            PeerRow(pid_a, 701, 100, path_a),
            PeerRow(pid_a, 1239, 200, path_b),
            PeerRow(pid_b, 701, 300, path_c),
        ),
    )
    writer.write_day(record)
    writer.finalize({"calendar_start": START.isoformat()})
    reader = ArchiveReader(directory)

    columns = DayColumns(
        day=record.day,
        day_index=0,
        alive_count=2,
        active_peers=record.active_peers,
        prefix_ids=array("I", (pid_a, pid_a, pid_b)),
        peer_asns=array("I", (701, 1239, 701)),
        origins=array("I", (100, 200, 300)),
        path_ids=array("I", (path_a, path_b, path_c)),
        run_starts=array("I", (0, 2)),
        run_pids=array("I", (pid_a, pid_b)),
        run_single=bytearray((0, 1)),
    )
    assert columns.segments is None
    assert columns.to_record() == record
    assert detect_day_columns(columns, reader) == detect_day(record, reader)
