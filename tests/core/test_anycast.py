"""Tests for the anycast-candidate detector (Section VI-D)."""

import datetime

from repro.core.causes import anycast_like_episodes
from repro.core.episodes import ConflictEpisode
from repro.netbase.prefix import Prefix

START = datetime.date(1998, 1, 1)


def episode(
    prefix: str, days: int, *, width: int, origins=None
) -> ConflictEpisode:
    origins = origins or tuple(range(100, 100 + width))
    return ConflictEpisode(
        prefix=Prefix.parse(prefix),
        first_day=START,
        last_day=START + datetime.timedelta(days=days),
        days_observed=days,
        origins_ever=frozenset(origins),
        max_origins_single_day=width,
        ongoing=False,
    )


class TestAnycastDetector:
    def test_stable_wide_conflict_flagged(self):
        episodes = {
            Prefix.parse("10.0.0.0/24"): episode(
                "10.0.0.0/24", 1000, width=6
            ),
        }
        found = anycast_like_episodes(episodes)
        assert len(found) == 1

    def test_ordinary_two_origin_conflict_not_flagged(self):
        episodes = {
            Prefix.parse("10.0.0.0/24"): episode(
                "10.0.0.0/24", 1000, width=2
            ),
        }
        assert anycast_like_episodes(episodes) == []

    def test_short_wide_conflict_not_flagged(self):
        # Wide but brief: a mass-origination fault, not anycast.
        episodes = {
            Prefix.parse("10.0.0.0/24"): episode("10.0.0.0/24", 2, width=8),
            Prefix.parse("11.0.0.0/24"): episode(
                "11.0.0.0/24", 1000, width=2
            ),
        }
        assert anycast_like_episodes(episodes) == []

    def test_exchange_points_excluded(self):
        # IXP fabric prefixes look anycast-like but are classified as
        # exchange points (Section VI-A), not anycast.
        episodes = {
            Prefix.parse("198.32.0.0/24"): episode(
                "198.32.0.0/24", 1000, width=6
            ),
        }
        assert anycast_like_episodes(episodes) == []

    def test_empty_input(self):
        assert anycast_like_episodes({}) == []

    def test_paper_finding_holds_on_simulated_data(self, tmp_path):
        """The paper found no anycast prefixes; neither should we."""
        from repro.analysis.pipeline import StudyPipeline
        from repro.analysis.sources import detections_from_archive
        from repro.scenario.world import ScenarioConfig, simulate_study
        from repro.util.dates import StudyCalendar

        calendar = StudyCalendar(START, START + datetime.timedelta(days=59))
        simulate_study(
            tmp_path / "arch",
            ScenarioConfig(
                scale=0.02, calendar=calendar, paper_archive_gaps=False
            ),
        )
        results = StudyPipeline().run(
            detections_from_archive(tmp_path / "arch")
        )
        assert anycast_like_episodes(results.episodes) == []
