"""Tests for the OrigTranAS / SplitView / DistinctPaths classifier."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.classifier import (
    ConflictClass,
    classify_conflict,
    classify_day,
    classify_pair,
    representative_path,
)
from repro.core.detector import DailyConflict
from repro.netbase.prefix import Prefix

PREFIX = Prefix.parse("10.0.0.0/8")


class TestClassifyPair:
    def test_orig_tran_as(self):
        # Origin of P1 (42) is a transit hop of P2.
        assert (
            classify_pair((701, 42), (1239, 42, 7))
            is ConflictClass.ORIG_TRAN_AS
        )

    def test_orig_tran_as_symmetric(self):
        assert (
            classify_pair((1239, 42, 7), (701, 42))
            is ConflictClass.ORIG_TRAN_AS
        )

    def test_split_view(self):
        # Shared transit 3561, distinct origins 7 and 8.
        assert (
            classify_pair((701, 3561, 7), (1239, 3561, 8))
            is ConflictClass.SPLIT_VIEW
        )

    def test_distinct_paths(self):
        assert (
            classify_pair((701, 100, 7), (1239, 200, 8))
            is ConflictClass.DISTINCT_PATHS
        )

    def test_same_origin_rejected(self):
        with pytest.raises(ValueError, match="share origin"):
            classify_pair((701, 42), (1239, 42))

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            classify_pair((), (701, 42))

    def test_orig_tran_takes_precedence_over_shared_transit(self):
        # P2 contains both a shared transit AND P1's origin: OrigTranAS.
        assert (
            classify_pair((701, 3561, 42), (1239, 3561, 42, 7))
            is ConflictClass.ORIG_TRAN_AS
        )

    @given(
        st.lists(st.integers(1, 100), min_size=1, max_size=5),
        st.lists(st.integers(101, 200), min_size=1, max_size=5),
    )
    def test_disjoint_paths_always_distinct(self, left, right):
        assert classify_pair(left, right) is ConflictClass.DISTINCT_PATHS

    @given(
        st.lists(st.integers(1, 200), min_size=2, max_size=5),
        st.lists(st.integers(1, 200), min_size=2, max_size=5),
    )
    def test_classification_symmetric(self, left, right):
        if left[-1] == right[-1]:
            return
        assert classify_pair(left, right) is classify_pair(right, left)


class TestRepresentativePath:
    def test_most_common_wins(self):
        paths = [(1, 2), (1, 2), (3, 2)]
        assert representative_path(paths) == (1, 2)

    def test_tie_breaks_to_shortest(self):
        paths = [(5, 4, 2), (1, 2)]
        assert representative_path(paths) == (1, 2)

    def test_tie_breaks_lexicographically(self):
        paths = [(7, 2), (1, 2)]
        assert representative_path(paths) == (1, 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            representative_path([])


def conflict(paths_by_origin: dict) -> DailyConflict:
    return DailyConflict(
        prefix=PREFIX,
        origins=frozenset(paths_by_origin),
        paths_by_origin=tuple(
            (origin, tuple(paths))
            for origin, paths in sorted(paths_by_origin.items())
        ),
    )


class TestClassifyConflict:
    def test_two_origin_conflict(self):
        result = classify_conflict(
            conflict({7: [(701, 100, 7)], 8: [(1239, 200, 8)]})
        )
        assert result is ConflictClass.DISTINCT_PATHS

    def test_precedence_across_pairs(self):
        # Three origins: one pair is SplitView, another OrigTranAS;
        # the conflict takes the most specific class.
        result = classify_conflict(
            conflict(
                {
                    7: [(701, 100, 7)],
                    8: [(1239, 100, 8)],  # SplitView with origin 7
                    100: [(7018, 100)],  # OrigTranAS with both
                }
            )
        )
        assert result is ConflictClass.ORIG_TRAN_AS

    def test_representative_selection_matters(self):
        # Origin 8's common path shares no AS; its rare path does.
        result = classify_conflict(
            conflict(
                {
                    7: [(701, 100, 7)],
                    8: [(1239, 200, 8), (1239, 200, 8), (9, 100, 8)],
                }
            )
        )
        assert result is ConflictClass.DISTINCT_PATHS

    def test_pathless_conflict_rejected(self):
        with pytest.raises(ValueError, match="lacks paths"):
            classify_conflict(
                DailyConflict(prefix=PREFIX, origins=frozenset({1, 2}))
            )

    def test_classify_day_counts(self):
        conflicts = [
            conflict({7: [(701, 100, 7)], 8: [(1239, 200, 8)]}),
            conflict({7: [(701, 3561, 7)], 8: [(1239, 3561, 8)]}),
            conflict({42: [(701, 42)], 7: [(1239, 42, 7)]}),
        ]
        counts = classify_day(conflicts)
        assert counts[ConflictClass.DISTINCT_PATHS] == 1
        assert counts[ConflictClass.SPLIT_VIEW] == 1
        assert counts[ConflictClass.ORIG_TRAN_AS] == 1
