"""Tests for the figure/table statistics."""

import datetime
from collections import Counter

import pytest

from repro.core.detector import DailyConflict
from repro.core.episodes import ConflictEpisode
from repro.core.stats import (
    conflicted_prefixes_by_length,
    daily_count_series,
    duration_expectations,
    duration_histogram,
    involvement_fraction,
    long_lived_conflicts,
    max_duration,
    one_time_conflicts,
    ongoing_conflicts,
    peak_days,
    prefix_length_distribution,
    sequence_involvement_fraction,
    share_of_length,
    yearly_increase_rates,
    yearly_medians,
)
from repro.netbase.prefix import Prefix


def episode(duration: int, *, prefix="10.0.0.0/8", ongoing=False):
    start = datetime.date(1998, 1, 1)
    return ConflictEpisode(
        prefix=Prefix.parse(prefix),
        first_day=start,
        last_day=start + datetime.timedelta(days=duration - 1),
        days_observed=duration,
        origins_ever=frozenset({1, 2}),
        max_origins_single_day=2,
        ongoing=ongoing,
    )


def conflict(prefix: str, *origins: int, paths=()):
    return DailyConflict(
        prefix=Prefix.parse(prefix),
        origins=frozenset(origins or (1, 2)),
        paths_by_origin=paths,
    )


class TestSeries:
    def test_daily_series_sorted(self):
        series = daily_count_series(
            [
                (datetime.date(1998, 1, 2), 5),
                (datetime.date(1998, 1, 1), 3),
            ]
        )
        assert series[0][0] < series[1][0]

    def test_duplicate_days_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            daily_count_series(
                [
                    (datetime.date(1998, 1, 1), 5),
                    (datetime.date(1998, 1, 1), 3),
                ]
            )

    def test_yearly_medians(self):
        series = [
            (datetime.date(1998, 1, 1), 10),
            (datetime.date(1998, 1, 2), 20),
            (datetime.date(1998, 1, 3), 30),
            (datetime.date(1999, 1, 1), 100),
        ]
        medians = yearly_medians(series)
        assert medians == {1998: 20.0, 1999: 100.0}

    def test_increase_rates(self):
        rates = yearly_increase_rates({1998: 683.0, 1999: 810.5})
        assert rates[1999] == pytest.approx(0.1867, abs=1e-3)

    def test_increase_rate_paper_values(self):
        # The paper's figure-2 rates derive from its medians.
        medians = {1998: 683.0, 1999: 810.5, 2000: 951.0, 2001: 1294.0}
        rates = yearly_increase_rates(medians)
        assert rates[1999] == pytest.approx(0.187, abs=2e-3)
        assert rates[2000] == pytest.approx(0.173, abs=2e-3)
        assert rates[2001] == pytest.approx(0.361, abs=2e-3)

    def test_peak_days(self):
        series = [
            (datetime.date(1998, 4, 7), 11842),
            (datetime.date(1998, 4, 8), 700),
            (datetime.date(2001, 4, 6), 10226),
        ]
        peaks = peak_days(series, count=2)
        assert peaks[0][1] == 11842
        assert peaks[1][1] == 10226


class TestDurations:
    def test_histogram(self):
        histogram = duration_histogram(
            [episode(1), episode(1), episode(10)]
        )
        assert histogram == Counter({1: 2, 10: 1})

    def test_expectations_thresholds(self):
        episodes = [episode(1)] * 5 + [episode(8)] * 3 + [episode(100)]
        expectations = duration_expectations(episodes, thresholds=(0, 1, 9))
        assert expectations[0] == pytest.approx((5 + 24 + 100) / 9)
        assert expectations[1] == pytest.approx((24 + 100) / 4)
        assert expectations[9] == pytest.approx(100.0)

    def test_expectation_monotone_in_threshold(self):
        episodes = [episode(d) for d in (1, 2, 5, 20, 50, 400)]
        expectations = duration_expectations(episodes)
        values = [expectations[k] for k in sorted(expectations)]
        assert values == sorted(values)

    def test_empty_thresholds_omitted(self):
        expectations = duration_expectations([episode(5)], thresholds=(0, 9))
        assert 9 not in expectations

    def test_counters(self):
        episodes = [
            episode(1),
            episode(400),
            episode(301, ongoing=True),
            episode(2),
        ]
        assert one_time_conflicts(episodes) == 1
        assert long_lived_conflicts(episodes) == 2
        assert ongoing_conflicts(episodes) == 1
        assert max_duration(episodes) == 400

    def test_max_duration_empty(self):
        assert max_duration([]) == 0


class TestPrefixLengths:
    def test_mean_daily_by_year(self):
        daily = [
            (
                datetime.date(1998, 1, 1),
                [conflict("10.0.0.0/24"), conflict("10.1.0.0/24")],
            ),
            (datetime.date(1998, 1, 2), [conflict("10.0.0.0/24")]),
            (datetime.date(1999, 1, 1), [conflict("10.0.0.0/16")]),
        ]
        distribution = prefix_length_distribution(daily)
        assert distribution[1998][24] == pytest.approx(1.5)
        assert distribution[1999][16] == pytest.approx(1.0)

    def test_share_of_length(self):
        assert share_of_length({24: 60.0, 16: 40.0}, 24) == pytest.approx(0.6)
        assert share_of_length({}, 24) == 0.0

    def test_conflicted_prefixes_by_length(self):
        counts = conflicted_prefixes_by_length(
            [episode(1, prefix="10.0.0.0/24"), episode(2, prefix="10.0.0.0/8")]
        )
        assert counts == Counter({24: 1, 8: 1})


class TestInvolvement:
    def test_involvement_fraction(self):
        conflicts = [
            conflict("10.0.0.0/8", 8584, 42),
            conflict("11.0.0.0/8", 8584, 43),
            conflict("12.0.0.0/8", 1, 2),
        ]
        assert involvement_fraction(conflicts, 8584) == (2, 3)

    def test_sequence_involvement(self):
        paths = (
            (15412, ((701, 3561, 15412),)),
            (42, ((1239, 42),)),
        )
        conflicts = [
            conflict("10.0.0.0/8", 15412, 42, paths=paths),
            conflict("11.0.0.0/8", 1, 2),
        ]
        assert sequence_involvement_fraction(conflicts, 3561, 15412) == (1, 2)

    def test_sequence_requires_adjacency(self):
        paths = ((15412, ((3561, 701, 15412),)),)  # 3561 NOT adjacent
        conflicts = [conflict("10.0.0.0/8", 15412, 42, paths=paths)]
        assert sequence_involvement_fraction(conflicts, 3561, 15412) == (0, 1)
