"""Test package: tests/core."""
