"""Tests for MOAS detection over snapshots and CDS day records."""

import datetime

import pytest

from repro.core.detector import detect_day, detect_snapshot, merge_detections
from repro.netbase.aspath import ASPath
from repro.netbase.prefix import Prefix
from repro.netbase.rib import PeerId, RibSnapshot, Route
from repro.netbase.sharding import ShardSpec
from repro.scenario.archive import (
    ArchiveReader,
    ArchiveWriter,
    DayRecord,
    FLAG_AS_SET_TAIL,
    PeerRow,
)

DAY = datetime.date(2001, 4, 6)
PEER_A = PeerId(asn=701)
PEER_B = PeerId(asn=1239)


def route(prefix: str, path: str, peer: PeerId) -> Route:
    return Route(Prefix.parse(prefix), ASPath.parse(path), peer)


class TestDetectSnapshot:
    def test_single_origin_not_flagged(self):
        snapshot = RibSnapshot.from_routes(
            DAY,
            [
                route("10.0.0.0/8", "701 42", PEER_A),
                route("10.0.0.0/8", "1239 7018 42", PEER_B),
            ],
        )
        detection = detect_snapshot(snapshot)
        assert detection.num_conflicts == 0
        assert detection.prefixes_scanned == 1

    def test_moas_flagged_with_paths(self):
        snapshot = RibSnapshot.from_routes(
            DAY,
            [
                route("10.0.0.0/8", "701 42", PEER_A),
                route("10.0.0.0/8", "1239 43", PEER_B),
            ],
        )
        detection = detect_snapshot(snapshot)
        assert detection.num_conflicts == 1
        conflict = detection.conflicts[0]
        assert conflict.origins == {42, 43}
        assert conflict.paths_of(42) == ((701, 42),)
        assert conflict.paths_of(43) == ((1239, 43),)

    def test_as_set_routes_excluded(self):
        # A prefix whose only routes end in AS sets is excluded and
        # counted, exactly as the paper's ~12 prefixes were.
        snapshot = RibSnapshot.from_routes(
            DAY,
            [
                route("10.0.0.0/8", "701 {42,43}", PEER_A),
                route("192.0.2.0/24", "701 7", PEER_A),
            ],
        )
        detection = detect_snapshot(snapshot)
        assert detection.num_conflicts == 0
        assert detection.as_set_excluded == 1

    def test_mixed_as_set_route_excludes_prefix(self):
        # The paper's rule: a prefix is excluded when *any* of its
        # routes' paths ends in an AS set, even if other routes carry
        # ordinary single-AS origins.
        snapshot = RibSnapshot.from_routes(
            DAY,
            [
                route("10.0.0.0/8", "701 42", PEER_A),
                route("10.0.0.0/8", "1239 {43,44}", PEER_B),
            ],
        )
        detection = detect_snapshot(snapshot)
        assert detection.num_conflicts == 0
        assert detection.as_set_excluded == 1

    def test_mixed_as_set_route_suppresses_real_moas(self):
        # Regression for the all-routes-vs-any-route divergence: two
        # distinct single-AS origins would be a conflict, but a third
        # AS_SET-terminated route excludes the whole prefix.
        snapshot = RibSnapshot.from_routes(
            DAY,
            [
                route("10.0.0.0/8", "701 42", PEER_A),
                route("10.0.0.0/8", "1239 43", PEER_B),
                route("10.0.0.0/8", "3333 {44,45}", PEER_A),
            ],
        )
        detection = detect_snapshot(snapshot)
        assert detection.num_conflicts == 0
        assert detection.as_set_excluded == 1

    def test_three_origins(self):
        snapshot = RibSnapshot.from_routes(
            DAY,
            [
                route("10.0.0.0/8", "701 42", PEER_A),
                route("10.0.0.0/8", "1239 43", PEER_B),
                route("10.0.0.0/8", "701 3561 44", PEER_A),
            ],
        )
        detection = detect_snapshot(snapshot)
        assert detection.conflicts[0].origins == {42, 43, 44}

    def test_conflicts_sorted_by_prefix(self):
        snapshot = RibSnapshot.from_routes(
            DAY,
            [
                route("192.0.2.0/24", "701 42", PEER_A),
                route("192.0.2.0/24", "1239 43", PEER_B),
                route("10.0.0.0/8", "701 42", PEER_A),
                route("10.0.0.0/8", "1239 43", PEER_B),
            ],
        )
        detection = detect_snapshot(snapshot)
        networks = [conflict.prefix for conflict in detection.conflicts]
        assert networks == sorted(networks, key=lambda p: p.sort_key())


class TestDetectDay:
    def _archive(self, tmp_path, rows, flags=0):
        writer = ArchiveWriter(tmp_path / "archive")
        writer.register_prefix(Prefix.parse("10.0.0.0/8"), 42, 0, flags=flags)
        writer.register_prefix(Prefix.parse("192.0.2.0/24"), 99, 0)
        path_a = writer.intern_path((701, 42))
        path_b = writer.intern_path((1239, 43))
        record = DayRecord(
            day=DAY,
            day_index=0,
            alive_count=2,
            active_peers=(701, 1239),
            rows=tuple(
                PeerRow(0, peer, origin, path_a if origin == 42 else path_b)
                for peer, origin in rows
            ),
        )
        writer.write_day(record)
        writer.finalize({"calendar_start": DAY.isoformat()})
        return ArchiveReader(tmp_path / "archive"), record

    def test_divergent_rows_detected(self, tmp_path):
        reader, record = self._archive(
            tmp_path, [(701, 42), (1239, 43)]
        )
        detection = detect_day(record, reader)
        assert detection.num_conflicts == 1
        assert detection.conflicts[0].origins == {42, 43}
        assert detection.prefixes_scanned == 2

    def test_agreeing_rows_not_a_conflict(self, tmp_path):
        reader, record = self._archive(
            tmp_path, [(701, 42), (1239, 42)]
        )
        detection = detect_day(record, reader)
        assert detection.num_conflicts == 0

    def test_as_set_flagged_prefix_excluded(self, tmp_path):
        reader, record = self._archive(
            tmp_path, [(701, 42), (1239, 43)], flags=FLAG_AS_SET_TAIL
        )
        detection = detect_day(record, reader)
        assert detection.num_conflicts == 0
        assert detection.as_set_excluded == 1

    def test_paths_resolved_from_table(self, tmp_path):
        reader, record = self._archive(
            tmp_path, [(701, 42), (1239, 43)]
        )
        detection = detect_day(record, reader)
        conflict = detection.conflicts[0]
        assert conflict.paths_of(42) == ((701, 42),)
        assert conflict.paths_of(43) == ((1239, 43),)


class TestEquivalence:
    def test_snapshot_and_day_record_agree(self, tmp_path):
        """The CDS fast path and the full-table path see the same MOAS."""
        # Build the same day both ways.
        snapshot = RibSnapshot.from_routes(
            DAY,
            [
                route("10.0.0.0/8", "701 42", PEER_A),
                route("10.0.0.0/8", "1239 43", PEER_B),
                route("192.0.2.0/24", "701 99", PEER_A),
                route("192.0.2.0/24", "1239 701 99", PEER_B),
            ],
        )
        from_snapshot = detect_snapshot(snapshot)

        writer = ArchiveWriter(tmp_path / "archive")
        writer.register_prefix(Prefix.parse("10.0.0.0/8"), 42, 0)
        writer.register_prefix(Prefix.parse("192.0.2.0/24"), 99, 0)
        rows = (
            PeerRow(0, 701, 42, writer.intern_path((701, 42))),
            PeerRow(0, 1239, 43, writer.intern_path((1239, 43))),
        )
        record = DayRecord(
            day=DAY,
            day_index=0,
            alive_count=2,
            active_peers=(701, 1239),
            rows=rows,
        )
        writer.write_day(record)
        writer.finalize({"calendar_start": DAY.isoformat()})
        reader = ArchiveReader(tmp_path / "archive")
        from_record = detect_day(record, reader)

        assert from_snapshot.num_conflicts == from_record.num_conflicts
        assert (
            from_snapshot.conflicts[0].origins
            == from_record.conflicts[0].origins
        )


class TestShardScopedDetection:
    def _snapshot(self):
        routes = []
        for third_octet in range(8):
            prefix = f"10.0.{third_octet}.0/24"
            routes.append(route(prefix, f"701 {100 + third_octet}", PEER_A))
            routes.append(route(prefix, f"1239 {200 + third_octet}", PEER_B))
        routes.append(route("192.0.2.0/24", "701 {42,43}", PEER_A))
        routes.append(route("198.51.100.0/24", "701 7", PEER_A))
        return RibSnapshot.from_routes(DAY, routes)

    @pytest.mark.parametrize("scheme", ["hash", "range"])
    @pytest.mark.parametrize("count", [1, 2, 3, 5])
    def test_shard_merge_equals_full_scan(self, scheme, count):
        snapshot = self._snapshot()
        full = detect_snapshot(snapshot)
        parts = [
            detect_snapshot(snapshot, shard=spec)
            for spec in ShardSpec.partition(count, scheme)
        ]
        assert merge_detections(parts) == full

    def test_shard_counts_partition_the_scan(self):
        snapshot = self._snapshot()
        full = detect_snapshot(snapshot)
        parts = [
            detect_snapshot(snapshot, shard=spec)
            for spec in ShardSpec.partition(4)
        ]
        assert sum(part.prefixes_scanned for part in parts) == (
            full.prefixes_scanned
        )
        assert sum(part.as_set_excluded for part in parts) == (
            full.as_set_excluded
        )

    def test_day_record_shard_merge_equals_full_scan(self, tmp_path):
        writer = ArchiveWriter(tmp_path / "archive")
        for index in range(6):
            writer.register_prefix(
                Prefix.parse(f"10.{index}.0.0/16"), 100 + index, 0
            )
        writer.register_prefix(
            Prefix.parse("192.0.2.0/24"), 42, 0, flags=FLAG_AS_SET_TAIL
        )
        rows = []
        for index in range(6):
            path_a = writer.intern_path((701, 100 + index))
            path_b = writer.intern_path((1239, 300 + index))
            rows.append(PeerRow(index, 701, 100 + index, path_a))
            rows.append(PeerRow(index, 1239, 300 + index, path_b))
        record = DayRecord(
            day=DAY,
            day_index=0,
            alive_count=7,
            active_peers=(701, 1239),
            rows=tuple(rows),
        )
        writer.write_day(record)
        writer.finalize({"calendar_start": DAY.isoformat()})
        reader = ArchiveReader(tmp_path / "archive")
        full = detect_day(record, reader)
        assert full.as_set_excluded == 1
        parts = [
            detect_day(record, reader, shard=spec)
            for spec in ShardSpec.partition(3)
        ]
        assert merge_detections(parts) == full

    def test_merge_rejects_mismatched_days(self):
        snapshot = self._snapshot()
        first = detect_snapshot(snapshot)
        other = RibSnapshot.from_routes(
            DAY + datetime.timedelta(days=1),
            [route("10.0.0.0/24", "701 1", PEER_A)],
        )
        second = detect_snapshot(other)
        with pytest.raises(ValueError, match="cannot merge"):
            merge_detections([first, second])
