"""Tests for the streaming MOAS alerter."""

from repro.core.realtime import AlertKind, StreamingMoasDetector
from repro.mrt.attributes import PathAttributes
from repro.mrt.records import Bgp4mpMessage
from repro.netbase.aspath import ASPath
from repro.netbase.prefix import Prefix

PREFIX = Prefix.parse("10.0.0.0/8")


def announce(peer: int, prefix: Prefix, *path: int) -> Bgp4mpMessage:
    return Bgp4mpMessage(
        peer_asn=peer,
        local_asn=6447,
        interface_index=0,
        peer_address=1,
        local_address=2,
        attributes=PathAttributes(as_path=ASPath.from_sequence(path)),
        announced=(prefix,),
    )


def withdraw(peer: int, prefix: Prefix) -> Bgp4mpMessage:
    return Bgp4mpMessage(
        peer_asn=peer,
        local_asn=6447,
        interface_index=0,
        peer_address=1,
        local_address=2,
        withdrawn=(prefix,),
    )


class TestAlerts:
    def test_single_origin_no_alert(self):
        detector = StreamingMoasDetector()
        assert detector.process_update(announce(701, PREFIX, 701, 42)) == []
        assert not detector.in_moas(PREFIX)

    def test_second_origin_starts_moas(self):
        detector = StreamingMoasDetector()
        detector.process_update(announce(701, PREFIX, 701, 42))
        alerts = detector.process_update(announce(1239, PREFIX, 1239, 43))
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert.kind is AlertKind.MOAS_STARTED
        assert alert.origins == {42, 43}
        assert alert.changed_origin == 43
        assert detector.in_moas(PREFIX)

    def test_same_origin_from_two_peers_no_alert(self):
        detector = StreamingMoasDetector()
        detector.process_update(announce(701, PREFIX, 701, 42))
        assert detector.process_update(announce(1239, PREFIX, 1239, 42)) == []

    def test_third_origin_added(self):
        detector = StreamingMoasDetector()
        detector.process_update(announce(701, PREFIX, 701, 42))
        detector.process_update(announce(1239, PREFIX, 1239, 43))
        alerts = detector.process_update(announce(3561, PREFIX, 3561, 44))
        assert alerts[0].kind is AlertKind.MOAS_ORIGIN_ADDED
        assert alerts[0].origins == {42, 43, 44}

    def test_withdrawal_ends_moas(self):
        detector = StreamingMoasDetector()
        detector.process_update(announce(701, PREFIX, 701, 42))
        detector.process_update(announce(1239, PREFIX, 1239, 43))
        alerts = detector.process_update(withdraw(1239, PREFIX))
        assert alerts[0].kind is AlertKind.MOAS_ENDED
        assert alerts[0].origins == {42}
        assert not detector.in_moas(PREFIX)

    def test_origin_change_by_same_peer(self):
        # One peer switching origins must not leave stale state.
        detector = StreamingMoasDetector()
        detector.process_update(announce(701, PREFIX, 701, 42))
        detector.process_update(announce(1239, PREFIX, 1239, 43))
        # Peer 1239 now re-announces with origin 42: conflict over.
        alerts = detector.process_update(announce(1239, PREFIX, 1239, 42))
        assert alerts[0].kind is AlertKind.MOAS_ENDED
        assert detector.origins_of(PREFIX) == {42}

    def test_refresh_no_churn(self):
        detector = StreamingMoasDetector()
        detector.process_update(announce(701, PREFIX, 701, 42))
        detector.process_update(announce(1239, PREFIX, 1239, 43))
        # Identical re-announcement: silence.
        assert detector.process_update(announce(1239, PREFIX, 1239, 43)) == []

    def test_as_set_tail_ignored(self):
        detector = StreamingMoasDetector()
        detector.process_update(announce(701, PREFIX, 701, 42))
        message = Bgp4mpMessage(
            peer_asn=1239,
            local_asn=6447,
            interface_index=0,
            peer_address=1,
            local_address=2,
            attributes=PathAttributes(as_path=ASPath.parse("1239 {43,44}")),
            announced=(PREFIX,),
        )
        assert detector.process_update(message) == []
        assert detector.origins_of(PREFIX) == {42}

    def test_withdrawal_of_unknown_route_ignored(self):
        detector = StreamingMoasDetector()
        assert detector.process_update(withdraw(701, PREFIX)) == []

    def test_current_conflicts_listing(self):
        detector = StreamingMoasDetector()
        other = Prefix.parse("192.0.2.0/24")
        detector.process_update(announce(701, PREFIX, 701, 42))
        detector.process_update(announce(1239, PREFIX, 1239, 43))
        detector.process_update(announce(701, other, 701, 7))
        assert detector.current_conflicts() == [PREFIX]

    def test_expected_origin_registry(self):
        detector = StreamingMoasDetector(
            expected_origins={PREFIX: 42}
        )
        assert detector.is_expected_origin(PREFIX, 42)
        assert not detector.is_expected_origin(PREFIX, 8584)
        # Unregistered prefixes: anything goes.
        assert detector.is_expected_origin(Prefix.parse("1.0.0.0/8"), 99)

    def test_stream_processing(self):
        detector = StreamingMoasDetector()
        stream = iter(
            [
                (100, announce(701, PREFIX, 701, 42)),
                (200, announce(1239, PREFIX, 1239, 43)),
                (300, withdraw(1239, PREFIX)),
            ]
        )
        alerts = list(detector.process_stream(stream))
        assert [alert.kind for alert in alerts] == [
            AlertKind.MOAS_STARTED,
            AlertKind.MOAS_ENDED,
        ]
        assert [alert.timestamp for alert in alerts] == [200, 300]


class TestOriginRemoval:
    """Regression: the 3->2 transition (still MOAS) must not be silent."""

    def test_origin_removed_while_still_moas(self):
        detector = StreamingMoasDetector()
        detector.process_update(announce(701, PREFIX, 701, 42))
        detector.process_update(announce(1239, PREFIX, 1239, 43))
        detector.process_update(announce(3561, PREFIX, 3561, 44))
        alerts = detector.process_update(withdraw(3561, PREFIX))
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert.kind is AlertKind.MOAS_ORIGIN_REMOVED
        assert alert.origins == {42, 43}
        assert alert.previous_origins == {42, 43, 44}
        assert alert.changed_origin == 44
        assert detector.in_moas(PREFIX)

    def test_full_lifecycle_is_loss_free(self):
        """1 -> 2 -> 3 -> 2 -> 1 origins: every transition alerts."""
        detector = StreamingMoasDetector()
        assert detector.process_update(announce(701, PREFIX, 701, 42)) == []
        kinds = []
        for message in (
            announce(1239, PREFIX, 1239, 43),  # 1 -> 2
            announce(3561, PREFIX, 3561, 44),  # 2 -> 3
            withdraw(1239, PREFIX),            # 3 -> 2
            withdraw(3561, PREFIX),            # 2 -> 1
        ):
            alerts = detector.process_update(message)
            assert len(alerts) == 1
            kinds.append(alerts[0].kind)
        assert kinds == [
            AlertKind.MOAS_STARTED,
            AlertKind.MOAS_ORIGIN_ADDED,
            AlertKind.MOAS_ORIGIN_REMOVED,
            AlertKind.MOAS_ENDED,
        ]
        assert not detector.in_moas(PREFIX)

    def test_origin_swap_reports_arrival(self):
        # Peer 3561 switches 44 -> 45 while the prefix stays in MOAS:
        # the arrival is alerted, the departure shows in
        # previous_origins.
        detector = StreamingMoasDetector()
        detector.process_update(announce(701, PREFIX, 701, 42))
        detector.process_update(announce(3561, PREFIX, 3561, 44))
        alerts = detector.process_update(announce(3561, PREFIX, 3561, 45))
        assert len(alerts) == 1
        assert alerts[0].kind is AlertKind.MOAS_ORIGIN_ADDED
        assert alerts[0].changed_origin == 45
        assert alerts[0].origins == {42, 45}
        assert alerts[0].previous_origins == {42, 44}

    def test_origin_change_onto_existing_origin_reports_removal(self):
        # Peer 3561 re-announces with origin 42 (already present): the
        # set shrinks 3 -> 2 and the departed origin is the alert.
        detector = StreamingMoasDetector()
        detector.process_update(announce(701, PREFIX, 701, 42))
        detector.process_update(announce(1239, PREFIX, 1239, 43))
        detector.process_update(announce(3561, PREFIX, 3561, 44))
        alerts = detector.process_update(announce(3561, PREFIX, 3561, 42))
        assert len(alerts) == 1
        assert alerts[0].kind is AlertKind.MOAS_ORIGIN_REMOVED
        assert alerts[0].changed_origin == 44
        assert alerts[0].origins == {42, 43}
